"""Chapter 8 walk-through benchmark: generation speed and driver-call latency
for the hardware timer device.

The paper highlights that Splice "can generate interconnects almost
instantly"; this bench measures end-to-end generation time for the Figure 8.2
specification and the simulated bus-cycle cost of the Figure 8.8 test-suite
sequence.  ``test_event_kernel_speedup`` additionally compares raw simulated
cycles/second between the event-driven kernel and the snapshot-based
reference kernel on the running timer.
"""

import time

from conftest import record_history

from repro.core.engine import Splice
from repro.devices.timer import TIMER_SPEC, build_timer_system
from repro.rtl import ReferenceSimulator, Simulator


def test_timer_generation_speed(benchmark):
    """Wall-clock cost of parse + validate + generate for the timer spec."""
    result = benchmark(lambda: Splice().generate(TIMER_SPEC))
    assert len(result.hardware_file_listing()) == 9  # interface + arbiter + 7 stubs


def test_timer_test_suite_bus_cycles(benchmark, once):
    """Bus cycles consumed by the Figure 8.8 software test-suite sequence."""

    def run_suite():
        timer = build_timer_system()
        drivers = timer.drivers
        drivers["disable"]()
        drivers["get_clock"]()
        drivers["set_threshold"](2_000)           # a short threshold keeps the bench quick
        drivers["enable"]()
        drivers["get_snapshot"]()
        timer.system.run(2_100)                   # let the timer fire
        status = drivers["get_status"]()
        drivers["disable"]()
        threshold = drivers["get_threshold"]()
        return {"cycles": timer.cycles, "status": status, "threshold": threshold}

    outcome = once(benchmark, run_suite)
    print(f"\nTimer test-suite: {outcome['cycles']} bus cycles, "
          f"status=0x{outcome['status']:x}, threshold={outcome['threshold']}")
    assert outcome["status"] & 0b10  # the timer fired
    assert outcome["threshold"] == 2_000


def test_event_kernel_speedup(benchmark, once):
    """Cycles/second of the event-driven kernel vs the reference kernel.

    Both kernels simulate the identical running timer (enabled, threshold far
    away) for the same number of cycles; the differential harness guarantees
    their traces are identical, so this measures pure kernel overhead.
    """

    def measure(cycles=20_000):
        rates = {}
        for label, factory in (("reference", ReferenceSimulator), ("event", Simulator)):
            timer = build_timer_system(simulator_factory=factory)
            timer.drivers["set_threshold"](1 << 40)  # effectively never fires
            timer.drivers["enable"]()
            start = time.perf_counter()
            timer.system.run(cycles)
            rates[label] = cycles / (time.perf_counter() - start)
        return rates

    rates = once(benchmark, measure)
    speedup = rates["event"] / rates["reference"]
    record_history(
        "timer",
        {
            "event_cycles_per_s": round(rates["event"], 1),
            "reference_cycles_per_s": round(rates["reference"], 1),
            "event_over_reference": round(speedup, 2),
        },
    )
    print(
        f"\nTimer kernel throughput: event {rates['event']:,.0f} cycles/s, "
        f"reference {rates['reference']:,.0f} cycles/s ({speedup:.1f}x)"
    )
    if getattr(benchmark, "disabled", False):
        # Smoke mode (--benchmark-disable, e.g. CI on shared runners): only
        # require the event kernel to win, not the full margin.
        assert speedup > 1.0, f"event-driven kernel slower than reference ({speedup:.2f}x)"
    else:
        assert speedup >= 3.0, f"event-driven kernel only {speedup:.2f}x faster"


def test_driver_call_latency_plb(benchmark, once):
    """Average bus cycles per generated-driver call on the PLB."""

    def measure():
        timer = build_timer_system()
        drivers = timer.drivers
        for _ in range(10):
            drivers["get_snapshot"]()
        calls = drivers["get_snapshot"].calls
        return sum(c.cycles for c in calls) / len(calls)

    cycles_per_call = once(benchmark, measure)
    print(f"\nget_snapshot(): {cycles_per_call:.1f} bus cycles per driver call")
    assert cycles_per_call > 0
