"""Figure 9.2 — clock cycles per run by each implementation.

Reruns the five interface implementations (two hand-coded baselines, three
Splice-generated) across the four Figure 9.1 scenarios on the simulated SoC
and prints the cycles-per-run table plus the Section 9.3.1 headline ratios.

Absolute cycle counts differ from the paper (our substrate is a bus-level
simulator, not the authors' ML-403 board), but the shape must hold: the naïve
PLB is slowest, Splice's PLB beats it by roughly a quarter, Splice's FCB is
faster still yet slightly slower than the hand-optimized FCB, and DMA only
pays off for the larger transfers.
"""

from conftest import record_history

from repro.evaluation.experiments import (
    IMPLEMENTATION_NAMES,
    cycle_ratio_summary,
    run_cycles_experiment,
)
from repro.evaluation.report import cycles_report, ratio_report


def test_figure_9_2_cycles_per_run(benchmark, once):
    results = once(benchmark, run_cycles_experiment)
    print("\nFigure 9.2 — Clock Cycles Per Run By Each Implementation")
    print(cycles_report(results, IMPLEMENTATION_NAMES))
    ratios = cycle_ratio_summary(results)
    print()
    print(ratio_report(ratios, "Section 9.3.1 — transmission-time comparison"))
    record_history(
        "fig_9_2",
        {
            "scenario2_cycles": {label: runs[2] for label, runs in results.items()},
            "ratios": {key: round(value, 4) for key, value in ratios.items()},
        },
    )

    # Shape assertions (who wins, by roughly what factor).
    for scenario in (1, 2, 3, 4):
        assert results["splice_plb"][scenario] < results["simple_plb"][scenario]
        assert results["splice_fcb"][scenario] < results["splice_plb"][scenario]
        assert results["optimized_fcb"][scenario] <= results["splice_fcb"][scenario]
    assert 0.15 <= ratios["splice_plb_vs_naive"] <= 0.40
    assert 0.30 <= ratios["splice_fcb_vs_naive"] <= 0.60
    assert 0.02 <= ratios["splice_fcb_vs_optimized"] <= 0.30
    assert -0.10 <= ratios["dma_gain_vs_splice_plb"] <= 0.15


def test_single_splice_plb_run_scenario_4(benchmark):
    """Per-call latency of the largest scenario on the Splice PLB interface."""
    from repro.devices.interpolator import build_splice_interpolator
    from repro.evaluation.scenarios import scenario

    device = build_splice_interpolator("splice_plb")
    sets = scenario(4).generate_inputs()
    outcome = benchmark.pedantic(device.run_scenario, args=(sets,), rounds=1, iterations=1)
    assert outcome["cycles"] > 0
