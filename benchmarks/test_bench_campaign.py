"""Campaign subsystem benchmark — writes ``BENCH_campaign.json``.

Runs a ≥32-cell grid three ways (serial, sharded, warm-cache) and records
machine-readable numbers so the performance trajectory is tracked across
PRs:

* ``serial_cycles_per_s`` — simulated bus cycles per wall-clock second,
* ``parallel_speedup`` — serial / sharded wall-clock on the same grid
  (bounded by the host's core count, which is recorded as ``host_cpus``;
  on a single-CPU host the sharded timing is *skipped entirely* — process
  sharding cannot speed anything up there, so running it would only burn
  benchmark time to produce a misleading number — and the record carries
  ``"sharded": "skipped(host_cpus=1)"`` with a ``null`` speedup),
* ``cache_hit_rate`` — fraction of cells a warm re-run skipped (must be 1.0).

The JSON lands next to this file's repository root as ``BENCH_campaign.json``.
"""

import json
import os
import time
from pathlib import Path

from conftest import record_history

from repro.campaign import (
    ScenarioSweep,
    SerialExecutor,
    ShardedExecutor,
    run_campaign,
    sweep_grid,
)

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"
_WORKERS = max(2, min(4, os.cpu_count() or 1))


def _grid():
    # 4 implementations x 4 geometric scenarios x 2 seeds = 32 cells.
    return sweep_grid(
        ScenarioSweep(mode="geometric", count=4, base=(8, 4, 8), max_size=128),
        implementations=("splice_plb", "splice_plb_dma", "splice_fcb", "splice_opb"),
        seeds=(0, 1),
        name="bench-grid",
    )


def test_campaign_serial_vs_sharded_vs_cached(benchmark, once, tmp_path):
    spec = _grid()
    host_cpus = os.cpu_count() or 1

    start = time.perf_counter()
    serial = run_campaign(spec, executor=SerialExecutor())
    serial_s = time.perf_counter() - start

    # On a single-CPU host, process sharding cannot win — previously the
    # sharded grid still ran (doubling the benchmark's wall-clock), lost,
    # and the field was nulled anyway.  Skip the timing outright and say so.
    if host_cpus >= 2:
        start = time.perf_counter()
        sharded = run_campaign(spec, executor=ShardedExecutor(workers=_WORKERS))
        sharded_s = time.perf_counter() - start
        assert sharded.payload() == serial.payload()
        sharded_field = round(sharded_s, 4)
        speedup = round(serial_s / sharded_s, 3) if sharded_s > 0 else None
    else:
        sharded_field = f"skipped(host_cpus={host_cpus})"
        speedup = None

    cache_dir = tmp_path / "cache"
    run_campaign(spec, cache=cache_dir)
    warm = once(benchmark, run_campaign, spec, cache=cache_dir)

    assert warm.payload() == serial.payload()
    assert warm.cache_hit_rate == 1.0

    simulated = serial.meta["simulated_cycles"]
    record = {
        "grid": {
            "name": spec.name,
            "cells": spec.cell_count,
            "implementations": list(spec.implementations),
            "scenarios": len(spec.scenarios),
            "seeds": list(spec.seeds),
        },
        "host_cpus": host_cpus,
        "workers": _WORKERS,
        "serial_elapsed_s": round(serial_s, 4),
        "sharded_elapsed_s": sharded_field,
        "parallel_speedup": speedup,
        "serial_cycles_per_s": round(simulated / serial_s, 1) if serial_s > 0 else None,
        "simulated_cycles": simulated,
        "cache_hit_rate": warm.cache_hit_rate,
        "warm_elapsed_s": round(warm.meta["elapsed_s"], 4),
    }
    _BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nBENCH_campaign.json: {json.dumps(record, indent=2)}")
    record_history(
        "campaign",
        {
            "serial_cycles_per_s": record["serial_cycles_per_s"],
            "parallel_speedup": record["parallel_speedup"],
            "sharded": record["sharded_elapsed_s"],
            "cache_hit_rate": record["cache_hit_rate"],
        },
    )

    # The recorded speedup is tracked across PRs rather than hard-asserted
    # here: benchmark wall-clock on shared CI runners is too noisy to gate
    # on.  The >= 2x @ 4 workers requirement lives in
    # tests/test_campaign.py::test_sharded_speedup_at_4_workers (gated on
    # host core count).
    if record["parallel_speedup"] is not None:
        assert record["parallel_speedup"] > 0
