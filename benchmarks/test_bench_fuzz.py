"""Fuzz-throughput benchmark — writes ``BENCH_fuzz.json``.

Measures what a fuzzing budget actually buys: cases per second through the
full differential oracle (three kernels built, driven, traced, and compared
per case) for a fixed-seed session, plus the corpus replay rate.  The
session seed is pinned and expected to be counterexample-free — a nonzero
count here is a real kernel bug (or a strategy regression) surfacing in the
perf lane, and fails the bench loudly rather than being averaged away.

Smoke mode (``--benchmark-disable``) runs a small budget as a gate check;
full mode runs the budget the headline number is quoted from.
"""

import json
import os
from pathlib import Path

from conftest import record_history

from repro.fuzz.corpus import corpus_files, replay_case
from repro.fuzz.session import run_session

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fuzz.json"
_CORPUS_DIR = Path(__file__).resolve().parent.parent / "tests" / "corpus"

_SEED = 7
_FULL_BUDGET = 120
_SMOKE_BUDGET = 15


def test_bench_fuzz_throughput(benchmark, once, request):
    smoke = bool(request.config.getoption("benchmark_disable", False))
    budget = _SMOKE_BUDGET if smoke else _FULL_BUDGET

    report = once(
        benchmark,
        lambda: run_session(budget, _SEED, corpus_dir=None),
    )
    assert report.executed == budget
    assert not report.counterexamples, [
        ce.describe() for ce in report.counterexamples
    ]

    replayed = 0
    for path in corpus_files(_CORPUS_DIR):
        assert replay_case(path).ok, path.name
        replayed += 1

    record = {
        "host_cpus": os.cpu_count() or 1,
        "mode": "smoke" if smoke else "full",
        "seed": _SEED,
        "budget": budget,
        "cases_executed": report.executed,
        "rounds": report.rounds,
        "counterexamples": len(report.counterexamples),
        "session_s": round(report.duration_s, 3),
        "cases_per_s": round(report.cases_per_second, 2),
        "corpus_cases_replayed": replayed,
    }
    _BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nBENCH_fuzz.json: {json.dumps(record, indent=2)}")
    record_history(
        "fuzz",
        {
            "cases_per_s": record["cases_per_s"],
            "counterexamples": record["counterexamples"],
            "budget": budget,
            "corpus_cases_replayed": replayed,
        },
    )
