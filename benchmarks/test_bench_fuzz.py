"""Fuzz-throughput benchmark — writes ``BENCH_fuzz.json``.

Measures what a fuzzing budget actually buys: cases per second through the
full differential oracle (three kernels built, driven, traced, and compared
per case) for a fixed-seed session, plus the corpus replay rate.  The
session seed is pinned and expected to be counterexample-free — a nonzero
count here is a real kernel bug (or a strategy regression) surfacing in the
perf lane, and fails the bench loudly rather than being averaged away.

Smoke mode (``--benchmark-disable``) runs a small budget as a gate check;
full mode runs the budget the headline number is quoted from.
"""

import json
import os
import time
from pathlib import Path

from conftest import record_history

from repro.fuzz.corpus import corpus_files, replay_case
from repro.fuzz.session import run_session

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fuzz.json"
_CORPUS_DIR = Path(__file__).resolve().parent.parent / "tests" / "corpus"

_SEED = 7
_FULL_BUDGET = 120
_SMOKE_BUDGET = 15


def test_bench_fuzz_throughput(benchmark, once, request):
    smoke = bool(request.config.getoption("benchmark_disable", False))
    budget = _SMOKE_BUDGET if smoke else _FULL_BUDGET

    report = once(
        benchmark,
        lambda: run_session(budget, _SEED, corpus_dir=None),
    )
    assert report.executed == budget
    assert not report.counterexamples, [
        ce.describe() for ce in report.counterexamples
    ]

    replayed = 0
    for path in corpus_files(_CORPUS_DIR):
        assert replay_case(path).ok, path.name
        replayed += 1

    record = {
        "host_cpus": os.cpu_count() or 1,
        "mode": "smoke" if smoke else "full",
        "seed": _SEED,
        "budget": budget,
        "cases_executed": report.executed,
        "rounds": report.rounds,
        "counterexamples": len(report.counterexamples),
        "session_s": round(report.duration_s, 3),
        "cases_per_s": round(report.cases_per_second, 2),
        "corpus_cases_replayed": replayed,
    }
    _BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nBENCH_fuzz.json: {json.dumps(record, indent=2)}")
    record_history(
        "fuzz",
        {
            "cases_per_s": record["cases_per_s"],
            "counterexamples": record["counterexamples"],
            "budget": budget,
            "corpus_cases_replayed": replayed,
        },
    )


_FARM_SEED_START = 7
_FARM_SESSIONS = 4
_FARM_FULL_BUDGET = 40
_FARM_SMOKE_BUDGET = 8
_FARM_WORKERS = max(2, min(4, os.cpu_count() or 1))


def test_bench_fuzz_farm_throughput(benchmark, once, request, tmp_path):
    """Fuzzing as a service workload: a pinned seed range sharded across
    warm farm workers, one deterministic session per seed.

    The headline is aggregate differential-oracle cases/s across the farm —
    what ``splice fuzz submit`` buys over a single in-process session.  The
    seed range is pinned and expected counterexample-free (a finding here is
    a real bug surfacing in the perf lane), and the farm must also append
    the job's coverage trajectory to its history file — that record is the
    durable fuzz-coverage time series the service maintains.
    """
    from repro.service import DONE, FuzzJobSpec, SimulationFarm

    smoke = bool(request.config.getoption("benchmark_disable", False))
    budget = _FARM_SMOKE_BUDGET if smoke else _FARM_FULL_BUDGET
    spec = FuzzJobSpec(
        seed_start=_FARM_SEED_START,
        sessions=_FARM_SESSIONS,
        budget=budget,
        name="bench-fuzz-farm",
    )
    history = tmp_path / "history.jsonl"

    def drive():
        with SimulationFarm(
            workers=_FARM_WORKERS, name="bench-fuzz-farm", history_path=history
        ) as farm:
            job = farm.submit_fuzz(spec)
            assert job.wait(timeout=600) == DONE
            return job.fuzz_result(), farm.stats()

    start = time.perf_counter()
    result, stats = once(benchmark, drive)
    wall = time.perf_counter() - start

    assert result["executed"] == _FARM_SESSIONS * budget
    assert not result["counterexamples"], result["counterexamples"]
    assert result["coverage"], "a pinned fuzz run must cover at least one cell"
    # The farm's own durable trajectory record for this job.
    trajectory = [json.loads(line) for line in history.read_text().splitlines()]
    assert any(
        rec["headline"]["seed_start"] == _FARM_SEED_START
        and rec["headline"]["sessions"] == _FARM_SESSIONS
        and rec["headline"]["coverage_cells"] == len(result["coverage"])
        for rec in trajectory
    ), trajectory

    record = {
        "host_cpus": os.cpu_count() or 1,
        "workers": _FARM_WORKERS,
        "mode": "smoke" if smoke else "full",
        "seed_start": _FARM_SEED_START,
        "sessions": _FARM_SESSIONS,
        "budget": budget,
        "cases_executed": result["executed"],
        "coverage_cells": len(result["coverage"]),
        "counterexamples": len(result["counterexamples"]),
        "wall_s": round(wall, 3),
        "farm_cases_per_s": round(result["executed"] / wall, 2) if wall > 0 else None,
        "sessions_executed": stats["cells"]["sessions_executed"],
    }
    merged = json.loads(_BENCH_PATH.read_text()) if _BENCH_PATH.exists() else {}
    if "seed" in merged:  # single-session record from the test above
        merged = {"session": merged}
    merged["farm"] = record
    _BENCH_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"\nBENCH_fuzz.json[farm]: {json.dumps(record, indent=2)}")
    record_history(
        "fuzz-farm",
        {
            "farm_cases_per_s": record["farm_cases_per_s"],
            "coverage_cells": record["coverage_cells"],
            "counterexamples": record["counterexamples"],
            "sessions": _FARM_SESSIONS,
            "budget": budget,
        },
    )
