"""Service chaos benchmark — writes ``BENCH_chaos.json``.

Drives a live farm with concurrent real-simulation jobs while a killer
thread SIGKILLs a busy worker at a fixed cadence (``SimulationFarm.
kill_worker``, the same injectable hook the service smoke tests use).  The
dispatcher's crash policy — respawn the dead worker, retry the in-flight
shard once, record structured ``worker_crash`` errors only if the retry
dies too — is what keeps the farm available, and this bench measures it
under sustained load instead of a single staged kill:

* every submitted job must reach a terminal state (the farm never wedges),
* jobs whose shards were only killed once complete ``done`` and
  **bit-identical** to ``run_campaign`` on the same spec,
* any failed job may carry only ``worker_crash`` error records.

Recorded: jobs/s under chaos, kills injected, workers respawned, shards
retried, and the done/failed split.  The headline ``availability`` is the
fraction of jobs that completed despite the kills; the bench asserts the
farm processed every job to a terminal state and that at least one kill
actually landed (otherwise it measured nothing).
"""

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from conftest import record_history

from repro.campaign import ScenarioSweep, run_campaign, sweep_grid
from repro.service import DONE, FAILED, SimulationFarm

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"
_WORKERS = max(2, min(4, os.cpu_count() or 1))
#: Recovery window after each kill before hunting for the next busy worker.
_KILL_COOLDOWN_S = 0.1


def _specs(count):
    """``count`` distinct real-simulation grids (seeds keep digests apart)."""
    return [
        sweep_grid(
            ScenarioSweep(mode="geometric", count=2, base=(16, 8, 16), max_size=512),
            implementations=("splice_plb",),
            seeds=(1000 + seed,),
            repeats=2,
            name=f"bench-chaos-{seed}",
        )
        for seed in range(count)
    ]


def _run_chaos(farm, specs, max_kills):
    """Submit every spec concurrently while a killer thread SIGKILLs busy
    workers (kills are triggered by observed busyness, not a fixed clock, so
    even a fast smoke population takes real mid-shard hits)."""
    stop = threading.Event()
    kills = []

    def killer():
        while not stop.is_set() and len(kills) < max_kills:
            if farm.stats()["workers_busy"] > 0:
                killed = farm.kill_worker()  # busy-preferred SIGKILL
                if killed is not None:
                    kills.append(killed)
                    stop.wait(_KILL_COOLDOWN_S)
                    continue
            stop.wait(0.005)

    thread = threading.Thread(target=killer, name="chaos-killer", daemon=True)
    thread.start()
    start = time.perf_counter()
    try:
        with ThreadPoolExecutor(max_workers=8) as pool:
            jobs = list(pool.map(farm.submit, specs))
        states = [job.wait(timeout=300) for job in jobs]
    finally:
        stop.set()
        thread.join(timeout=5)
    wall = time.perf_counter() - start
    return jobs, states, kills, wall


def test_farm_stays_available_under_worker_kills(benchmark, once, request):
    smoke = bool(request.config.getoption("benchmark_disable", False))
    job_count = 6 if smoke else 24
    max_kills = 2 if smoke else 8
    specs = _specs(job_count)

    with SimulationFarm(workers=_WORKERS, shard_size=1, name="chaos-farm") as farm:
        jobs, states, kills, wall = once(benchmark, _run_chaos, farm, specs, max_kills)
        counters = dict(farm.counters)
        # The farm must still be fully available once the chaos stops.
        aftermath = farm.submit(specs[0])
        assert aftermath.wait(timeout=120) == DONE

    # Availability: every job terminal, nothing wedged or lost.
    assert all(state in (DONE, FAILED) for state in states), states
    done = [job for job, state in zip(jobs, states) if state == DONE]
    failed = [job for job, state in zip(jobs, states) if state == FAILED]

    # Completed jobs are bit-identical to the batch runner on the same spec:
    # a kill + shard retry may cost time but never changes a result.
    for job in done:
        spec = next(spec for spec in specs if spec.name == job.spec.name)
        assert job.result().payload() == run_campaign(spec).payload(), job.spec.name
    # A job may fail only via the structured double-crash path.
    for job in failed:
        assert job.errors, job.id
        assert all(error.kind == "worker_crash" for error in job.errors.values())

    availability = len(done) / len(jobs)
    record = {
        "host_cpus": os.cpu_count() or 1,
        "workers": _WORKERS,
        "mode": "smoke" if smoke else "full",
        "jobs": len(jobs),
        "done": len(done),
        "failed": len(failed),
        "availability": round(availability, 4),
        "wall_s": round(wall, 4),
        "jobs_per_s": round(len(jobs) / wall, 2) if wall > 0 else None,
        "kills_injected": len(kills),
        "workers_respawned": counters.get("workers_respawned", 0),
        "shards_retried": counters.get("shards_retried", 0),
        "cells_executed": counters.get("cells_executed", 0),
    }
    _BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nBENCH_chaos.json: {json.dumps(record, indent=2)}")
    record_history(
        "chaos",
        {
            "availability": record["availability"],
            "jobs_per_s": record["jobs_per_s"],
            "kills_injected": record["kills_injected"],
            "workers_respawned": record["workers_respawned"],
            "shards_retried": record["shards_retried"],
        },
    )

    # The bench is meaningless if no kill landed; busy-triggered kills over
    # real simulation work guarantee at least one.
    assert kills, "chaos thread never killed a worker"
    assert counters.get("workers_respawned", 0) >= len(kills)
