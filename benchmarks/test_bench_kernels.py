"""Kernel shoot-out benchmark — writes ``BENCH_kernels.json``.

Measures simulated bus cycles per wall-clock second for the three kernels
(snapshot-based reference, event-driven, levelized compiled) on two
workloads, so the per-PR perf trajectory of the simulation core is tracked
in one machine-readable artifact:

* the **timer workload** — the Chapter 8 timer running with a far-away
  threshold, the same design ``test_bench_timer.py`` uses, and
* one **Figure 9.1 bus matrix** — scenario 2 through the Splice-generated
  interpolator on all four buses, repeated enough times that the ~1 ms
  single-run wall-clock stops dominating the measurement.  Systems are
  built with ``record_transactions=False`` (the campaign configuration).

The record carries ``meta`` (host CPUs, Python version, platform, UTC
timestamp) so numbers are comparable across hosts, and per-bus
``compiled_over_event`` ratios for the Fig 9.1 matrix.

Gates (ratios only — absolute cycles/s depend on the host):

* timer: compiled > event always; >= 3x in full benchmark mode;
* Fig 9.1: compiled must beat event outright on every bus, and by >= 1.5x
  on at least one bus — the CI ``kernel-perf-smoke`` job re-checks both
  with ``--benchmark-disable``.
"""

import datetime
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict

from conftest import record_history

from repro.devices.interpolator import build_splice_interpolator
from repro.devices.timer import build_timer_system
from repro.evaluation.scenarios import SCENARIOS
from repro.rtl import KERNELS

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

#: Fewer cycles for the reference kernel: it is O(signals x processes) per
#: cycle, and the rate estimate converges long before 20k cycles.
_TIMER_CYCLES = {"reference": 4_000, "event": 20_000, "compiled": 20_000}

_FIG91_BUSES = ("plb", "fcb", "opb", "apb")

#: Scenario repetitions per measurement: one scenario-2 run is ~150 bus
#: cycles (~1 ms), far too short to time on its own.
_FIG91_REPEATS = {"reference": 10, "event": 40, "compiled": 40}


def _timer_rate(kernel: str) -> float:
    timer = build_timer_system(simulator_factory=KERNELS[kernel])
    timer.drivers["set_threshold"](1 << 40)  # effectively never fires
    timer.drivers["enable"]()
    cycles = _TIMER_CYCLES[kernel]
    start = time.perf_counter()
    timer.system.run(cycles)
    return cycles / (time.perf_counter() - start)


def _fig91_rates(bus: str, sets) -> Dict[str, float]:
    """Best-of-5 cycles/s per kernel on ``bus``, measured interleaved.

    The kernels rotate within each round rather than each being timed in
    its own contiguous block: host-speed drift (thermal, noisy neighbours
    on shared runners) then hits every kernel's rounds alike, so the
    *ratios* the gates check stay stable even when absolute rates swing.
    """
    devices = {}
    for kernel in KERNELS:
        device = build_splice_interpolator(
            f"splice_{bus}", simulator_factory=KERNELS[kernel], record_transactions=False
        )
        device.run_scenario(sets)  # warm-up: first-call elaboration/compile
        devices[kernel] = device
    best = {kernel: 0.0 for kernel in KERNELS}
    for _ in range(5):
        for kernel, device in devices.items():
            cycles = 0
            start = time.perf_counter()
            for _ in range(_FIG91_REPEATS[kernel]):
                cycles += device.run_scenario(sets)["cycles"]
            elapsed = time.perf_counter() - start
            if elapsed > 0:
                best[kernel] = max(best[kernel], cycles / elapsed)
    return best


def test_kernel_throughput_matrix(benchmark, once):
    def measure():
        timer = {kernel: round(_timer_rate(kernel), 1) for kernel in KERNELS}
        scenario = next(s for s in SCENARIOS if s.number == 2)
        sets = scenario.generate_inputs()
        fig91 = {
            bus: {
                kernel: round(rate, 1)
                for kernel, rate in _fig91_rates(bus, sets).items()
            }
            for bus in _FIG91_BUSES
        }
        return {"timer_cycles_per_s": timer, "fig91_scenario2_cycles_per_s": fig91}

    record = once(benchmark, measure)
    timer = record["timer_cycles_per_s"]
    fig91 = record["fig91_scenario2_cycles_per_s"]
    record["ratios"] = {
        "event_over_reference_timer": round(timer["event"] / timer["reference"], 2),
        "compiled_over_event_timer": round(timer["compiled"] / timer["event"], 2),
        "compiled_over_reference_timer": round(timer["compiled"] / timer["reference"], 2),
        "compiled_over_event_fig91": {
            bus: round(rates["compiled"] / rates["event"], 2) for bus, rates in fig91.items()
        },
    }
    record["meta"] = {
        "host_cpus": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "fig91_repeats": dict(_FIG91_REPEATS),
    }
    # Preserve the idle-workload row owned by test_bench_idle.py.
    try:
        record["idle"] = json.loads(_BENCH_PATH.read_text())["idle"]
    except (OSError, ValueError, KeyError):
        pass
    _BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nBENCH_kernels.json: {json.dumps(record, indent=2)}")
    record_history(
        "kernels",
        {
            "timer_cycles_per_s": timer,
            "fig91_scenario2_cycles_per_s": fig91,
            "compiled_over_event_fig91": record["ratios"]["compiled_over_event_fig91"],
            "compiled_over_event_timer": record["ratios"]["compiled_over_event_timer"],
        },
    )

    ratio = record["ratios"]["compiled_over_event_timer"]
    if getattr(benchmark, "disabled", False):
        # Smoke mode (--benchmark-disable, e.g. CI on shared runners): the
        # compiled kernel must still beat the event kernel outright.
        assert ratio > 1.0, f"compiled kernel slower than event kernel ({ratio:.2f}x)"
    else:
        assert ratio >= 3.0, f"compiled kernel only {ratio:.2f}x over event kernel"

    # The fused harness + lowered-FSM path must win decisively on the paper's
    # bus workloads: >= 1.8x the event kernel on *every* Figure 9.1 bus (the
    # named CI perf gate, raised from PR 4's best-bus >= 1.5x now that the
    # per-cycle machines execute inside the generated loop).
    bus_ratios = record["ratios"]["compiled_over_event_fig91"]
    for bus, rates in fig91.items():
        assert rates["compiled"] > rates["reference"], (bus, rates)
        assert bus_ratios[bus] >= 1.8, (
            f"compiled kernel only {bus_ratios[bus]:.2f}x over event on {bus}: {bus_ratios}"
        )
