"""Figure 9.3 — FPGA resources consumed by each implementation.

Estimates the resource usage of the five interface implementations from their
structural descriptions and prints the Figure 9.3 table plus the
Section 9.3.2 headline ratios.
"""

from conftest import record_history

from repro.evaluation.experiments import (
    IMPLEMENTATION_NAMES,
    resource_ratio_summary,
    run_resource_experiment,
)
from repro.evaluation.report import ratio_report, resources_report


def test_figure_9_3_resource_usage(benchmark, once):
    reports = once(benchmark, run_resource_experiment)
    print("\nFigure 9.3 — FPGA Resources Consumed By Each Implementation")
    print(resources_report(reports, IMPLEMENTATION_NAMES))
    ratios = resource_ratio_summary(reports)
    print()
    print(ratio_report(ratios, "Section 9.3.2 — resource-usage comparison"))
    record_history(
        "fig_9_3",
        {
            "slices": {label: report.slices for label, report in reports.items()},
            "ratios": {key: round(value, 4) for key, value in ratios.items()},
        },
    )

    slices = {label: report.slices for label, report in reports.items()}
    assert slices["splice_plb"] < slices["simple_plb"]
    assert slices["splice_fcb"] < slices["simple_plb"]
    assert slices["splice_plb_dma"] > slices["splice_plb"]
    assert 0.40 <= ratios["dma_overhead_vs_splice_plb"] <= 0.80
    assert abs(ratios["splice_fcb_vs_optimized"]) <= 0.15


def test_resource_estimation_cost(benchmark):
    """Micro-benchmark of the estimator itself on the generated PLB design."""
    from repro.core.engine import Splice
    from repro.devices.interpolator import INTERPOLATOR_SPEC_PLB
    from repro.resources.estimator import estimate_hardware

    ir = Splice().generate(INTERPOLATOR_SPEC_PLB).hardware.ir
    report = benchmark(estimate_hardware, ir)
    assert report.slices > 0
