"""Shared fixtures for the benchmark harness."""

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark.

    The experiments are deterministic cycle-accurate simulations, so a single
    round is representative; this keeps the full benchmark sweep fast.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
