"""Shared fixtures for the benchmark harness."""

import datetime
import functools
import json
import os
import subprocess
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Append-only performance trajectory: one JSON line per benchmark run.
#: Unlike the ``BENCH_*.json`` artifacts (which are overwritten in place and
#: therefore only ever show the latest numbers), this file accumulates a
#: timestamped record per run — `git sha`, the benchmark's headline numbers —
#: so the perf history across PRs can be read straight from the repository.
#: Records carry a ``mode`` field (``full`` vs ``smoke`` for
#: ``--benchmark-disable`` runs) so trajectory readers can filter out
#: smoke-mode numbers, which are gate checks, not measurements.  Set
#: ``SPLICE_BENCH_HISTORY=0`` to suppress appends (e.g. local tinkering that
#: should not dirty the tracked history).
HISTORY_PATH = _REPO_ROOT / "BENCH_history.jsonl"

_BENCHMARKS_DISABLED = False


def pytest_configure(config):
    global _BENCHMARKS_DISABLED
    _BENCHMARKS_DISABLED = bool(config.getoption("benchmark_disable", False))


@functools.lru_cache(maxsize=1)
def _git_sha():
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=_REPO_ROOT,
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
            or None
        )
    except (OSError, subprocess.SubprocessError):
        return None


def record_history(bench: str, headline: dict) -> dict:
    """Append this run's headline numbers to ``BENCH_history.jsonl``.

    ``bench`` names the benchmark (by convention the ``test_bench_*`` module
    stem); ``headline`` is a small JSON-serialisable dict — cycles/s, key
    ratios — not the full artifact.  Returns the appended record.
    """
    record = {
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "git_sha": _git_sha(),
        "bench": bench,
        "mode": "smoke" if _BENCHMARKS_DISABLED else "full",
        "headline": headline,
    }
    if os.environ.get("SPLICE_BENCH_HISTORY", "1") != "0":
        with HISTORY_PATH.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark.

    The experiments are deterministic cycle-accurate simulations, so a single
    round is representative; this keeps the full benchmark sweep fast.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
