"""Figure 9.1 — input parameters required for each interpolation scenario.

Regenerates the scenario table and prints the same rows the paper reports.
"""

from conftest import record_history

from repro.evaluation.report import scenario_report
from repro.evaluation.scenarios import SCENARIOS, scenario_table


def test_figure_9_1_scenario_table(benchmark, once):
    rows = once(benchmark, scenario_table)
    print("\nFigure 9.1 — Input Parameters Required for Each Scenario")
    print(scenario_report(rows))
    record_history("fig_9_1", {"scenarios": len(rows)})
    assert [ (r["set1"], r["set2"], r["set3"]) for r in rows ] == [
        (2, 1, 2), (4, 2, 4), (8, 3, 6), (16, 4, 8),
    ]


def test_scenario_data_generation_cost(benchmark):
    """Workload-generation cost for the largest scenario (sanity micro-bench)."""
    largest = SCENARIOS[-1]
    sets = benchmark(largest.generate_inputs)
    assert [len(s) for s in sets] == [16, 4, 8]
