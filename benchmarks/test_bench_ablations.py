"""Ablation benches for design choices called out in DESIGN.md.

These are not paper figures; they quantify the cost/benefit of individual
Splice features on the simulated substrate:

* data packing (the '+' extension) versus unpacked character transfers,
* burst macros on the FCB versus single-word macros, and
* the indirect-conversion (SIS) overhead of a Splice-generated PLB interface
  versus the raw hand-coded slave for the same traffic.
"""

from conftest import record_history

from repro.soc.system import build_system

BASE_PLB = "%device_name dev\n%bus_type plb\n%bus_width 32\n%base_address 0x80000000\n"
BASE_FCB = "%device_name dev\n%bus_type fcb\n%bus_width 32\n"


def _cycles(system, func, *args):
    driver = system.drivers[func]
    driver(*args)
    return driver.last_call.cycles


def test_ablation_data_packing(benchmark, once):
    """Packing 16 chars (4 per beat) versus one char per beat."""

    def run():
        packed = build_system(BASE_PLB + "void sink(char*:16+ xs);\n")
        unpacked = build_system(BASE_PLB + "void sink(char*:16 xs);\n")
        data = list(range(16))
        return {
            "packed_cycles": _cycles(packed, "sink", data),
            "unpacked_cycles": _cycles(unpacked, "sink", data),
        }

    outcome = once(benchmark, run)
    print(f"\nData packing ablation: packed={outcome['packed_cycles']} cycles, "
          f"unpacked={outcome['unpacked_cycles']} cycles")
    assert outcome["packed_cycles"] < outcome["unpacked_cycles"]


def test_ablation_fcb_bursts(benchmark, once):
    """FCB quad-word bursts versus the same payload on the simple OPB."""

    def run():
        fcb = build_system(BASE_FCB + "%burst_support true\nvoid sink(int*:12 xs);\n")
        opb = build_system(
            "%device_name dev\n%bus_type opb\n%bus_width 32\n%base_address 0x80000000\n"
            "void sink(int*:12 xs);\n"
        )
        data = list(range(12))
        return {"fcb_cycles": _cycles(fcb, "sink", data), "opb_cycles": _cycles(opb, "sink", data)}

    outcome = once(benchmark, run)
    print(f"\nBurst ablation: FCB={outcome['fcb_cycles']} cycles, OPB={outcome['opb_cycles']} cycles")
    assert outcome["fcb_cycles"] < outcome["opb_cycles"]


def test_ablation_sis_indirection_overhead(benchmark, once):
    """Cycle overhead of the generated SIS path versus a raw hand-coded slave."""

    def run():
        from repro.devices.baselines import build_optimized_fcb_system
        from repro.devices.interpolator import build_splice_interpolator
        from repro.evaluation.scenarios import scenario

        sets = scenario(2).generate_inputs()
        splice_fcb = build_splice_interpolator("splice_fcb").run_scenario(sets)
        handcoded = build_optimized_fcb_system().run_scenario(sets)
        return {
            "splice_cycles": splice_fcb["cycles"],
            "handcoded_cycles": handcoded["cycles"],
            "overhead_percent": 100.0 * (splice_fcb["cycles"] / handcoded["cycles"] - 1.0),
        }

    outcome = once(benchmark, run)
    print(f"\nSIS indirection overhead: {outcome['overhead_percent']:.1f}% "
          f"({outcome['splice_cycles']} vs {outcome['handcoded_cycles']} cycles)")
    record_history(
        "ablations",
        {"sis_indirection_overhead_percent": round(outcome["overhead_percent"], 2)},
    )
    assert 0.0 <= outcome["overhead_percent"] <= 35.0
