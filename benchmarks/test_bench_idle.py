"""Idle-workload benchmark: the cycle-leaping fast path — updates
``BENCH_kernels.json``.

Measures simulated bus cycles per wall-clock second for the compiled kernel
with and without cycle leaping on two workloads:

* the **idle timer workload** — the Chapter 8 timer counting down to a
  far-away threshold with no bus traffic at all.  With leaping enabled the
  kernel jumps each idle span in O(1), so throughput here is really a
  measure of how cheap a leap is, not how fast cycles execute;
* the **Figure 9.1 busy workload** — scenario 2 through the Splice-generated
  PLB interpolator, where transactions keep machines awake and leaping
  almost never engages.  This guards the other side of the bargain: the leap
  guard must cost nothing when there is nothing to leap.

The row merges into ``BENCH_kernels.json`` under the ``"idle"`` key (the
kernel shoot-out writes the other keys) and appends to
``BENCH_history.jsonl``.

Gates (ratios only — absolute cycles/s depend on the host):

* idle timer: leap >= 5x the plain compiled kernel always (the CI
  ``kernel-perf-smoke`` job re-checks this with ``--benchmark-disable``);
  >= 20x in full benchmark mode.  Measured margins are orders of magnitude.
* Fig 9.1 busy: leap at parity with plain compiled (nominal >= 1.0x; the
  assert allows the +-5% noise floor of the paired measurement) — no
  regression when busy.
"""

import json
import math
import time
from pathlib import Path

from conftest import record_history

from repro.devices.interpolator import build_splice_interpolator
from repro.devices.timer import build_timer_system
from repro.evaluation.scenarios import SCENARIOS
from repro.rtl import kernel_factory

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

#: Leap mode executes only a handful of real cycles per run, so it needs a
#: far longer simulated span than plain mode to get a stable wall-clock read.
_IDLE_CYCLES = {"leap": 2_000_000, "no_leap": 20_000}

#: Scenario repetitions per busy measurement (one scenario-2 run is ~150 bus
#: cycles, far too short to time on its own).
_FIG91_REPEATS = 40


def _idle_rate(leap: bool) -> float:
    factory = kernel_factory("compiled", leap=leap)
    cycles = _IDLE_CYCLES["leap" if leap else "no_leap"]
    best = 0.0
    for _ in range(3):
        timer = build_timer_system(simulator_factory=factory)
        timer.drivers["set_threshold"](1 << 40)  # effectively never fires
        timer.drivers["enable"]()
        start = time.perf_counter()
        timer.system.run(cycles)
        elapsed = time.perf_counter() - start
        simulator = timer.system.simulator
        assert simulator.design.leap is leap
        if leap:
            assert simulator.stats.leaped_cycles > cycles // 2
        else:
            assert simulator.stats.leaped_cycles == 0
        if elapsed > 0:
            best = max(best, cycles / elapsed)
    return best


def _busy_rates(sets) -> dict:
    """Paired busy-throughput measurement for leap vs no-leap.

    Host-speed noise (frequency ramping, noisy neighbours on shared
    runners) dwarfs the effect being measured, and is *structured*: within a
    back-to-back pair the second measurement tends to run on a warmer
    clock.  So the gate statistic is the **geometric mean of per-round
    paired ratios over an even number of rounds with alternating order**:
    each round times the two variants back-to-back (near-identical
    conditions), half the rounds run leap first and half run it second, and
    the geometric mean cancels the order effect exactly.  Best-of rates are
    reported alongside for the artifact.
    """
    devices = {}
    for leap in (True, False):
        device = build_splice_interpolator(
            "splice_plb",
            simulator_factory=kernel_factory("compiled", leap=leap),
            record_transactions=False,
        )
        device.run_scenario(sets)  # warm-up: first-call elaboration/compile
        devices[leap] = device
    best = {True: 0.0, False: 0.0}
    log_ratio_sum, rounds = 0.0, 0
    for round_ in range(10):
        order = (True, False) if round_ % 2 == 0 else (False, True)
        rates = {}
        for leap in order:
            device = devices[leap]
            cycles = 0
            start = time.perf_counter()
            for _ in range(_FIG91_REPEATS):
                cycles += device.run_scenario(sets)["cycles"]
            elapsed = time.perf_counter() - start
            if elapsed > 0:
                rates[leap] = cycles / elapsed
                best[leap] = max(best[leap], rates[leap])
        if len(rates) == 2:
            log_ratio_sum += math.log(rates[True] / rates[False])
            rounds += 1
    best["ratio_gmean"] = math.exp(log_ratio_sum / rounds) if rounds else 0.0
    return best


def test_idle_leap_throughput(benchmark, once):
    def measure():
        scenario = next(s for s in SCENARIOS if s.number == 2)
        sets = scenario.generate_inputs()
        busy = _busy_rates(sets)
        return {
            "idle_timer_cycles_per_s": {
                "leap": round(_idle_rate(True), 1),
                "no_leap": round(_idle_rate(False), 1),
            },
            "fig91_plb_busy_cycles_per_s": {
                "leap": round(busy[True], 1),
                "no_leap": round(busy[False], 1),
                "paired_ratio_gmean": round(busy["ratio_gmean"], 3),
            },
        }

    record = once(benchmark, measure)
    idle = record["idle_timer_cycles_per_s"]
    busy = record["fig91_plb_busy_cycles_per_s"]
    record["ratios"] = {
        "leap_over_no_leap_idle": round(idle["leap"] / idle["no_leap"], 2),
        "leap_over_no_leap_busy": busy["paired_ratio_gmean"],
    }

    # Merge into the kernel artifact rather than overwriting it: the
    # shoot-out in test_bench_kernels.py owns the other keys.
    try:
        merged = json.loads(_BENCH_PATH.read_text())
    except (OSError, ValueError):
        merged = {}
    merged["idle"] = record
    _BENCH_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"\nBENCH_kernels.json[idle]: {json.dumps(record, indent=2)}")
    record_history("idle", record)

    idle_ratio = record["ratios"]["leap_over_no_leap_idle"]
    busy_ratio = record["ratios"]["leap_over_no_leap_busy"]
    if getattr(benchmark, "disabled", False):
        # Smoke mode (--benchmark-disable, CI on shared runners).
        assert idle_ratio >= 5.0, f"leap only {idle_ratio:.2f}x on idle workload"
    else:
        assert idle_ratio >= 20.0, f"leap only {idle_ratio:.2f}x on idle workload"
    # Busy workloads must not pay for the leap guard: the requirement is
    # parity (>= 1.0x).  Measured gmean ratios centre slightly above 1.0;
    # the gate allows the +-5% noise floor of the paired measurement (worst
    # observed clean-run reading: 0.96 mid-suite on a loaded host) so it
    # does not flake on shared runners, while still catching any real
    # busy-path regression (the bug this gate caught during development
    # measured 0.79-0.92x).
    assert busy_ratio >= 0.95, (
        f"leap kernel slower than plain compiled when busy ({busy_ratio:.3f}x)"
    )
