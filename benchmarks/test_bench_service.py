"""Service farm load benchmark — writes ``BENCH_service.json``.

Drives a live farm (real worker processes, real HTTP server, real stdlib
clients) with hundreds of concurrent small-grid submissions from 16 client
threads, in two phases over the *same* job population:

* **cold** — every spec is new: each job queues, is dispatched to a warm
  worker, simulates, and streams back;
* **warm** — the identical specs are resubmitted: every cell is answered
  from the shared content-addressed result cache at submit time, without
  touching a worker (per-job hit rate must be exactly 1.0).

Recorded per phase: p50/p99 submit-to-final-state latency as observed by the
clients (the full HTTP → queue → worker → stream round trip) and sustained
jobs/s.  The headline ratio ``warm_p50_speedup`` is what the result cache
buys a repeat submission end-to-end; the bench asserts it (≥5x full mode,
≥3x under ``--benchmark-disable`` smoke, where the tiny population makes the
ratio noisier).  One cold job is also checked bit-identical against
``run_campaign`` on the same spec — load must not change results.
"""

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from conftest import record_history

from repro.campaign import ScenarioSweep, run_campaign, sweep_grid
from repro.service import ServiceClient, SimulationFarm, serve_farm_in_thread

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"
_WORKERS = max(2, min(4, os.cpu_count() or 1))
_CLIENT_THREADS = 16
#: 2 geometric scenarios x 4 repeats: a small grid, but one that actually
#: simulates a few thousand bus cycles — so the cold phase measures real
#: submit→simulate→stream round trips, not just HTTP overhead.
_CELLS_PER_JOB = 8


def _specs(count):
    """``count`` distinct small grids (the seed varies the cell digests,
    so no cold job can accidentally hit another job's cache entries)."""
    return [
        sweep_grid(
            ScenarioSweep(mode="geometric", count=2, base=(16, 8, 16), max_size=512),
            implementations=("splice_plb",),
            seeds=(seed,),
            repeats=4,
            name=f"bench-svc-{seed}",
        )
        for seed in range(count)
    ]


def _drive(client, specs):
    """Submit every spec from a 16-thread client pool; per-job latency is
    submit-to-terminal-state as the client experiences it."""

    def one(spec):
        start = time.perf_counter()
        final = client.submit_and_wait(spec, timeout=300)
        return final, time.perf_counter() - start

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=_CLIENT_THREADS) as pool:
        outcomes = list(pool.map(one, specs))
    wall = time.perf_counter() - start
    finals = [final for final, _ in outcomes]
    latencies = sorted(latency for _, latency in outcomes)
    assert all(final["state"] == "done" for final in finals)

    def pct(fraction):
        return latencies[int(fraction * (len(latencies) - 1))]

    summary = {
        "jobs": len(specs),
        "wall_s": round(wall, 4),
        "jobs_per_s": round(len(specs) / wall, 2) if wall > 0 else None,
        "p50_s": round(pct(0.50), 5),
        "p99_s": round(pct(0.99), 5),
        "max_s": round(latencies[-1], 5),
    }
    return finals, summary


def test_service_cold_vs_warm_latency_under_load(benchmark, once, request):
    smoke = bool(request.config.getoption("benchmark_disable", False))
    job_count = 24 if smoke else 192
    specs = _specs(job_count)

    with SimulationFarm(workers=_WORKERS, name="bench-farm") as farm:
        server, _thread = serve_farm_in_thread(farm)
        try:
            client = ServiceClient(
                "http://127.0.0.1:%d" % server.server_address[1], timeout=300
            )
            cold_finals, cold = _drive(client, specs)

            # Load must not change results: one served job, bit-identical
            # to the batch runner on the same spec.
            batch = run_campaign(specs[0])
            served = client.result(cold_finals[0]["id"])
            assert served["cells"] == batch.payload()

            warm_finals, warm = once(benchmark, _drive, client, specs)
            stats = client.stats()
        finally:
            server.shutdown()
            server.server_close()

    # Warm phase = pure cache reads: every job fully cached, no worker cells.
    assert all(
        final["cells_cached"] == final["cells_total"] for final in warm_finals
    )
    warm["hit_rate"] = 1.0
    assert stats["cells"]["cells_executed"] == job_count * _CELLS_PER_JOB

    speedup = round(cold["p50_s"] / warm["p50_s"], 2) if warm["p50_s"] > 0 else None
    record = {
        "host_cpus": os.cpu_count() or 1,
        "workers": _WORKERS,
        "client_threads": _CLIENT_THREADS,
        "cells_per_job": _CELLS_PER_JOB,
        "mode": "smoke" if smoke else "full",
        "cold": cold,
        "warm": warm,
        "warm_p50_speedup": speedup,
        "farm": {
            "cells": stats["cells"],
            "utilization_lifetime": round(stats["utilization_lifetime"], 4),
            "cache_entries": stats["cache_entries"],
            "shard_size": stats["shard_size"],
        },
    }
    _BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nBENCH_service.json: {json.dumps(record, indent=2)}")
    record_history(
        "service",
        {
            "cold_p50_s": cold["p50_s"],
            "cold_jobs_per_s": cold["jobs_per_s"],
            "warm_p50_s": warm["p50_s"],
            "warm_jobs_per_s": warm["jobs_per_s"],
            "warm_p50_speedup": speedup,
            "hit_rate": warm["hit_rate"],
        },
    )

    # The cache short-circuit is architectural, not a tuning artifact: a
    # warm submission does no simulation at all, so even on a noisy host the
    # end-to-end median must be several times faster than cold.
    assert speedup is not None and speedup >= (3.0 if smoke else 5.0), record


def test_journal_overhead_on_warm_path(benchmark, once, request, tmp_path):
    """Durability must be close to free on the fast path.

    With ``--state-dir`` a fully-cached submission still writes two fsync'd
    journal records (``submitted`` + ``finished``) before the client sees a
    terminal state.  This drives the identical warm (100%-cached) population
    through two farms sharing one result-cache directory — one ephemeral,
    one journalled — and gates the journalled warm p50 at no worse than
    15% over the ephemeral one (plus a 10 ms absolute floor so sub-ms
    medians on fast hosts don't turn disk-latency noise into failures).
    """
    smoke = bool(request.config.getoption("benchmark_disable", False))
    job_count = 12 if smoke else 96
    specs = _specs(job_count)
    cache_dir = tmp_path / "cache"

    def warm_phase(state_dir=None):
        farm = SimulationFarm(
            workers=_WORKERS,
            cache=cache_dir,
            name="bench-journal",
            state_dir=state_dir,
        )
        with farm:
            server, _thread = serve_farm_in_thread(farm)
            try:
                client = ServiceClient(
                    "http://127.0.0.1:%d" % server.server_address[1], timeout=300
                )
                finals, summary = _drive(client, specs)
                stats = client.stats()
            finally:
                server.shutdown()
                server.server_close()
        return finals, summary, stats

    # Prime the shared cache once (cold); both measured phases below are
    # then pure cache reads, so the only difference between them is the
    # write-ahead journal.
    warm_phase()

    plain_finals, plain, _ = warm_phase()
    journal_finals, journalled, journal_stats = once(
        benchmark, warm_phase, tmp_path / "state"
    )

    for finals in (plain_finals, journal_finals):
        assert all(f["cells_cached"] == f["cells_total"] for f in finals)
    # Two records per fully-cached job: "submitted" then "finished".
    assert journal_stats["journal_records"] >= 2 * job_count
    assert journal_stats["durable"] is True

    overhead_pct = (
        round((journalled["p50_s"] / plain["p50_s"] - 1.0) * 100, 2)
        if plain["p50_s"] > 0 else None
    )
    record = {
        "mode": "smoke" if smoke else "full",
        "jobs": job_count,
        "no_journal_warm": plain,
        "journal_warm": journalled,
        "journal_records": journal_stats["journal_records"],
        "overhead_pct": overhead_pct,
    }
    merged = json.loads(_BENCH_PATH.read_text()) if _BENCH_PATH.exists() else {}
    merged["journal_overhead"] = record
    _BENCH_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"\njournal_overhead: {json.dumps(record, indent=2)}")
    record_history(
        "service-journal",
        {
            "warm_p50_s": plain["p50_s"],
            "journal_warm_p50_s": journalled["p50_s"],
            "overhead_pct": overhead_pct,
        },
    )

    # The durability gate: journalling a warm submission may cost at most
    # 15% of the ephemeral warm median (10 ms absolute slack for hosts
    # where the warm median itself is sub-millisecond).
    assert journalled["p50_s"] <= plain["p50_s"] * 1.15 + 0.010, record
