"""Campaign orchestration: cache lookup → executor → aggregated result.

:func:`run_campaign` is the one-call path: expand the spec's grid, satisfy
what it can from the result cache, ship the remaining cells to the chosen
executor, persist fresh outcomes back to the cache, and aggregate everything
into a :class:`~repro.campaign.result.CampaignResult`.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from repro.campaign.cache import ResultCache
from repro.campaign.executor import CellError, CellOutcome, SerialExecutor, make_executor
from repro.campaign.result import CampaignResult, CellResult, cell_result
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.rtl.compile import PROGRAM_CACHE_ENV


@contextmanager
def _program_cache_env(cache: Optional[ResultCache]):
    """Point compiled-kernel program caching at the campaign cache directory.

    Exported through the environment so it reaches sharded-executor worker
    processes (inherited under both fork and spawn); restored afterwards so
    an un-cached campaign in the same process does not silently keep writing
    into a stale directory.
    """
    if cache is None:
        yield
        return
    previous = os.environ.get(PROGRAM_CACHE_ENV)
    os.environ[PROGRAM_CACHE_ENV] = str(cache.program_cache_dir)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(PROGRAM_CACHE_ENV, None)
        else:
            os.environ[PROGRAM_CACHE_ENV] = previous


def run_campaign(
    spec: CampaignSpec,
    *,
    executor=None,
    workers: int = 1,
    cache: Union[ResultCache, Path, str, None] = None,
) -> CampaignResult:
    """Run every cell of ``spec`` and aggregate the outcomes.

    ``executor`` wins over ``workers``; with neither, the run is serial.
    ``cache`` may be a :class:`ResultCache` or a directory path; cached
    cells are never executed (their stored outcome is trusted — the content
    address covers the inputs and the kernel sources).
    """
    if executor is None:
        executor = make_executor(workers)
    if isinstance(cache, (str, Path)):
        cache = ResultCache(cache)

    cells = spec.cells()
    started = time.perf_counter()

    cached: Dict[tuple, CellOutcome] = {}
    pending = []
    if cache is not None:
        for cell in cells:
            outcome = cache.get(cell)
            if outcome is None:
                pending.append(cell)
            else:
                cached[cell.key] = outcome
    else:
        pending = list(cells)

    fresh: Dict[tuple, CellOutcome] = {}
    if pending:
        # Persist outcomes as they land (per cell serially, per shard when
        # sharded), so an interrupted campaign resumes from what it finished.
        # CellError records are never persisted: a worker crash says nothing
        # about what the outcome would have been.
        on_result = None
        if cache is not None:
            def on_result(cell, outcome, _put=cache.put):
                if not isinstance(outcome, CellError):
                    _put(cell, outcome)
        with _program_cache_env(cache):
            fresh = executor.execute(pending, on_result)
        missing = [cell.key for cell in pending if cell.key not in fresh]
        if missing:
            raise RuntimeError(f"executor returned no outcome for cells: {missing[:5]}")

    elapsed = time.perf_counter() - started
    results = [
        cell_result(cell, cached.get(cell.key) or fresh[cell.key], cached=cell.key in cached)
        for cell in cells
    ]
    failed = sum(1 for r in results if r.error is not None)
    total_cycles = sum(r.cycles for r in results if not r.cached and r.error is None)
    return CampaignResult(
        spec=spec,
        cells=results,
        meta={
            "executor": getattr(executor, "name", type(executor).__name__),
            "workers": getattr(executor, "workers", 1),
            "elapsed_s": round(elapsed, 6),
            "cells_total": len(cells),
            "cells_cached": len(cached),
            "cells_executed": len(pending),
            "cells_failed": failed,
            "simulated_cycles": total_cycles,
            "simulated_cycles_per_s": round(total_cycles / elapsed, 1) if elapsed > 0 else 0.0,
            "spec_fingerprint": spec.fingerprint(),
        },
    )
