"""Campaign results: per-cell outcomes, aggregation, and artifact writers.

A :class:`CampaignResult` collects one :class:`CellResult` per grid cell.
The deterministic payload (label, scenario shape, seed, repeat, result,
cycles, transactions) is strictly separated from run metadata (wall-clock,
executor, cache statistics), so results from different executors compare
bit-identical whenever the simulations agree.

Artifact writers regenerate the paper's tables for *any* grid:

* ``to_json`` — the full payload plus metadata, machine-readable,
* ``to_csv`` — one row per cell, spreadsheet-friendly,
* ``to_markdown`` — a Figure 9.2-style implementations × scenarios table of
  mean cycles, plus a result-agreement section.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.campaign.spec import CampaignCell, CampaignSpec

#: Column order shared by the CSV writer and the JSON cell payload.  The
#: ``error`` column is empty for every cell that produced an outcome; failed
#: cells (worker crashed twice — see
#: :class:`~repro.campaign.executor.CellError`) carry the structured message
#: there and ``None`` in the outcome columns.
CELL_FIELDS = (
    "label", "scenario", "set1", "set2", "set3", "seed", "repeat", "kernel",
    "faults", "result", "cycles", "transactions", "error",
)


@dataclass(frozen=True)
class CellResult:
    """Outcome of one grid cell (deterministic fields only)."""

    cell: CampaignCell
    result: Optional[int]
    cycles: Optional[int]
    transactions: Optional[int]
    cached: bool = False
    error: Optional[str] = None

    def payload(self) -> Dict[str, object]:
        """The deterministic, comparable record for this cell.

        The ``error`` key is present only on failed cells, so payloads of
        clean runs compare bit-identical with payloads written before the
        field existed (and across batch/service paths that never fail).
        """
        row = dict(self.cell.describe())
        row.update(result=self.result, cycles=self.cycles, transactions=self.transactions)
        if self.error is not None:
            row["error"] = self.error
        return row


def cell_result(cell: CampaignCell, outcome, *, cached: bool = False) -> CellResult:
    """Build a :class:`CellResult` from an executor outcome.

    ``outcome`` is either a ``(result, cycles, transactions)`` tuple or a
    :class:`~repro.campaign.executor.CellError`; this is the one place the
    distinction is folded into aggregation, shared by the batch runner and
    the service farm so both aggregate identically.
    """
    from repro.campaign.executor import CellError

    if isinstance(outcome, CellError):
        return CellResult(
            cell=cell, result=None, cycles=None, transactions=None,
            cached=False, error=outcome.describe(),
        )
    return CellResult(
        cell=cell, result=outcome[0], cycles=outcome[1], transactions=outcome[2],
        cached=cached,
    )


@dataclass
class CampaignResult:
    """All cell results of one campaign run, plus run metadata."""

    spec: CampaignSpec
    cells: List[CellResult] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.cells = sorted(self.cells, key=lambda c: c.cell.key)

    # -- comparison --------------------------------------------------------------

    def payload(self) -> List[Dict[str, int]]:
        """Deterministic rows, sorted by cell key — the bit-identical part."""
        return [cell.payload() for cell in self.cells]

    def diff(self, other: "CampaignResult") -> Optional[str]:
        """First difference between two results' deterministic payloads.

        Returns ``None`` when the payloads are bit-identical, otherwise a
        one-line human-readable description of the first divergent row and
        field.  The recovery tests and CI smoke scripts use this so a
        failed bit-identity assertion names the exact cell instead of
        dumping two full JSON tables.
        """
        mine, theirs = self.payload(), other.payload()
        if len(mine) != len(theirs):
            return f"row counts differ: {len(mine)} != {len(theirs)}"
        for index, (a, b) in enumerate(zip(mine, theirs)):
            if a == b:
                continue
            for key in sorted(set(a) | set(b)):
                if a.get(key) != b.get(key):
                    return (
                        f"row {index} ({a.get('label')}/s{a.get('scenario')}"
                        f"/seed{a.get('seed')}/r{a.get('repeat')}): "
                        f"{key}={a.get(key)!r} != {b.get(key)!r}"
                    )
        return None

    # -- aggregation -------------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        if not self.cells:
            return 0.0
        return sum(1 for c in self.cells if c.cached) / len(self.cells)

    def scenario_numbers(self) -> List[int]:
        return sorted({c.cell.scenario.number for c in self.cells})

    def mean_cycles(self) -> Dict[str, Dict[int, float]]:
        """Mean cycles per (implementation, scenario) over seeds × repeats.

        Failed cells (``error`` set) have no cycle count and are excluded;
        so are faulted cells — the Figure 9.2 metric is defined over clean
        runs, and a fault's cycle penalty would silently skew the mean.
        """
        sums: Dict[Tuple[str, int], List[int]] = {}
        for cell in self.cells:
            if cell.error is not None or cell.cell.faults is not None:
                continue
            sums.setdefault((cell.cell.label, cell.cell.scenario.number), []).append(cell.cycles)
        out: Dict[str, Dict[int, float]] = {}
        for (label, number), values in sums.items():
            out.setdefault(label, {})[number] = sum(values) / len(values)
        return out

    def cycles_table(self) -> Dict[str, Dict[int, int]]:
        """Figure 9.2-compatible ``{label: {scenario: rounded mean cycles}}``."""
        return {
            label: {number: int(round(mean)) for number, mean in per.items()}
            for label, per in self.mean_cycles().items()
        }

    def agreement(self) -> Dict[Tuple, bool]:
        """Per (scenario, seed, repeat): did all implementations agree?

        Failed cells have no result to compare and are excluded.  Faulted
        cells are compared only against cells running the *same* fault
        schedule (the token is appended to the grouping key), so a fault
        that corrupts the result never reads as an implementation
        disagreement — but two implementations diverging under the same
        fault still does.
        """
        values: Dict[Tuple, set] = {}
        for cell in self.cells:
            if cell.error is not None:
                continue
            key = (cell.cell.scenario.number, cell.cell.seed, cell.cell.repeat)
            if cell.cell.faults is not None:
                key = key + (cell.cell.faults,)
            values.setdefault(key, set()).add(cell.result & 0xFFFFFFFF)
        return {key: len(seen) == 1 for key, seen in values.items()}

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.describe(),
            "cells": self.payload(),
            "meta": dict(self.meta),
        }

    def to_json(self, path: Optional[Path] = None, *, indent: int = 2) -> str:
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignResult":
        spec = CampaignSpec.from_dict(data["spec"])
        by_shape = {
            (s.number, s.set1, s.set2, s.set3): s for s in spec.scenarios
        }
        cells = []
        for row in data["cells"]:
            shape = (row["scenario"], row["set1"], row["set2"], row["set3"])
            scenario = by_shape.get(shape)
            if scenario is None:
                from repro.evaluation.scenarios import Scenario

                scenario = Scenario(number=shape[0], set1=shape[1], set2=shape[2], set3=shape[3])
            cell = CampaignCell(
                label=row["label"], scenario=scenario,
                seed=row["seed"], repeat=row["repeat"],
                kernel=row.get("kernel", spec.kernel),
                faults=row.get("faults"),
            )
            cells.append(
                CellResult(
                    cell=cell, result=row["result"], cycles=row["cycles"],
                    transactions=row["transactions"], error=row.get("error"),
                )
            )
        return cls(spec=spec, cells=cells, meta=dict(data.get("meta", {})))

    @classmethod
    def from_json(cls, path: Path) -> "CampaignResult":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def to_csv(self, path: Optional[Path] = None) -> str:
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=CELL_FIELDS, restval="")
        writer.writeheader()
        for row in self.payload():
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text

    def to_markdown(
        self,
        path: Optional[Path] = None,
        *,
        names: Optional[Mapping[str, str]] = None,
    ) -> str:
        """A Figure 9.2-style report for this grid, as markdown."""
        names = names or {}
        numbers = self.scenario_numbers()
        table = self.cycles_table()
        lines = [f"# Campaign report: {self.spec.name}", ""]
        lines.append(
            f"{len(self.cells)} cells — {len(self.spec.implementations)} implementation(s) × "
            f"{len(self.spec.scenarios)} scenario(s) × {len(self.spec.seeds)} seed(s) × "
            f"{self.spec.repeats} repeat(s)."
        )
        if self.meta:
            lines.append("")
            lines.append("| Run | Value |")
            lines.append("| --- | --- |")
            for key in sorted(self.meta):
                lines.append(f"| {key} | {self.meta[key]} |")
        lines.append("")
        lines.append("## Scenario grid (Figure 9.1 generalised)")
        lines.append("")
        lines.append("| Scenario | Set 1 | Set 2 | Set 3 | Total |")
        lines.append("| --- | --- | --- | --- | --- |")
        for s in self.spec.scenarios:
            lines.append(f"| {s.number} | {s.set1} | {s.set2} | {s.set3} | {s.total} |")
        lines.append("")
        lines.append("## Mean bus cycles per run (Figure 9.2 generalised)")
        lines.append("")
        header = "| Implementation | " + " | ".join(f"Scenario {n}" for n in numbers) + " |"
        lines.append(header)
        lines.append("| --- |" + " --- |" * len(numbers))
        for label in self.spec.implementations:
            per = table.get(label, {})
            cellstr = " | ".join(str(per.get(n, "—")) for n in numbers)
            lines.append(f"| {names.get(label, label)} | {cellstr} |")
        lines.append("")
        agreement = self.agreement()
        disagreeing = sorted(key for key, ok in agreement.items() if not ok)
        lines.append("## Result agreement")
        lines.append("")
        if not agreement:
            lines.append("No cells were run.")
        elif not disagreeing:
            lines.append(
                f"All implementations agree on every ({len(agreement)}) "
                "scenario/seed/repeat combination."
            )
        else:
            lines.append("Disagreements (scenario, seed, repeat):")
            for key in disagreeing:
                lines.append(f"- {key}")
        text = "\n".join(lines) + "\n"
        if path is not None:
            Path(path).write_text(text)
        return text

    def write_artifacts(self, directory: Path, *, names: Optional[Mapping[str, str]] = None) -> Dict[str, Path]:
        """Write campaign.json / campaign.csv / campaign.md under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = {
            "json": directory / "campaign.json",
            "csv": directory / "campaign.csv",
            "markdown": directory / "campaign.md",
        }
        self.to_json(paths["json"])
        self.to_csv(paths["csv"])
        self.to_markdown(paths["markdown"], names=names)
        return paths
