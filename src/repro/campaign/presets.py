"""Ready-made campaign specs.

``paper_grid`` is *the* Chapter 9 evaluation — five interface
implementations × the four Figure 9.1 scenarios — expressed as a campaign,
so the legacy :mod:`repro.evaluation.experiments` entry points and the
``splice campaign`` CLI both run the identical declarative object.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.campaign.spec import CampaignSpec
from repro.campaign.sweep import ScenarioSweep
from repro.evaluation.scenarios import SCENARIOS

#: The five Section 9.2.1 implementations, in figure order.
PAPER_IMPLEMENTATIONS = (
    "simple_plb",
    "splice_plb",
    "splice_plb_dma",
    "splice_fcb",
    "optimized_fcb",
)

#: All splice-generated retargets (the full adapter matrix).
SPLICE_IMPLEMENTATIONS = (
    "splice_plb",
    "splice_plb_dma",
    "splice_fcb",
    "splice_opb",
    "splice_apb",
)


def paper_grid(
    *, seeds: Sequence[int] = (0,), repeats: int = 1, kernel: str = "event"
) -> CampaignSpec:
    """The paper's evaluation grid: 5 implementations × 4 scenarios."""
    return CampaignSpec(
        implementations=PAPER_IMPLEMENTATIONS,
        scenarios=SCENARIOS,
        seeds=tuple(seeds),
        repeats=repeats,
        name="paper-grid",
        kernel=kernel,
    )


def sweep_grid(
    sweep: Optional[ScenarioSweep] = None,
    *,
    implementations: Sequence[str] = SPLICE_IMPLEMENTATIONS,
    seeds: Sequence[int] = (0,),
    repeats: int = 1,
    name: str = "sweep-grid",
    kernel: str = "event",
) -> CampaignSpec:
    """A campaign over a parametric sweep (default: linear, 4 steps)."""
    sweep = sweep or ScenarioSweep()
    return CampaignSpec(
        implementations=tuple(implementations),
        scenarios=sweep.scenarios(),
        seeds=tuple(seeds),
        repeats=repeats,
        name=name,
        kernel=kernel,
    )


PRESETS = {
    "paper": paper_grid,
    "sweep": sweep_grid,
}
