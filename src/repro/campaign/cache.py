"""Content-addressed result cache for campaign cells.

Each cell's cache key is the SHA-256 of everything that determines its
outcome:

* the cell descriptor (implementation label, scenario shape, seed, repeat),
* the *generated input data itself* (so a change to the input generator
  invalidates stale entries even if shapes match), and
* a fingerprint of the entire ``repro`` source tree (so *any* code change —
  kernel, buses, generation, devices — re-runs everything it could affect;
  over-invalidation is cheap, a stale hit is not).

Entries are single JSON files named ``<digest>.json`` under the cache
directory — safe to merge across machines, trivially inspectable, and
naturally content-addressed: a re-run of a completed cell is a pure file
read.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from functools import lru_cache
from pathlib import Path
from typing import Dict, Optional, Tuple

import repro
from repro.campaign.spec import CampaignCell
from repro.rtl.fsm import fsm_ir_fingerprint


@lru_cache(maxsize=1)
def kernel_fingerprint() -> str:
    """SHA-256 over every ``.py`` source in the ``repro`` package.

    A cell outcome depends on the parser, the generation engine, the kernel,
    the bus models and the device code — in practice, on most of the tree —
    so the fingerprint conservatively covers all of it.  A change anywhere
    invalidates the cache; that costs one re-run, whereas a missed
    dependency would silently serve stale measurements.
    """
    digest = hashlib.sha256()
    root = Path(repro.__file__).resolve().parent
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


@lru_cache(maxsize=65536)
def cell_digest(cell: CampaignCell) -> str:
    """Content address of one cell: descriptor + inputs + kernel.

    Memoised (cells are frozen dataclasses): ``run_campaign`` digests each
    cell once in the cache-lookup pass and again when persisting the fresh
    outcome, and regenerating the numpy inputs twice per cell is pure waste.
    """
    payload = {
        "cell": cell.describe(),
        "inputs": [list(s) for s in cell.generate_inputs()],
        "kernel": kernel_fingerprint(),
        # The FSM IR fingerprint is folded in explicitly (not just via the
        # source hash above): measurements depend on the IR's execution
        # semantics and its lowering, so an IR schema bump invalidates every
        # cached cell even if a source-tree hash scheme were to change.
        "fsm_ir": fsm_ir_fingerprint(),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


class ResultCache:
    """A directory of content-addressed cell outcomes."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, digest: str) -> Path:
        return self.directory / f"{digest}.json"

    @property
    def program_cache_dir(self) -> Path:
        """Directory for the compiled kernel's persistent program cache.

        ``run_campaign`` exports this via
        :data:`repro.rtl.compile.PROGRAM_CACHE_ENV` so every worker's
        :class:`~repro.rtl.compile.CompiledSimulator` reuses levelization +
        codegen for identical design topologies instead of recompiling per
        process.  Program entries carry their own compiler fingerprint in
        the digest, so they invalidate independently of the result entries
        (which glob only this directory's top level, not this subtree).
        """
        return self.directory / "programs"

    def get(self, cell: CampaignCell) -> Optional[Tuple[int, int, int]]:
        """The cached (result, cycles, transactions), or ``None`` on a miss."""
        path = self._path(cell_digest(cell))
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
            outcome = data["outcome"]
            return (int(outcome[0]), int(outcome[1]), int(outcome[2]))
        except (ValueError, KeyError, IndexError, TypeError):
            return None  # corrupt entry: treat as a miss and overwrite later

    def put(self, cell: CampaignCell, outcome: Tuple[int, int, int]) -> Path:
        digest = cell_digest(cell)
        path = self._path(digest)
        payload = {
            "digest": digest,
            "cell": cell.describe(),
            "outcome": [int(outcome[0]), int(outcome[1]), int(outcome[2])],
        }
        # The temp name must be unique per writer (pid *and* thread): the
        # farm's dispatcher thread and any number of campaign worker
        # processes may persist the same digest concurrently, and a shared
        # temp path would interleave their writes into a torn file that the
        # final rename then publishes.  With unique temps the os.replace is
        # the only shared step, and it is atomic — last writer wins with an
        # identical payload.
        tmp = path.with_name(
            f".{digest}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
