"""Parametric scenario sweeps: Figure 9.1 generalised to arbitrary grids.

The paper evaluates four fixed set-size rows.  A :class:`ScenarioSweep`
generates any number of rows from a growth rule, so a campaign can probe the
interface implementations far beyond the published grid:

``linear``
    set sizes grow by a fixed increment per step (scenario *i* carries
    ``base * i`` elements, Figure 9.1's own shape is roughly linear),
``geometric``
    set sizes double (or grow by ``ratio``) each step — stresses burst
    handling and DMA crossover at the large end,
``random``
    independently drawn set sizes within ``[0, max_size]`` from a seeded
    generator — deterministic for a given ``seed``,
``burst``
    burst-heavy rows: sizes are multiples of the quad-burst width with a
    tiny control set, the best case for FCB bursts and DMA,
``degenerate``
    empty and near-empty sets ((0,0,0), single-element, one-empty-set
    permutations) — the edge cases a hand-coded driver typically misses.
``fuzzed``
    the workload families the property-based fuzzer (:mod:`repro.fuzz`)
    keeps finding interesting: zero/near-zero rows, extreme skew (one huge
    set against empty ones), burst-alignment ±1 off-by-one sizes, and
    max-size rows, interleaved from a seeded generator.

All randomized modes draw from an explicit ``random.Random(seed)`` instance
— never module-level or NumPy global state — so a sweep replays
bit-identically across platforms, worker processes, and Python versions
(``random.Random`` is guaranteed stable by the language reference, NumPy
bit-streams are not part of that contract).

Sweep scenarios are ordinary :class:`~repro.evaluation.scenarios.Scenario`
instances (numbered from ``first_number`` upward), so everything downstream —
input generation, runners, caching, reports — treats them uniformly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from repro.evaluation.scenarios import SCENARIOS, Scenario

#: Supported sweep modes.
SWEEP_MODES = ("linear", "geometric", "random", "burst", "degenerate", "fuzzed")


@dataclass(frozen=True)
class ScenarioSweep:
    """A parametric generator of scenario rows."""

    mode: str = "linear"
    count: int = 4
    base: Tuple[int, int, int] = (4, 2, 4)
    ratio: float = 2.0
    max_size: int = 64
    seed: int = 0
    first_number: int = 101

    def __post_init__(self) -> None:
        if self.mode not in SWEEP_MODES:
            raise ValueError(f"unknown sweep mode {self.mode!r} (known: {SWEEP_MODES})")
        if self.count < 1:
            raise ValueError(f"sweep count must be >= 1, got {self.count}")
        if self.mode == "geometric" and self.ratio <= 1.0:
            raise ValueError(f"geometric sweeps need ratio > 1, got {self.ratio}")

    def scenarios(self) -> Tuple[Scenario, ...]:
        """Generate the sweep rows, deterministically."""
        build = getattr(self, f"_{self.mode}")
        return tuple(build())

    # -- per-mode generators -----------------------------------------------------

    def _linear(self):
        b1, b2, b3 = self.base
        for step in range(1, self.count + 1):
            yield self._row(step - 1, b1 * step, b2 * step, b3 * step)

    def _geometric(self):
        b1, b2, b3 = self.base
        for step in range(self.count):
            factor = self.ratio ** step
            yield self._row(step, int(b1 * factor), int(b2 * factor), int(b3 * factor))

    def _random(self):
        rng = random.Random(self.seed)
        for step in range(self.count):
            yield self._row(
                step,
                rng.randint(0, self.max_size),
                rng.randint(0, self.max_size),
                rng.randint(0, self.max_size),
            )

    def _burst(self):
        # Quad-burst-aligned timestamp/query sets with a minimal control set:
        # the workload shape where burst-capable interconnects shine.
        b1, _, b3 = self.base
        for step in range(1, self.count + 1):
            set1 = max(4, ((b1 * step + 3) // 4) * 4)
            set3 = max(4, ((b3 * step + 3) // 4) * 4)
            yield self._row(step - 1, set1, 1, set3)

    def _degenerate(self):
        rows = [
            (0, 0, 0),  # nothing at all
            (1, 1, 1),  # single element everywhere
            (0, 4, 4),  # no timestamps
            (4, 0, 4),  # no control values
            (4, 4, 0),  # no queries
            (1, 0, 0),  # lone timestamp
        ]
        for step in range(self.count):
            sizes = rows[step % len(rows)]
            yield self._row(step, *sizes)

    def _fuzzed(self):
        # Shape families distilled from fuzz-session findings: the rows that
        # exercise the code paths where counterexamples cluster.  A seeded
        # local generator interleaves them, so the sweep is as replayable as
        # any fixed grid while still covering the whole family each cycle.
        rng = random.Random(self.seed)
        families = (
            lambda: (0, 0, rng.randint(0, 1)),                    # empty-ish
            lambda: (rng.randint(self.max_size // 2, self.max_size), 0, 0),  # skew
            lambda: tuple(4 * rng.randint(1, max(1, self.max_size // 4)) + d
                          for d in (0, -1, 1)),                   # burst ±1
            lambda: tuple(rng.randint(0, self.max_size) for _ in range(3)),  # uniform
            lambda: (self.max_size, self.max_size, self.max_size),  # saturated
        )
        for step in range(self.count):
            yield self._row(step, *families[step % len(families)]())

    def _row(self, step: int, set1: int, set2: int, set3: int) -> Scenario:
        clamp = lambda n: max(0, min(int(n), self.max_size))
        return Scenario(
            number=self.first_number + step,
            set1=clamp(set1),
            set2=clamp(set2),
            set3=clamp(set3),
        )


def figure_9_1_rows() -> Tuple[Scenario, ...]:
    """The paper's own four rows, for symmetry with sweep generators."""
    return SCENARIOS
