"""Pluggable campaign executors: serial and process-sharded.

Executors turn a list of :class:`~repro.campaign.spec.CampaignCell` into
``{cell.key: (result, cycles, transactions)}``.  Both executors share the
same per-shard runner (:func:`execute_cells`), so serial and sharded runs
are bit-identical by construction: every cell's inputs are derived only from
the cell itself, and runners are rebuilt fresh per shard.

Simulators are not picklable, so :class:`ShardedExecutor` ships only the
cell descriptors to each worker process; workers rebuild systems from the
label via :mod:`repro.devices.registry`.  Cells are label-sorted before
being split into contiguous shards, so each worker elaborates each of its
implementations exactly once and reuses the runner across all of that
label's cells.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.spec import CampaignCell
from repro.devices.registry import build_runner

#: What an executor returns per cell: (result, cycles, transactions).
CellOutcome = Tuple[int, int, int]


@dataclass(frozen=True)
class CellError:
    """Structured record for a cell that could not produce an outcome.

    Produced instead of a :data:`CellOutcome` when a worker process died
    mid-shard and the one retry died too (``worker_crash``), when a faulted
    cell's simulation raised — e.g. an injected fault deadlocked the
    handshake until a driver timeout fired (``cell_exception``) — or when a
    fault schedule targets a runner that cannot inject it
    (``faults_unsupported``).  The rest of the campaign (and, in the
    service, the rest of the job) proceeds, and the failure is carried
    through aggregation as :attr:`~repro.campaign.result.CellResult.error`
    rather than killing the whole run.  Never cached: a crash says nothing
    about what the outcome would have been.
    """

    kind: str
    message: str

    def describe(self) -> str:
        return f"{self.kind}: {self.message}"


#: Progress callback: invoked with (cell, outcome) as results land, so the
#: caller can persist incrementally (an interrupted campaign keeps what it
#: finished).  Serial execution reports per cell; sharded per shard.  The
#: outcome may be a :class:`CellError`; persistence layers must skip those.
ResultCallback = Callable[[CampaignCell, Union[CellOutcome, CellError]], None]


def execute_cells(
    cells: Sequence[CampaignCell],
    on_result: Optional[ResultCallback] = None,
) -> Dict[tuple, Union[CellOutcome, CellError]]:
    """Run ``cells`` in-process, building each (implementation, kernel) once.

    This is both the whole of :class:`SerialExecutor` and the per-worker body
    of :class:`ShardedExecutor` — a single code path keeps the two executors
    trivially equivalent.  (Workers call it without ``on_result``; callbacks
    don't cross process boundaries.)

    Cells carrying a fault schedule attach it to the shared runner before the
    scenario and clear it after; a faulted cell whose simulation raises (a
    fault can deadlock the handshake into a driver timeout) or whose runner
    cannot inject (baselines have no SIS bundle) yields a structured
    :class:`CellError` instead of aborting the shard.  Clean cells are
    untouched: they share runners as before and a raise still propagates.
    """
    outcomes: Dict[tuple, Union[CellOutcome, CellError]] = {}
    runners: Dict[tuple, object] = {}
    applied: Dict[tuple, Optional[str]] = {}

    def emit(cell: CampaignCell, value: Union[CellOutcome, CellError]) -> None:
        outcomes[cell.key] = value
        if on_result is not None:
            on_result(cell, value)

    for cell in sorted(cells, key=lambda c: c.key):
        runner_key = (cell.label, cell.kernel)
        faults = getattr(cell, "faults", None)
        runner = runners.get(runner_key)
        if runner is None:
            runner = runners[runner_key] = build_runner(cell.label, kernel=cell.kernel)
            applied[runner_key] = None
        apply_faults = getattr(runner, "apply_faults", None)
        if faults is not None and apply_faults is None:
            emit(cell, CellError(
                kind="faults_unsupported",
                message=f"runner {cell.label!r} cannot inject fault schedule {faults!r}",
            ))
            continue
        if apply_faults is not None and applied[runner_key] != faults:
            apply_faults(faults)
            applied[runner_key] = faults
        sets = cell.generate_inputs()
        if faults is None:
            outcome = runner.run_scenario(sets)
        else:
            try:
                outcome = runner.run_scenario(sets)
            except Exception as exc:
                # The faulted system may be wedged mid-handshake: drop the
                # runner so later cells of this label rebuild fresh.
                runners.pop(runner_key, None)
                applied.pop(runner_key, None)
                emit(cell, CellError(
                    kind="cell_exception",
                    message=f"fault schedule {faults!r}: {type(exc).__name__}: {exc}",
                ))
                continue
        emit(cell, (
            int(outcome["result"]) & 0xFFFFFFFF,
            int(outcome["cycles"]),
            int(outcome.get("transactions", 0)),
        ))
    return outcomes


class SerialExecutor:
    """Run every cell in the calling process."""

    name = "serial"
    workers = 1

    def execute(
        self,
        cells: Sequence[CampaignCell],
        on_result: Optional[ResultCallback] = None,
    ) -> Dict[tuple, CellOutcome]:
        return execute_cells(cells, on_result)


class ShardedExecutor:
    """Partition cells across worker processes.

    Each worker receives a contiguous, label-sorted shard and rebuilds its
    own systems (simulators are not picklable), so shards are independent
    and the merged result is identical to a serial run.

    Workers resolve labels through :mod:`repro.devices.registry` at import
    time.  Labels registered at runtime via ``register_runner`` are only
    visible to workers under the ``fork`` start method (Linux default); with
    ``spawn`` (macOS/Windows), register them from a module that workers
    import, or run serially.
    """

    name = "sharded"

    def __init__(self, workers: int = 0) -> None:
        self.workers = workers if workers > 0 else (os.cpu_count() or 1)

    @staticmethod
    def partition(cells: Sequence[CampaignCell], shards: int) -> List[List[CampaignCell]]:
        """Label-sorted contiguous split into at most ``shards`` parts.

        Sorting by key groups each label's cells together, so a shard that
        holds k labels elaborates exactly k systems; contiguous splitting
        keeps shard sizes within one cell of each other.
        """
        ordered = sorted(cells, key=lambda c: c.key)
        shards = max(1, min(shards, len(ordered) or 1))
        base, extra = divmod(len(ordered), shards)
        parts: List[List[CampaignCell]] = []
        start = 0
        for index in range(shards):
            size = base + (1 if index < extra else 0)
            parts.append(ordered[start:start + size])
            start += size
        return [part for part in parts if part]

    def execute(
        self,
        cells: Sequence[CampaignCell],
        on_result: Optional[ResultCallback] = None,
    ) -> Dict[tuple, Union[CellOutcome, CellError]]:
        shards = self.partition(cells, self.workers)
        if len(shards) <= 1:
            return execute_cells(cells, on_result)
        by_key = {cell.key: cell for cell in cells}
        outcomes: Dict[tuple, Union[CellOutcome, CellError]] = {}
        first_error: Optional[BaseException] = None
        broken: List[List[CampaignCell]] = []

        def merge(shard_result: Dict[tuple, CellOutcome]) -> None:
            outcomes.update(shard_result)
            if on_result is not None:
                for key, outcome in shard_result.items():
                    on_result(by_key[key], outcome)

        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            futures = {pool.submit(execute_cells, shard): shard for shard in shards}
            for future in as_completed(futures):
                try:
                    shard_result = future.result()
                except BrokenProcessPool:
                    # A worker process died (OOM kill, segfault, os._exit) —
                    # every unfinished future on the pool reports this, so
                    # innocent shards land here alongside the one that
                    # crashed.  Collect them all for a retry after the drain.
                    broken.append(futures[future])
                    continue
                except BaseException as exc:
                    # Keep draining: the other shards' finished work must
                    # still reach on_result (the cache) before we re-raise.
                    if first_error is None:
                        first_error = exc
                    continue
                merge(shard_result)

        # Each broken shard gets exactly one retry on its own fresh
        # single-worker pool (isolated, so one poisoned shard cannot break
        # another's retry).  A second death fails just that shard's cells
        # with a structured record instead of killing the run.
        for shard in broken:
            try:
                with ProcessPoolExecutor(max_workers=1) as retry_pool:
                    shard_result = retry_pool.submit(execute_cells, shard).result()
            except BrokenProcessPool:
                labels = sorted({cell.label for cell in shard})
                error = CellError(
                    kind="worker_crash",
                    message=(
                        "worker process died running this shard and the retry "
                        f"died too (shard of {len(shard)} cells, labels {labels})"
                    ),
                )
                for cell in shard:
                    outcomes[cell.key] = error
                    if on_result is not None:
                        on_result(cell, error)
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
            else:
                merge(shard_result)
        if first_error is not None:
            raise first_error
        return outcomes


def make_executor(workers: Optional[int] = 1) -> object:
    """Resolve a worker count to an executor.

    ``0`` or ``None`` (the CLI's ``--workers auto``) resolves to
    ``os.cpu_count()`` — the same rule the service's worker pool applies, so
    "auto" means the same thing on every path.  ``1`` (and a 1-CPU host's
    "auto") is serial; anything larger is a sharded pool of that size.
    """
    if workers is None or workers == 0:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = auto), got {workers}")
    if workers <= 1:
        return SerialExecutor()
    return ShardedExecutor(workers=workers)
