"""Pluggable campaign executors: serial and process-sharded.

Executors turn a list of :class:`~repro.campaign.spec.CampaignCell` into
``{cell.key: (result, cycles, transactions)}``.  Both executors share the
same per-shard runner (:func:`execute_cells`), so serial and sharded runs
are bit-identical by construction: every cell's inputs are derived only from
the cell itself, and runners are rebuilt fresh per shard.

Simulators are not picklable, so :class:`ShardedExecutor` ships only the
cell descriptors to each worker process; workers rebuild systems from the
label via :mod:`repro.devices.registry`.  Cells are label-sorted before
being split into contiguous shards, so each worker elaborates each of its
implementations exactly once and reuses the runner across all of that
label's cells.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign.spec import CampaignCell
from repro.devices.registry import build_runner

#: What an executor returns per cell: (result, cycles, transactions).
CellOutcome = Tuple[int, int, int]

#: Progress callback: invoked with (cell, outcome) as results land, so the
#: caller can persist incrementally (an interrupted campaign keeps what it
#: finished).  Serial execution reports per cell; sharded per shard.
ResultCallback = Callable[[CampaignCell, CellOutcome], None]


def execute_cells(
    cells: Sequence[CampaignCell],
    on_result: Optional[ResultCallback] = None,
) -> Dict[tuple, CellOutcome]:
    """Run ``cells`` in-process, building each (implementation, kernel) once.

    This is both the whole of :class:`SerialExecutor` and the per-worker body
    of :class:`ShardedExecutor` — a single code path keeps the two executors
    trivially equivalent.  (Workers call it without ``on_result``; callbacks
    don't cross process boundaries.)
    """
    outcomes: Dict[tuple, CellOutcome] = {}
    runners: Dict[tuple, object] = {}
    for cell in sorted(cells, key=lambda c: c.key):
        runner_key = (cell.label, cell.kernel)
        runner = runners.get(runner_key)
        if runner is None:
            runner = runners[runner_key] = build_runner(cell.label, kernel=cell.kernel)
        sets = cell.generate_inputs()
        outcome = runner.run_scenario(sets)
        outcomes[cell.key] = result = (
            int(outcome["result"]) & 0xFFFFFFFF,
            int(outcome["cycles"]),
            int(outcome.get("transactions", 0)),
        )
        if on_result is not None:
            on_result(cell, result)
    return outcomes


class SerialExecutor:
    """Run every cell in the calling process."""

    name = "serial"
    workers = 1

    def execute(
        self,
        cells: Sequence[CampaignCell],
        on_result: Optional[ResultCallback] = None,
    ) -> Dict[tuple, CellOutcome]:
        return execute_cells(cells, on_result)


class ShardedExecutor:
    """Partition cells across worker processes.

    Each worker receives a contiguous, label-sorted shard and rebuilds its
    own systems (simulators are not picklable), so shards are independent
    and the merged result is identical to a serial run.

    Workers resolve labels through :mod:`repro.devices.registry` at import
    time.  Labels registered at runtime via ``register_runner`` are only
    visible to workers under the ``fork`` start method (Linux default); with
    ``spawn`` (macOS/Windows), register them from a module that workers
    import, or run serially.
    """

    name = "sharded"

    def __init__(self, workers: int = 0) -> None:
        self.workers = workers if workers > 0 else (os.cpu_count() or 1)

    @staticmethod
    def partition(cells: Sequence[CampaignCell], shards: int) -> List[List[CampaignCell]]:
        """Label-sorted contiguous split into at most ``shards`` parts.

        Sorting by key groups each label's cells together, so a shard that
        holds k labels elaborates exactly k systems; contiguous splitting
        keeps shard sizes within one cell of each other.
        """
        ordered = sorted(cells, key=lambda c: c.key)
        shards = max(1, min(shards, len(ordered) or 1))
        base, extra = divmod(len(ordered), shards)
        parts: List[List[CampaignCell]] = []
        start = 0
        for index in range(shards):
            size = base + (1 if index < extra else 0)
            parts.append(ordered[start:start + size])
            start += size
        return [part for part in parts if part]

    def execute(
        self,
        cells: Sequence[CampaignCell],
        on_result: Optional[ResultCallback] = None,
    ) -> Dict[tuple, CellOutcome]:
        shards = self.partition(cells, self.workers)
        if len(shards) <= 1:
            return execute_cells(cells, on_result)
        by_key = {cell.key: cell for cell in cells}
        outcomes: Dict[tuple, CellOutcome] = {}
        first_error: Optional[BaseException] = None
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            futures = [pool.submit(execute_cells, shard) for shard in shards]
            for future in as_completed(futures):
                try:
                    shard_result = future.result()
                except BaseException as exc:
                    # Keep draining: the other shards' finished work must
                    # still reach on_result (the cache) before we re-raise.
                    if first_error is None:
                        first_error = exc
                    continue
                outcomes.update(shard_result)
                if on_result is not None:
                    for key, outcome in shard_result.items():
                        on_result(by_key[key], outcome)
        if first_error is not None:
            raise first_error
        return outcomes


def make_executor(workers: int = 1) -> object:
    """``workers <= 1`` → serial; otherwise a sharded pool of that size."""
    if workers <= 1:
        return SerialExecutor()
    return ShardedExecutor(workers=workers)
