"""Declarative campaign descriptions.

A :class:`CampaignSpec` is a pure-data description of an experiment grid:
implementations × scenarios × seeds × repeats.  It carries no simulators and
no open resources, so it pickles cleanly across process boundaries and can
be fingerprinted for the result cache.

:meth:`CampaignSpec.cells` expands the grid into :class:`CampaignCell`
descriptors in a deterministic order; executors may run the cells in any
order or partitioning, because results are keyed by :attr:`CampaignCell.key`
and re-sorted during aggregation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.evaluation.scenarios import SCENARIOS, Scenario
from repro.rtl import DEFAULT_KERNEL, KERNELS


@dataclass(frozen=True)
class CampaignCell:
    """One cell of the campaign grid — plain data, picklable."""

    label: str
    scenario: Scenario
    seed: int
    repeat: int
    #: Simulation kernel the cell runs on; part of the identity (and hence
    #: the cache key), so the same grid on two kernels never shares results.
    kernel: str = DEFAULT_KERNEL

    #: Canonical fault-schedule token (see :mod:`repro.faults.spec`), or
    #: ``None`` for a clean run.  Part of the identity when set, so a cached
    #: faulted outcome can never be served as clean (or vice versa); clean
    #: cells keep their pre-fault keys and digests.
    faults: Optional[str] = None

    #: Stride separating the input seeds of successive repeats.  Large and
    #: prime so that (seed, repeat) pairs from grids mixing several seeds
    #: with repeats > 1 never alias (they would with a stride of 1:
    #: seed=0/repeat=1 and seed=1/repeat=0 would draw identical data).
    REPEAT_SEED_STRIDE = 1_000_003

    @property
    def effective_seed(self) -> int:
        """Seed actually used for input generation.

        Repeats vary the seed so that averaging over repeats samples
        *different* input data rather than re-measuring the identical run;
        repeat 0 reproduces the single-run behaviour (plain ``seed``)
        exactly.
        """
        return self.seed + self.repeat * self.REPEAT_SEED_STRIDE

    @property
    def key(self) -> Tuple:
        """Stable identity: label + scenario shape + seed + repeat + kernel.

        The fault token is appended only when present, so clean cells keep
        the key shape every existing artifact and cache entry was built on.
        """
        s = self.scenario
        base = (self.label, s.number, s.set1, s.set2, s.set3, self.seed, self.repeat, self.kernel)
        return base if self.faults is None else base + (self.faults,)

    def generate_inputs(self) -> Tuple[List[int], List[int], List[int]]:
        return self.scenario.generate_inputs(seed=self.effective_seed)

    def describe(self) -> Dict[str, object]:
        """JSON-friendly descriptor (used by the cache and artifacts).

        ``faults`` appears only when set: clean descriptors — and therefore
        clean cells' content-addressed cache digests — are byte-identical to
        those written before fault injection existed.
        """
        s = self.scenario
        data = {
            "label": self.label,
            "scenario": s.number,
            "set1": s.set1,
            "set2": s.set2,
            "set3": s.set3,
            "seed": self.seed,
            "repeat": self.repeat,
            "kernel": self.kernel,
        }
        if self.faults is not None:
            data["faults"] = self.faults
        return data


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative grid of implementations × scenarios × seeds × repeats."""

    implementations: Tuple[str, ...]
    scenarios: Tuple[Scenario, ...] = SCENARIOS
    seeds: Tuple[int, ...] = (0,)
    repeats: int = 1
    name: str = "campaign"
    kernel: str = DEFAULT_KERNEL
    #: Fault-schedule axis: each entry is a canonical schedule token (see
    #: :mod:`repro.faults.spec`) or ``None`` for the clean baseline.  The
    #: default ``(None,)`` reproduces the pre-fault grid exactly.
    faults: Tuple[Optional[str], ...] = (None,)

    def __post_init__(self) -> None:
        if not self.implementations:
            raise ValueError("a campaign needs at least one implementation")
        if not self.scenarios:
            raise ValueError("a campaign needs at least one scenario")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown simulation kernel {self.kernel!r} (known: {sorted(KERNELS)})"
            )
        # Normalise list inputs so frozen instances hash/pickle predictably.
        object.__setattr__(self, "implementations", tuple(self.implementations))
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "seeds", tuple(self.seeds) or (0,))
        # Canonicalise each fault token through the parser so equivalent
        # spellings ("a;b" vs "b;a") key and cache identically — and so a
        # malformed token fails here, not inside a worker process.
        from repro.faults.spec import FaultSchedule

        normalised = []
        for token in (tuple(self.faults) or (None,)):
            if token is None or token == "":
                normalised.append(None)
            else:
                normalised.append(FaultSchedule.parse(str(token)).token)
        object.__setattr__(self, "faults", tuple(normalised))

    @property
    def cell_count(self) -> int:
        return (
            len(self.implementations) * len(self.scenarios) * len(self.seeds)
            * self.repeats * len(self.faults)
        )

    def cells(self) -> List[CampaignCell]:
        """Expand the grid, implementation-major, in deterministic order."""
        out: List[CampaignCell] = []
        for label in self.implementations:
            for scenario in self.scenarios:
                for seed in self.seeds:
                    for repeat in range(self.repeats):
                        for faults in self.faults:
                            out.append(
                                CampaignCell(label, scenario, seed, repeat, self.kernel, faults)
                            )
        return out

    def describe(self) -> Dict[str, object]:
        """Canonical JSON-friendly form (stable across processes).

        ``faults`` is emitted only for grids that actually use the axis, so
        fingerprints of clean specs are unchanged from before it existed.
        """
        data = {
            "name": self.name,
            "implementations": list(self.implementations),
            "scenarios": [
                {"number": s.number, "set1": s.set1, "set2": s.set2, "set3": s.set3}
                for s in self.scenarios
            ],
            "seeds": list(self.seeds),
            "repeats": self.repeats,
            "kernel": self.kernel,
        }
        if self.faults != (None,):
            data["faults"] = list(self.faults)
        return data

    def fingerprint(self) -> str:
        """Content hash of the spec itself (not of the code that runs it)."""
        payload = json.dumps(self.describe(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignSpec":
        scenarios = tuple(
            Scenario(number=s["number"], set1=s["set1"], set2=s["set2"], set3=s["set3"])
            for s in data["scenarios"]
        )
        return cls(
            implementations=tuple(data["implementations"]),
            scenarios=scenarios,
            seeds=tuple(data.get("seeds", (0,))),
            repeats=int(data.get("repeats", 1)),
            name=str(data.get("name", "campaign")),
            kernel=str(data.get("kernel", DEFAULT_KERNEL)),
            faults=tuple(data.get("faults", (None,))),
        )
