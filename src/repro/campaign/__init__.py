"""Campaign subsystem: declarative scenario grids, pluggable execution,
content-addressed result caching, and report artifacts.

The moving parts, bottom-up:

* :mod:`repro.campaign.sweep` — parametric scenario generators extending
  Figure 9.1's four rows to arbitrary set-size sweeps,
* :mod:`repro.campaign.spec` — :class:`CampaignSpec`, the declarative grid
  of implementations × scenarios × seeds × repeats,
* :mod:`repro.campaign.executor` — :class:`SerialExecutor` and the
  process-sharded :class:`ShardedExecutor` (bit-identical by construction),
* :mod:`repro.campaign.cache` — content-addressed per-cell result cache,
* :mod:`repro.campaign.runner` — :func:`run_campaign`, the orchestrator,
* :mod:`repro.campaign.result` — :class:`CampaignResult` aggregation plus
  JSON/CSV/markdown artifact writers,
* :mod:`repro.campaign.presets` — ready-made grids ("the paper grid").
"""

from repro.campaign.cache import ResultCache, cell_digest, kernel_fingerprint
from repro.campaign.executor import (
    CellError,
    SerialExecutor,
    ShardedExecutor,
    execute_cells,
    make_executor,
)
from repro.campaign.presets import PAPER_IMPLEMENTATIONS, paper_grid, sweep_grid
from repro.campaign.result import CampaignResult, CellResult, cell_result
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.sweep import SWEEP_MODES, ScenarioSweep

__all__ = [
    "CampaignCell",
    "CampaignSpec",
    "CampaignResult",
    "CellError",
    "CellResult",
    "ResultCache",
    "cell_result",
    "ScenarioSweep",
    "SWEEP_MODES",
    "SerialExecutor",
    "ShardedExecutor",
    "PAPER_IMPLEMENTATIONS",
    "cell_digest",
    "execute_cells",
    "kernel_fingerprint",
    "make_executor",
    "paper_grid",
    "run_campaign",
    "sweep_grid",
]
