"""Command-line interface: ``splice <spec-file> [-o OUTPUT_DIR]``.

Mirrors how the original tool was driven: point it at a specification file
and it writes the generated hardware and software files into a subdirectory
named after the ``%device_name`` directive.

``--simulate N`` additionally elaborates the generated design into a
simulated SoC (with default stub behaviours), advances it ``N`` bus cycles,
and prints the kernel's :class:`~repro.rtl.simulator.SimulatorStats` —
settle passes, process activations, and fast-path cycles.  ``--kernel``
selects the event-driven kernel (default) or the snapshot-based reference
kernel for comparison.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.engine import Splice
from repro.core.syntax.errors import SpliceError


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="splice",
        description="Generate bus-independent peripheral interfaces from a Splice specification.",
    )
    parser.add_argument("spec", help="path to the Splice specification file")
    parser.add_argument(
        "-o", "--output", default=".", help="directory under which <device_name>/ is created"
    )
    parser.add_argument(
        "--list-only",
        action="store_true",
        help="print the files that would be generated without writing them",
    )
    parser.add_argument(
        "--simulate",
        type=int,
        default=None,
        metavar="CYCLES",
        help="elaborate the design, run CYCLES bus cycles, and print simulator stats "
        "(no files are written)",
    )
    parser.add_argument(
        "--kernel",
        choices=("event", "reference"),
        default="event",
        help="simulation kernel used with --simulate (default: event-driven)",
    )
    return parser


def _simulate(args) -> int:
    from repro.rtl.simulator import ReferenceSimulator, Simulator
    from repro.soc.system import build_system

    factory = Simulator if args.kernel == "event" else ReferenceSimulator
    source = Path(args.spec).read_text()
    system = build_system(source, simulator_factory=factory)
    system.run(max(0, args.simulate))
    print(f"Simulated {system.cycles} bus cycles with the {args.kernel} kernel:")
    print(system.stats.report())
    return 0


def main(argv=None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.simulate is not None and args.list_only:
        print("splice: --list-only and --simulate are mutually exclusive", file=sys.stderr)
        return 2
    engine = Splice()
    try:
        if args.simulate is not None:
            return _simulate(args)
        result = engine.generate_file(Path(args.spec))
    except FileNotFoundError:
        print(f"splice: specification file not found: {args.spec}", file=sys.stderr)
        return 2
    except SpliceError as exc:
        print(f"splice: {exc}", file=sys.stderr)
        return 1

    listing = result.hardware_file_listing() + result.software_file_listing()
    if args.list_only:
        for name in listing:
            print(name)
        return 0

    written = result.write_to(args.output)
    print(f"Generated {len(listing)} files for device {result.device_name!r}:")
    for name in listing:
        print(f"  {written[name]}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
