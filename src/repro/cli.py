"""Command-line interface.

Subcommands:

``splice generate <spec-file> [-o OUTPUT_DIR] [--list-only]``
    Mirrors how the original tool was driven: point it at a specification
    file and it writes the generated hardware and software files into a
    subdirectory named after the ``%device_name`` directive.
    ``--simulate N`` additionally elaborates the generated design into a
    simulated SoC (with default stub behaviours), advances it ``N`` bus
    cycles, and prints the kernel's
    :class:`~repro.rtl.simulator.SimulatorStats`; ``--kernel`` selects the
    event-driven kernel (default), the snapshot-based reference kernel, or
    the levelized compiled kernel (see :data:`repro.rtl.KERNELS`).

``splice campaign run``
    Run a declarative campaign grid (a preset, or implementations × a
    parametric scenario sweep) serially or sharded across worker processes,
    with an optional content-addressed result cache, and write
    JSON/CSV/markdown artifacts.

``splice campaign report <campaign.json>``
    Re-render a previously written campaign result as markdown, CSV or a
    plain-text table without re-running anything.

``splice profile <label-or-spec> [--kernel K] [--scenario N] [--top N]``
    Run one scenario (for a registry label such as ``splice_plb``) or a
    plain simulation (for a specification file) under :mod:`cProfile` and
    print the top cumulative hotspots — the reproducible way to attribute
    wall-clock between the harness (drivers, masters, monitors) and the
    simulation kernel.

``splice fuzz run [--budget N] [--seed S] [--faults] [--profile quick|deep]``
    Property-based scenario fuzzing with the kernels as the oracle
    (:mod:`repro.fuzz`): generate randomized topologies and workloads,
    execute each on all three kernels, and record any disagreement as a
    shrunk, replayable counterexample in the corpus.  Exits nonzero only
    if counterexamples were found, and only at the end of the budget.

``splice fuzz replay <case>``
    Re-run one corpus case (a JSON path, or a case token to look up in the
    corpus directory) through the oracle and report its verdict.

``splice fuzz submit [--url URL] [--seed-start S] [--sessions N] [--budget B]``
    Shard a fuzz seed range across a running farm's warm workers (one
    deterministic session per seed), stream findings as they are shrunk,
    and print the aggregated coverage summary.

``splice serve [--host H] [--port P] [--workers N|auto] [--state-dir DIR]``
    Start the long-lived simulation farm (:mod:`repro.service`): persistent
    warm workers, a priority job queue and the streaming HTTP/JSON API.
    ``--preload`` builds named runners in every worker before the first job
    arrives.  ``--state-dir`` makes the farm durable: a write-ahead job
    journal plus the persistent cache and fuzz corpus live under it, and a
    killed server resumes every unfinished job on restart.  ``--queue-limit``
    bounds active jobs (backpressure: 503 + Retry-After); ``--stuck-timeout``
    arms the heartbeat watchdog that kills and respawns wedged workers.

``splice submit [grid args] [--url URL] [--priority N] [--no-follow]``
    Submit a campaign grid (the same ``--preset``/``--sweep``/... arguments
    as ``campaign run``) to a running farm, follow its event stream, and
    print/write the result — bit-identical to ``campaign run`` on the same
    grid.

The legacy flat invocation ``splice <spec-file> [...]`` still works: when
the first argument is not a subcommand name it is routed to ``generate``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from repro.campaign.sweep import SWEEP_MODES
from repro.core.engine import Splice
from repro.core.syntax.errors import SpliceError
from repro.rtl import DEFAULT_KERNEL, KERNELS

#: Names that select a subcommand; anything else routes to ``generate``.
_SUBCOMMANDS = ("generate", "campaign", "profile", "serve", "submit", "faults", "fuzz")

#: Kernel choices come from the one registry, so a new kernel is
#: automatically selectable here.
_KERNEL_CHOICES = tuple(sorted(KERNELS))


def _workers_arg(value: str) -> int:
    """``--workers`` spelling: a positive count, or ``auto``/``0`` for one
    worker per host CPU (resolved by :func:`repro.campaign.make_executor` /
    :func:`repro.service.resolve_workers`)."""
    if value == "auto":
        return 0
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None
    if workers < 0:
        raise argparse.ArgumentTypeError("workers must be >= 0 (0 = auto)")
    return workers


def _add_generate_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("spec", help="path to the Splice specification file")
    parser.add_argument(
        "-o", "--output", default=".", help="directory under which <device_name>/ is created"
    )
    parser.add_argument(
        "--list-only",
        action="store_true",
        help="print the files that would be generated without writing them",
    )
    parser.add_argument(
        "--simulate",
        type=int,
        default=None,
        metavar="CYCLES",
        help="elaborate the design, run CYCLES bus cycles, and print simulator stats "
        "(no files are written)",
    )
    parser.add_argument(
        "--kernel",
        choices=_KERNEL_CHOICES,
        default=DEFAULT_KERNEL,
        help="simulation kernel used with --simulate: the event-driven "
        "scheduler (default), the snapshot-based reference oracle, or the "
        "levelized compiled kernel",
    )
    parser.add_argument(
        "--no-leap",
        action="store_true",
        help="disable the compiled kernel's cycle-leaping fast path "
        "(debugging aid: idle spans are executed cycle by cycle; "
        "only meaningful with --kernel compiled)",
    )


def _add_campaign_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """Grid-selection arguments shared by ``campaign run`` and ``submit``:
    both expand the same :class:`CampaignSpec`, so a grid described to either
    command is the identical set of cells."""
    parser.add_argument(
        "--preset",
        choices=("paper", "sweep"),
        default=None,
        help="ready-made grid: 'paper' (5 implementations x Figure 9.1) or "
        "'sweep' (splice implementations x a parametric sweep)",
    )
    parser.add_argument(
        "--implementations",
        nargs="+",
        metavar="LABEL",
        default=None,
        help="implementation labels (default: the preset's, or the paper's five)",
    )
    parser.add_argument(
        "--sweep",
        choices=SWEEP_MODES,
        default=None,
        help="generate scenarios from a parametric sweep instead of Figure 9.1",
    )
    parser.add_argument("--sweep-count", type=int, default=4, metavar="N",
                        help="number of sweep scenarios (default: 4)")
    parser.add_argument("--sweep-seed", type=int, default=0,
                        help="seed for the 'random' sweep mode (default: 0)")
    parser.add_argument("--seeds", nargs="+", type=int, default=[0], metavar="S",
                        help="input-data seeds (default: 0)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="repeats per cell; each repeat draws fresh inputs (default: 1)")
    parser.add_argument("--kernel", choices=_KERNEL_CHOICES, default=DEFAULT_KERNEL,
                        help="simulation kernel every cell runs on (default: "
                        f"{DEFAULT_KERNEL}); the kernel is part of each cell's "
                        "identity and cache key")
    parser.add_argument("--faults", nargs="+", metavar="SCHEDULE", default=None,
                        help="fault-schedule grid axis: each value is a schedule "
                        "token like 'stuck_at_1:IO_ENABLE:10:3:*' (semicolon-join "
                        "specs for multi-fault schedules) or 'none' for the clean "
                        "baseline; every grid cell is run once per schedule "
                        "(default: clean only)")


def _check_grid_args(args) -> Optional[str]:
    """The one cross-argument constraint on the shared grid arguments."""
    if args.preset == "paper" and (args.sweep is not None or args.implementations is not None):
        return (
            "--preset paper fixes the grid; it cannot be combined with "
            "--sweep or --implementations (drop --preset to customise)"
        )
    return None


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="splice",
        description="Generate bus-independent peripheral interfaces from a Splice "
        "specification, and run evaluation campaigns over them.",
    )
    subparsers = parser.add_subparsers(dest="command")

    generate = subparsers.add_parser(
        "generate", help="generate interface files from a specification"
    )
    _add_generate_arguments(generate)

    campaign = subparsers.add_parser(
        "campaign", help="run or report declarative experiment campaigns"
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    run = campaign_sub.add_parser("run", help="run a campaign grid")
    _add_campaign_grid_arguments(run)
    run.add_argument("--workers", type=_workers_arg, default=1, metavar="N",
                     help="worker processes; 1 = serial, 0 or 'auto' = one per "
                     "host CPU (default: 1)")
    run.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="content-addressed result cache directory (default: no cache)")
    run.add_argument("--artifacts", default=None, metavar="DIR",
                     help="write campaign.json/.csv/.md under DIR")

    report = campaign_sub.add_parser("report", help="re-render a saved campaign result")
    report.add_argument("result", help="path to a campaign.json written by 'campaign run'")
    report.add_argument("--format", choices=("markdown", "csv", "text"), default="markdown",
                        help="output format (default: markdown)")

    faults = subparsers.add_parser(
        "faults",
        help="deterministic fault injection against the SIS protocol monitor",
        description="Mutation testing for the protocol monitor: inject seeded, "
        "probe-guided faults (stuck-at, bit flip, transient pulse, delayed "
        "handshake, dropped/duplicated beat) into generated adapters and "
        "report which ones the monitor detects.  Escapes are findings, not "
        "failures — the command exits 0 either way.",
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    faults_run = faults_sub.add_parser(
        "run", help="run the (bus x fault class) monitor-efficacy matrix"
    )
    faults_run.add_argument("--buses", nargs="+", metavar="LABEL", default=None,
                            help="Splice implementation labels to sweep "
                            "(default: the four-bus Figure 9.1 grid)")
    faults_run.add_argument("--classes", nargs="+", metavar="KIND", default=None,
                            help="fault classes to inject (default: all seven)")
    faults_run.add_argument("--scenario", type=int, default=1, metavar="N",
                            help="Figure 9.1 scenario number to run (default: 1)")
    faults_run.add_argument("--seed", type=int, default=0,
                            help="placement seed (default: 0); every row records "
                            "its exact schedule token for bit-exact replay")
    faults_run.add_argument("--kernel", choices=_KERNEL_CHOICES, default="compiled",
                            help="simulation kernel to inject into (default: "
                            "compiled; all three are cycle-exact under injection)")
    faults_run.add_argument("--artifacts", default=None, metavar="DIR",
                            help="write faults.md and faults.json under DIR")

    fuzz = subparsers.add_parser(
        "fuzz",
        help="property-based scenario fuzzing with the kernels as the oracle",
        description="Generate randomized topologies and workloads, run each on "
        "all three kernels, and demand identical traces, outcomes, monitor "
        "violations, and balanced leap accounting.  Failures are shrunk and "
        "saved as replayable JSON counterexamples in the regression corpus.",
    )
    fuzz_sub = fuzz.add_subparsers(dest="fuzz_command", required=True)
    fuzz_run = fuzz_sub.add_parser("run", help="run a deterministic fuzz session")
    fuzz_run.add_argument("--budget", type=int, default=100, metavar="N",
                          help="number of generated cases to execute (default: 100)")
    fuzz_run.add_argument("--seed", type=int, default=0, metavar="S",
                          help="session seed; (seed, budget, profile, faults) fully "
                          "determines every generated case (default: 0)")
    fuzz_run.add_argument("--faults", action="store_true",
                          help="compose cases with random fault schedules "
                          "(all three kernels must stay cycle-exact under injection)")
    fuzz_run.add_argument("--profile", choices=("quick", "deep"), default="quick",
                          help="case-size profile (default: quick)")
    fuzz_run.add_argument("--timeout", type=float, default=10.0, metavar="SECONDS",
                          help="per-case watchdog; a case that exceeds it is killed "
                          "and recorded as a 'hang' counterexample (default: 10)")
    fuzz_run.add_argument("--corpus", default=None, metavar="DIR",
                          help="corpus directory for shrunk counterexamples "
                          "(default: the repo's tests/corpus)")
    fuzz_run.add_argument("--no-save", action="store_true",
                          help="report counterexamples without writing corpus files")
    fuzz_run.add_argument("--report", default=None, metavar="PATH",
                          help="also write the full session report as JSON to PATH")
    fuzz_replay = fuzz_sub.add_parser("replay", help="replay one corpus case")
    fuzz_replay.add_argument("case",
                             help="path to a corpus JSON file, or a case token to "
                             "look up in the corpus directory")
    fuzz_replay.add_argument("--corpus", default=None, metavar="DIR",
                             help="corpus directory for token lookup "
                             "(default: the repo's tests/corpus)")
    fuzz_replay.add_argument("--timeout", type=float, default=10.0, metavar="SECONDS",
                             help="per-case watchdog (default: 10); 0 disables it "
                             "for debugging a hanging case")
    fuzz_submit = fuzz_sub.add_parser(
        "submit",
        help="submit a sharded fuzz job to a running farm",
        description="Shard a seed range across a 'splice serve' farm's warm "
        "workers (one deterministic session per seed), stream findings as "
        "they are shrunk, and print the aggregated coverage summary.",
    )
    fuzz_submit.add_argument("--url", default="http://127.0.0.1:8032",
                             help="farm base URL (default: http://127.0.0.1:8032)")
    fuzz_submit.add_argument("--seed-start", type=int, default=0, metavar="S",
                             help="first session seed (default: 0)")
    fuzz_submit.add_argument("--sessions", type=int, default=4, metavar="N",
                             help="number of sessions = seeds = shards (default: 4)")
    fuzz_submit.add_argument("--budget", type=int, default=100, metavar="N",
                             help="cases per session (default: 100)")
    fuzz_submit.add_argument("--profile", choices=("quick", "deep"), default="quick",
                             help="case-size profile (default: quick)")
    fuzz_submit.add_argument("--faults", action="store_true",
                             help="compose cases with random fault schedules")
    fuzz_submit.add_argument("--case-timeout", type=float, default=10.0,
                             metavar="SECONDS",
                             help="per-case watchdog inside each session (default: 10)")
    fuzz_submit.add_argument("--priority", type=int, default=0,
                             help="queue priority; higher runs sooner (default: 0)")
    fuzz_submit.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                             help="per-job timeout enforced by the farm (default: none)")
    fuzz_submit.add_argument("--no-follow", action="store_true",
                             help="print the job id and exit instead of streaming "
                             "events and waiting for the summary")

    profile = subparsers.add_parser(
        "profile",
        help="cProfile a scenario run (harness-vs-kernel attribution)",
        description="Run one implementation scenario (or a spec-file simulation) "
        "under cProfile and print the top cumulative hotspots, so "
        "harness-vs-kernel time attribution is reproducible by anyone.",
    )
    profile.add_argument(
        "spec",
        help="an implementation label from the runner registry (e.g. splice_plb) "
        "or a path to a Splice specification file",
    )
    profile.add_argument("--kernel", choices=_KERNEL_CHOICES, default=DEFAULT_KERNEL,
                         help=f"simulation kernel to profile (default: {DEFAULT_KERNEL})")
    profile.add_argument("--no-leap", action="store_true",
                         help="disable the compiled kernel's cycle-leaping fast path "
                         "(only meaningful with --kernel compiled)")
    profile.add_argument("--scenario", type=int, default=2, metavar="N",
                         help="Figure 9.1 scenario number for registry labels (default: 2)")
    profile.add_argument("--repeat", type=int, default=20, metavar="R",
                         help="scenario repetitions under the profiler (default: 20)")
    profile.add_argument("--cycles", type=int, default=20_000, metavar="CYCLES",
                         help="cycles to simulate when profiling a spec file (default: 20000)")
    profile.add_argument("--top", type=int, default=25, metavar="N",
                         help="number of hotspots to print (default: 25)")
    profile.add_argument("--sort", choices=("cumulative", "tottime"), default="cumulative",
                         help="pstats sort order (default: cumulative)")

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived simulation farm with its HTTP/JSON API",
        description="Start a persistent simulation farm: warm worker processes "
        "holding built runners resident across jobs, a priority job queue, a "
        "shared content-addressed result cache, and the HTTP API "
        "(POST /jobs, GET /jobs/<id>, streaming GET /jobs/<id>/events, "
        "DELETE /jobs/<id>, GET /stats).  Submit work with 'splice submit'.",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="address to bind (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8032,
                       help="port to bind; 0 picks an ephemeral port (default: 8032)")
    serve.add_argument("--workers", type=_workers_arg, default=0, metavar="N",
                       help="warm worker processes; 0 or 'auto' = one per host CPU "
                       "(default: auto)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="shared content-addressed result cache directory "
                       "(default: an ephemeral cache that dies with the farm)")
    serve.add_argument("--preload", nargs="+", metavar="LABEL[:KERNEL]", default=(),
                       help="implementation runners to build in every worker at "
                       "startup, e.g. 'splice_plb' or 'splice_plb:compiled' "
                       "(default: none; runners are built on first use)")
    serve.add_argument("--shard-size", type=int, default=None, metavar="CELLS",
                       help="cells per dispatched shard — the unit of scheduling "
                       "and cancellation (default: 4)")
    serve.add_argument("--drain-timeout", type=float, default=30.0, metavar="SECONDS",
                       help="on SIGINT/SIGTERM, stop accepting jobs and let "
                       "running work finish for up to this long before "
                       "cancelling what remains (default: 30; 0 = stop "
                       "immediately)")
    serve.add_argument("--state-dir", default=None, metavar="DIR",
                       help="make the farm durable: keep a write-ahead job "
                       "journal (plus the result cache and fuzz corpus) under "
                       "DIR, so a killed server resumes every unfinished job "
                       "on restart from its last completed shard (default: "
                       "no journal; jobs die with the process)")
    serve.add_argument("--queue-limit", type=int, default=None, metavar="N",
                       help="backpressure: reject new submissions with 503 + "
                       "Retry-After while N jobs are already active "
                       "(default: unbounded)")
    serve.add_argument("--stuck-timeout", type=float, default=None, metavar="SECONDS",
                       help="SIGKILL and respawn a busy worker that has sent "
                       "no message for this long (default: 300; 0 disables "
                       "the watchdog)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")

    submit = subparsers.add_parser(
        "submit",
        help="submit a campaign grid to a running farm",
        description="Submit a campaign (the same grid arguments as "
        "'campaign run') to a 'splice serve' farm over HTTP, follow its "
        "event stream, and print or write the result — bit-identical to "
        "running the same grid locally.",
    )
    _add_campaign_grid_arguments(submit)
    submit.add_argument("--url", default="http://127.0.0.1:8032",
                        help="farm base URL (default: http://127.0.0.1:8032)")
    submit.add_argument("--priority", type=int, default=0,
                        help="queue priority; higher runs sooner (default: 0)")
    submit.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="per-job timeout enforced by the farm (default: none)")
    submit.add_argument("--no-follow", action="store_true",
                        help="print the job id and exit instead of streaming "
                        "events and waiting for the result")
    submit.add_argument("--artifacts", default=None, metavar="DIR",
                        help="write campaign.json/.csv/.md under DIR")

    return parser


def _simulate(args) -> int:
    from repro.soc.system import build_system

    source = Path(args.spec).read_text()
    system = build_system(source, kernel=args.kernel, leap=not args.no_leap)
    system.run(max(0, args.simulate))
    print(f"Simulated {system.cycles} bus cycles with the {args.kernel} kernel:")
    print(system.stats.report())
    return 0


def _generate(args) -> int:
    if args.simulate is not None and args.list_only:
        print("splice: --list-only and --simulate are mutually exclusive", file=sys.stderr)
        return 2
    engine = Splice()
    try:
        if args.simulate is not None:
            return _simulate(args)
        result = engine.generate_file(Path(args.spec))
    except FileNotFoundError:
        print(f"splice: specification file not found: {args.spec}", file=sys.stderr)
        return 2
    except SpliceError as exc:
        print(f"splice: {exc}", file=sys.stderr)
        return 1

    listing = result.hardware_file_listing() + result.software_file_listing()
    if args.list_only:
        for name in listing:
            print(name)
        return 0

    written = result.write_to(args.output)
    print(f"Generated {len(listing)} files for device {result.device_name!r}:")
    for name in listing:
        print(f"  {written[name]}")
    return 0


def _print_fsm_attribution(simulator) -> None:
    """Per-machine cycle attribution (compiled kernel only).

    Names where the per-cycle budget goes instead of leaving it to guesses:
    one row per clocked machine with the cycles it actually ran (``active``)
    versus the cycles the wait-state gate elided it and the cycles the
    kernel leaped over outright (every machine parked — no per-cycle work at
    all), plus whether the machine executes inline in the generated loop
    (``lowered``) or as a Python call.
    """
    process_profile = getattr(simulator, "process_profile", None)
    if process_profile is None:
        return
    records = sorted(process_profile(), key=lambda r: -r["active"])
    cycles = simulator.stats.cycles or 1
    leaped = simulator.stats.leaped_cycles
    print(f"\nPer-FSM attribution over {simulator.stats.cycles} cycles, "
          f"{leaped} of them leaped (active = cycles the machine ran, "
          f"elided = skipped while parked, leaped = whole-kernel skips):")
    width = max([len(r["label"]) for r in records] + [7])
    print(f"  {'machine':<{width}}  {'kind':<7}  {'active':>8}  {'elided':>8}  "
          f"{'leaped':>8}  active%")
    for record in records:
        share = 100.0 * record["active"] / cycles
        print(
            f"  {record['label']:<{width}}  {record['kind']:<7}  "
            f"{record['active']:>8}  {record['elided']:>8}  "
            f"{record.get('leaped', 0):>8}  {share:6.1f}%"
        )


def _profile(args) -> int:
    """``splice profile``: cProfile a scenario run, print top-N hotspots."""
    import cProfile
    import pstats

    from repro.devices.registry import build_runner, known_labels
    from repro.evaluation.scenarios import SCENARIOS

    profiler = cProfile.Profile()
    simulator = None
    if args.spec in known_labels():
        scenario = next((s for s in SCENARIOS if s.number == args.scenario), None)
        if scenario is None:
            numbers = sorted(s.number for s in SCENARIOS)
            print(f"splice: unknown scenario {args.scenario} (known: {numbers})", file=sys.stderr)
            return 2
        runner = build_runner(args.spec, kernel=args.kernel, leap=not args.no_leap)
        simulator = getattr(runner, "simulator", None)
        if simulator is None:
            simulator = runner.system.simulator
        sets = scenario.generate_inputs()
        runner.run_scenario(sets)  # warm up: elaboration/compile stays out of the profile
        cycles = 0
        profiler.enable()
        for _ in range(max(1, args.repeat)):
            cycles += runner.run_scenario(sets)["cycles"]
        profiler.disable()
        subject = (
            f"{args.spec} scenario {args.scenario} x{max(1, args.repeat)} "
            f"({cycles} bus cycles)"
        )
    else:
        from repro.soc.system import build_system

        try:
            source = Path(args.spec).read_text()
        except OSError:
            print(
                f"splice: {args.spec!r} is neither a registered implementation label "
                f"(known: {known_labels()}) nor a readable specification file",
                file=sys.stderr,
            )
            return 2
        try:
            system = build_system(source, kernel=args.kernel, leap=not args.no_leap)
        except SpliceError as exc:
            print(f"splice: {exc}", file=sys.stderr)
            return 1
        cycles = max(1, args.cycles)
        system.run(1)  # warm up (first step compiles on the compiled kernel)
        simulator = system.simulator
        profiler.enable()
        system.run(cycles)
        profiler.disable()
        subject = f"{args.spec} ({cycles} bus cycles)"

    print(f"Profile of {subject} on the {args.kernel} kernel, by {args.sort} time:")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(max(1, args.top))
    _print_fsm_attribution(simulator)
    return 0


def _campaign_spec_from_args(args):
    from repro.campaign.presets import PAPER_IMPLEMENTATIONS, paper_grid, sweep_grid
    from repro.campaign.spec import CampaignSpec
    from repro.campaign.sweep import ScenarioSweep
    from repro.evaluation.scenarios import SCENARIOS

    sweep = None
    if args.sweep is not None or args.preset == "sweep":
        # The sweep preset without an explicit --sweep mode uses the default
        # (linear) mode but still honours --sweep-count / --sweep-seed.
        sweep = ScenarioSweep(
            mode=args.sweep or "linear", count=args.sweep_count, seed=args.sweep_seed
        )

    if args.preset == "paper" or (args.preset is None and sweep is None and args.implementations is None):
        spec = paper_grid(seeds=tuple(args.seeds), repeats=args.repeats, kernel=args.kernel)
    elif args.preset == "sweep" or sweep is not None:
        kwargs = dict(seeds=tuple(args.seeds), repeats=args.repeats, kernel=args.kernel)
        if args.implementations is not None:
            kwargs["implementations"] = tuple(args.implementations)
        spec = sweep_grid(sweep, **kwargs)
    else:
        spec = CampaignSpec(
            implementations=tuple(args.implementations or PAPER_IMPLEMENTATIONS),
            scenarios=SCENARIOS,
            seeds=tuple(args.seeds),
            repeats=args.repeats,
            name="cli-grid",
            kernel=args.kernel,
        )
    if getattr(args, "faults", None):
        import dataclasses

        faults = tuple(
            None if token.lower() in ("none", "clean") else token
            for token in args.faults
        )
        # replace() re-runs __post_init__, so malformed tokens fail here with
        # the parser's message rather than inside a worker.
        spec = dataclasses.replace(spec, faults=faults)
    return spec


def _campaign_run(args) -> int:
    from repro.campaign.runner import run_campaign
    from repro.evaluation.experiments import IMPLEMENTATION_NAMES

    problem = _check_grid_args(args)
    if problem is not None:
        print(f"splice: {problem}", file=sys.stderr)
        return 2
    spec = _campaign_spec_from_args(args)
    cache = None
    if args.cache_dir:
        from repro.campaign.cache import ResultCache

        try:
            cache = ResultCache(args.cache_dir)
        except OSError as exc:
            print(f"splice: cannot use cache directory {args.cache_dir!r}: {exc}", file=sys.stderr)
            return 2
    result = run_campaign(spec, workers=args.workers, cache=cache)
    meta = result.meta
    print(
        f"Campaign {spec.name!r}: {meta['cells_total']} cells "
        f"({meta['cells_cached']} cached, {meta['cells_executed']} executed) "
        f"via {meta['executor']} executor x{meta['workers']} "
        f"in {meta['elapsed_s']:.3f}s"
    )
    if args.artifacts:
        paths = result.write_artifacts(Path(args.artifacts), names=IMPLEMENTATION_NAMES)
        for kind, path in sorted(paths.items()):
            print(f"  {kind}: {path}")
    else:
        print()
        print(result.to_markdown(names=IMPLEMENTATION_NAMES))
    return 0


def _campaign_report(args) -> int:
    from repro.campaign.result import CampaignResult
    from repro.evaluation.experiments import IMPLEMENTATION_NAMES
    from repro.evaluation.report import cycles_report

    path = Path(args.result)
    if not path.exists():
        print(f"splice: campaign result not found: {args.result}", file=sys.stderr)
        return 2
    result = CampaignResult.from_json(path)
    if args.format == "markdown":
        print(result.to_markdown(names=IMPLEMENTATION_NAMES), end="")
    elif args.format == "csv":
        print(result.to_csv(), end="")
    else:
        table = result.cycles_table()
        ordered = {label: table[label] for label in result.spec.implementations if label in table}
        print(cycles_report(ordered, IMPLEMENTATION_NAMES))
    return 0


def _faults_run(args) -> int:
    """``splice faults run``: the monitor-efficacy matrix."""
    import json as json_module

    from repro.evaluation.scenarios import SCENARIOS
    from repro.faults import (
        DEFAULT_MATRIX_BUSES,
        FAULT_KINDS,
        matrix_to_markdown,
        matrix_to_payload,
        run_fault_matrix,
    )

    buses = tuple(args.buses) if args.buses else DEFAULT_MATRIX_BUSES
    kinds = tuple(args.classes) if args.classes else FAULT_KINDS
    unknown = [kind for kind in kinds if kind not in FAULT_KINDS]
    if unknown:
        print(f"splice: unknown fault class(es) {unknown} "
              f"(known: {list(FAULT_KINDS)})", file=sys.stderr)
        return 2
    by_number = {s.number: s for s in SCENARIOS}
    scenario = by_number.get(args.scenario)
    if scenario is None:
        print(f"splice: unknown scenario {args.scenario} "
              f"(known: {sorted(by_number)})", file=sys.stderr)
        return 2
    try:
        rows = run_fault_matrix(
            buses, kinds, scenario=scenario, seed=args.seed, kernel=args.kernel
        )
    except KeyError as exc:
        print(f"splice: {exc}", file=sys.stderr)
        return 2
    payload = matrix_to_payload(rows, seed=args.seed, scenario=scenario, kernel=args.kernel)
    summary = payload["summary"]
    print(matrix_to_markdown(rows))
    print()
    print(
        f"{len(rows)} cells: {summary['detected']} detected, "
        f"{summary['escape']} escapes ({summary['crashed']} runs crashed). "
        "Escapes are monitor-coverage findings, not failures."
    )
    if args.artifacts:
        directory = Path(args.artifacts)
        directory.mkdir(parents=True, exist_ok=True)
        md_path = directory / "faults.md"
        json_path = directory / "faults.json"
        md_path.write_text(matrix_to_markdown(rows) + "\n")
        json_path.write_text(json_module.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"  markdown: {md_path}")
        print(f"  json: {json_path}")
    return 0


def _fuzz_run(args) -> int:
    """``splice fuzz run``: one deterministic fuzz session."""
    import json as json_module

    from repro.fuzz.corpus import DEFAULT_CORPUS_DIR

    if args.budget < 1:
        print(f"splice: fuzz budget must be >= 1, got {args.budget}", file=sys.stderr)
        return 2
    try:
        from repro.fuzz.session import run_session
    except ImportError as exc:
        print(f"splice: {exc}", file=sys.stderr)
        return 2
    corpus_dir = None if args.no_save else Path(args.corpus or DEFAULT_CORPUS_DIR)
    report = run_session(
        args.budget,
        args.seed,
        profile=args.profile,
        with_faults=args.faults,
        timeout_s=args.timeout,
        corpus_dir=corpus_dir,
    )
    print(report.render())
    if args.report:
        path = Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json_module.dumps(report.describe(), indent=2, sort_keys=True) + "\n")
        print(f"  report: {path}")
    return report.exit_code


def _fuzz_replay(args) -> int:
    """``splice fuzz replay``: one corpus case back through the oracle."""
    from repro.fuzz.corpus import DEFAULT_CORPUS_DIR, corpus_files, replay_case

    candidate = Path(args.case)
    if not candidate.is_file():
        corpus = Path(args.corpus or DEFAULT_CORPUS_DIR)
        matches = [p for p in corpus_files(corpus) if args.case in p.name]
        if len(matches) != 1:
            wanted = f"token {args.case!r}"
            if matches:
                names = ", ".join(p.name for p in matches)
                print(f"splice: {wanted} is ambiguous in {corpus}: {names}", file=sys.stderr)
            else:
                print(f"splice: no file or corpus case matches {wanted} "
                      f"(searched {corpus})", file=sys.stderr)
            return 2
        candidate = matches[0]
    try:
        verdict = replay_case(candidate, timeout_s=args.timeout)
    except (ValueError, KeyError) as exc:
        print(f"splice: malformed corpus case {candidate}: {exc}", file=sys.stderr)
        return 2
    status = "PASS" if verdict.ok else "FAIL"
    kernel = f" kernel={verdict.kernel}" if verdict.kernel else ""
    print(f"{status} [{verdict.kind}]{kernel} {candidate.name}: {verdict.detail}")
    return 0 if verdict.ok else 1


def _fuzz_submit(args) -> int:
    """``splice fuzz submit``: shard a seed range across a running farm."""
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        job = client.submit_fuzz(
            seed_start=args.seed_start,
            sessions=args.sessions,
            budget=args.budget,
            profile=args.profile,
            with_faults=args.faults,
            case_timeout_s=args.case_timeout,
            priority=args.priority,
            timeout_s=args.timeout,
        )
    except ServiceError as exc:
        print(f"splice: farm rejected the fuzz job: {exc}", file=sys.stderr)
        if exc.retry_after is not None:
            print(f"splice: farm is saturated; retry in {exc.retry_after:g}s",
                  file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"splice: no farm reachable at {args.url} ({exc}); "
              "start one with 'splice serve'", file=sys.stderr)
        return 1
    total = args.sessions
    print(f"Submitted fuzz job {job['id']} ({total} sessions x "
          f"{args.budget} cases, seeds {args.seed_start}.."
          f"{args.seed_start + total - 1}) to {args.url}")
    if args.no_follow:
        print(f"  follow with: GET {args.url}/jobs/{job['id']}/events")
        return 0

    for event in client.events(job["id"]):
        kind = event.get("event")
        if kind == "session":
            print(f"  [{event['done']}/{total}] seed {event['seed']}: "
                  f"{event['executed']} cases, {event['findings']} finding(s), "
                  f"{event['coverage']} coverage cells "
                  f"(worker {event['worker']}, {event['duration_s']:.2f}s)")
        elif kind == "finding":
            print(f"  ! {event.get('kind')} counterexample {event.get('token')} "
                  f"(worker {event.get('worker')})")
        elif kind == "session_error":
            print(f"  seed {event['seed']} failed: {event['error']}",
                  file=sys.stderr)
        elif kind == "state":
            print(f"  job {job['id']}: {event['state']}")
    status = client.status(job["id"])
    if status["state"] not in ("done", "failed"):
        print(f"splice: job {job['id']} ended {status['state']}", file=sys.stderr)
        return 1
    summary = client.result(job["id"])
    findings = summary["counterexamples"]
    print(f"Job {job['id']}: {summary['executed']} cases over "
          f"{len(summary['sessions'])} session(s), "
          f"{len(summary['coverage'])} coverage cells, "
          f"{len(findings)} distinct counterexample(s), "
          f"{len(summary['errors'])} failed session(s)")
    for cell in summary["coverage"]:
        print(f"  covered: {cell}")
    for finding in findings:
        print(f"  counterexample: {finding.get('kind')} {finding.get('token')}")
    return 0 if status["state"] == "done" and not findings else 1


def _serve(args) -> int:
    """``splice serve``: run the farm + HTTP API until interrupted."""
    from repro.service import DEFAULT_SHARD_SIZE, SimulationFarm, resolve_workers, serve_farm

    cache = None
    if args.cache_dir:
        from repro.campaign.cache import ResultCache

        try:
            cache = ResultCache(args.cache_dir)
        except OSError as exc:
            print(f"splice: cannot use cache directory {args.cache_dir!r}: {exc}", file=sys.stderr)
            return 2
    stuck_timeout = args.stuck_timeout
    if stuck_timeout is None:
        from repro.service import DEFAULT_STUCK_TIMEOUT_S

        stuck_timeout = DEFAULT_STUCK_TIMEOUT_S
    elif stuck_timeout <= 0:
        stuck_timeout = None
    try:
        farm = SimulationFarm(
            workers=args.workers,
            cache=cache,
            preload=tuple(args.preload),
            shard_size=args.shard_size or DEFAULT_SHARD_SIZE,
            state_dir=args.state_dir,
            queue_limit=args.queue_limit,
            stuck_timeout_s=stuck_timeout,
        )
    except OSError as exc:
        print(f"splice: cannot use state directory {args.state_dir!r}: {exc}",
              file=sys.stderr)
        return 2
    try:
        farm.start()
    except (KeyError, ValueError) as exc:
        print(f"splice: {exc}", file=sys.stderr)
        return 2
    try:
        server = serve_farm(farm, args.host, args.port, quiet=not args.verbose)
    except OSError as exc:
        farm.stop()
        print(f"splice: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    host, port = server.server_address[:2]
    cache_note = args.cache_dir or (
        f"{args.state_dir}/cache" if args.state_dir else "ephemeral"
    )
    durable_note = f", journal {args.state_dir}" if args.state_dir else ""
    recovered = farm.counters["jobs_recovered"]
    if recovered:
        print(f"splice farm: recovered {recovered} unfinished job(s) "
              f"from {args.state_dir}", flush=True)
    print(
        f"splice farm: {resolve_workers(args.workers)} warm workers, "
        f"cache {cache_note}{durable_note}, "
        f"serving on http://{host}:{port}  (Ctrl-C to stop)",
        flush=True,  # the banner is what wrappers/tests parse for the bound port
    )

    import signal

    def _terminate(signum, frame):  # SIGTERM drains exactly like Ctrl-C
        raise KeyboardInterrupt

    previous_term = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        # Graceful drain: the farm rejects new jobs (503) but running and
        # queued shards keep executing; established event streams (daemon
        # handler threads) stay connected and see each job's terminal event.
        print(f"\nsplice farm: draining for up to {args.drain_timeout:g}s "
              "(running jobs finish; new submissions are rejected)", flush=True)
        outcome = farm.drain(timeout_s=args.drain_timeout)
        if outcome["cancelled"]:
            print("splice farm: drain timeout — cancelled "
                  + ", ".join(outcome["cancelled"]), flush=True)
        print("splice farm: shutting down")
    finally:
        signal.signal(signal.SIGTERM, previous_term)
        server.shutdown()
        server.server_close()
        farm.stop()
    return 0


def _submit(args) -> int:
    """``splice submit``: send a grid to a farm, follow it, print the result."""
    from repro.evaluation.experiments import IMPLEMENTATION_NAMES
    from repro.service import ServiceClient, ServiceError

    problem = _check_grid_args(args)
    if problem is not None:
        print(f"splice: {problem}", file=sys.stderr)
        return 2
    spec = _campaign_spec_from_args(args)
    client = ServiceClient(args.url)
    try:
        job = client.submit(spec, priority=args.priority, timeout_s=args.timeout)
    except ServiceError as exc:
        print(f"splice: farm rejected the job: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"splice: no farm reachable at {args.url} ({exc}); "
              "start one with 'splice serve'", file=sys.stderr)
        return 1
    print(f"Submitted job {job['id']} ({job['cells_total']} cells, "
          f"priority {job['priority']}) to {args.url}")
    if args.no_follow:
        print(f"  follow with: GET {args.url}/jobs/{job['id']}/events")
        return 0

    total = job["cells_total"]
    for event in client.events(job["id"]):
        kind = event.get("event")
        if kind == "cell":
            print(f"  [{event['done']}/{total}] {event['label']} "
                  f"scenario {event['scenario']} seed {event['seed']} "
                  f"rep {event['repeat']}: {event['cycles']} cycles "
                  f"(worker {event['worker']})")
        elif kind == "cached":
            print(f"  {event['cells']}/{total} cells served from the result cache")
        elif kind == "state":
            print(f"  job {job['id']}: {event['state']}")
    status = client.status(job["id"])
    if status["state"] not in ("done", "failed"):
        print(f"splice: job {job['id']} ended {status['state']}", file=sys.stderr)
        return 1

    from repro.campaign.result import CampaignResult

    result = CampaignResult.from_dict(client.result(job["id"]))
    meta = result.meta
    print(
        f"Job {job['id']}: {meta['cells_total']} cells "
        f"({meta['cells_cached']} cached, {meta['cells_executed']} executed, "
        f"{meta['cells_failed']} failed) in {meta['elapsed_s']:.3f}s"
    )
    if args.artifacts:
        paths = result.write_artifacts(Path(args.artifacts), names=IMPLEMENTATION_NAMES)
        for kind, path in sorted(paths.items()):
            print(f"  {kind}: {path}")
    else:
        print()
        print(result.to_markdown(names=IMPLEMENTATION_NAMES))
    return 0 if status["state"] == "done" else 1


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Legacy flat invocation: `splice <spec-file> [...]`.  Only the FIRST
    # token can select a subcommand — a later bare token may be an option
    # value (e.g. `splice -o campaign spec.spl`).  Anything else routes to
    # `generate`, except bare help flags, which get the top-level help.
    if argv and argv[0] not in _SUBCOMMANDS and not all(t in ("-h", "--help") for t in argv):
        argv = ["generate"] + argv

    args = build_arg_parser().parse_args(argv)
    if args.command == "campaign":
        if args.campaign_command == "run":
            return _campaign_run(args)
        return _campaign_report(args)
    if args.command == "profile":
        return _profile(args)
    if args.command == "faults":
        return _faults_run(args)
    if args.command == "fuzz":
        if args.fuzz_command == "run":
            return _fuzz_run(args)
        if args.fuzz_command == "submit":
            return _fuzz_submit(args)
        return _fuzz_replay(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "submit":
        return _submit(args)
    if args.command == "generate":
        return _generate(args)
    build_arg_parser().print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(141)  # downstream pipe (e.g. `| head`) closed early
