"""Analytic FPGA resource model.

The cost model follows standard synthesis rules of thumb for 4-input-LUT
fabrics (the Virtex4 used in the paper):

* a register bit costs one flip-flop plus a small amount of control logic,
* an ``N``-input, ``W``-bit multiplexer costs roughly ``W * (N - 1) / 2``
  LUTs,
* a ``W``-bit comparator costs roughly ``W / 2`` LUTs,
* a counter costs about one LUT and one flip-flop per bit, and
* an FSM costs its state register plus a few LUTs of next-state logic per
  state.

A slice on this family holds two LUTs and two flip-flops.  The absolute
numbers are approximations; the evaluation only relies on the relative
ordering between interface implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.generation.ir import EntityIR, HardwareIR


@dataclass(frozen=True)
class CostModel:
    """Tunable per-element costs (in LUTs / flip-flops)."""

    lut_per_mux_leg_bit: float = 0.5
    lut_per_comparator_bit: float = 0.5
    lut_per_counter_bit: float = 1.0
    ff_per_counter_bit: float = 1.0
    lut_per_register_bit: float = 0.15
    ff_per_register_bit: float = 1.0
    lut_per_fsm_state: float = 3.0
    ff_per_fsm_state_bit: float = 1.0
    lut_per_port_bit: float = 0.05
    luts_per_slice: float = 2.0
    ffs_per_slice: float = 2.0


DEFAULT_COST_MODEL = CostModel()


@dataclass
class ResourceReport:
    """Estimated resource usage of one or more entities."""

    luts: float = 0.0
    flip_flops: float = 0.0
    label: str = ""
    breakdown: dict = field(default_factory=dict)

    @property
    def slices(self) -> int:
        """Occupied slices assuming LUTs and FFs pack independently."""
        model = DEFAULT_COST_MODEL
        return int(max(self.luts / model.luts_per_slice, self.flip_flops / model.ffs_per_slice) + 0.5)

    def __add__(self, other: "ResourceReport") -> "ResourceReport":
        merged = dict(self.breakdown)
        for key, value in other.breakdown.items():
            merged[key] = merged.get(key, 0.0) + value
        return ResourceReport(
            luts=self.luts + other.luts,
            flip_flops=self.flip_flops + other.flip_flops,
            label=self.label or other.label,
            breakdown=merged,
        )

    def scaled(self, factor: float) -> "ResourceReport":
        return ResourceReport(
            luts=self.luts * factor,
            flip_flops=self.flip_flops * factor,
            label=self.label,
            breakdown={k: v * factor for k, v in self.breakdown.items()},
        )

    def as_row(self) -> dict:
        return {
            "label": self.label,
            "luts": round(self.luts, 1),
            "flip_flops": round(self.flip_flops, 1),
            "slices": self.slices,
        }


def estimate_entity(entity: EntityIR, model: CostModel = DEFAULT_COST_MODEL) -> ResourceReport:
    """Estimate one entity, honouring its ``replicas`` attribute."""
    luts = 0.0
    ffs = 0.0
    breakdown = {}

    mux_luts = sum(max(0, m.inputs - 1) * m.width * model.lut_per_mux_leg_bit for m in entity.muxes)
    cmp_luts = sum(c.width * model.lut_per_comparator_bit for c in entity.comparators)
    counter_luts = sum(c.width * model.lut_per_counter_bit for c in entity.counters)
    counter_ffs = sum(c.width * model.ff_per_counter_bit for c in entity.counters)
    reg_luts = sum(r.width * model.lut_per_register_bit for r in entity.registers)
    reg_ffs = sum(r.width * model.ff_per_register_bit for r in entity.registers)
    fsm_luts = sum(len(f.states) * model.lut_per_fsm_state for f in entity.fsms)
    fsm_ffs = sum(f.state_bits * model.ff_per_fsm_state_bit for f in entity.fsms)
    port_luts = sum(p.width * model.lut_per_port_bit for p in entity.ports)

    breakdown["muxes"] = mux_luts
    breakdown["comparators"] = cmp_luts
    breakdown["counters"] = counter_luts
    breakdown["registers"] = reg_luts
    breakdown["fsms"] = fsm_luts
    breakdown["ports"] = port_luts
    breakdown["overhead"] = float(entity.overhead_luts)

    luts = mux_luts + cmp_luts + counter_luts + reg_luts + fsm_luts + port_luts + entity.overhead_luts
    ffs = counter_ffs + reg_ffs + fsm_ffs

    report = ResourceReport(luts=luts, flip_flops=ffs, label=entity.name, breakdown=breakdown)
    replicas = int(entity.attributes.get("replicas", 1))
    if replicas > 1:
        report = report.scaled(replicas)
        report.label = entity.name
    return report


def estimate_entities(entities: Iterable[EntityIR], label: str = "", model: CostModel = DEFAULT_COST_MODEL) -> ResourceReport:
    """Sum the estimates of several entities under one label."""
    total = ResourceReport(label=label)
    for entity in entities:
        total = total + estimate_entity(entity, model)
    total.label = label
    return total


def estimate_hardware(ir: HardwareIR, label: str = "", model: CostModel = DEFAULT_COST_MODEL) -> ResourceReport:
    """Estimate an entire generated peripheral (interface + arbiter + stubs)."""
    return estimate_entities(ir.entities, label=label or ir.device_name, model=model)
