"""FPGA resource estimation (for the Figure 9.3 comparison).

The paper reports post-synthesis resource usage on a Virtex4-FX12.  Without
a synthesis tool, this package charges each structural element of the
generated (or hand-described) hardware a calibrated LUT/flip-flop cost and
folds the results into slice counts, so the *relative* ordering and rough
ratios between interface implementations are structural consequences of the
designs rather than hard-coded outputs.
"""

from repro.resources.estimator import (
    ResourceReport,
    CostModel,
    estimate_entity,
    estimate_entities,
    estimate_hardware,
)

__all__ = [
    "ResourceReport",
    "CostModel",
    "estimate_entity",
    "estimate_entities",
    "estimate_hardware",
]
