"""Structural building block for simulated hardware.

A :class:`Module` owns signals, clocked/combinational processes, and child
modules.  Attaching the top-level module to a simulator recursively registers
everything below it, mirroring how an HDL elaborates a design hierarchy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.rtl.signal import Signal
from repro.rtl.simulator import Process, Simulator


class Module:
    """Base class for simulated hardware blocks.

    Subclasses create signals with :meth:`signal`, register behaviour with
    :meth:`clocked` / :meth:`comb`, and instantiate children with
    :meth:`submodule`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._signals: Dict[str, Signal] = {}
        self._clocked: List[Tuple[Process, Optional[Tuple[Signal, ...]]]] = []
        self._comb: List[
            Tuple[Process, Optional[Tuple[Signal, ...]], Optional[Tuple[Signal, ...]]]
        ] = []
        self._children: List["Module"] = []
        self._simulator: Optional[Simulator] = None

    # -- construction --------------------------------------------------------

    def signal(self, name: str, width: int = 1, reset: int = 0) -> Signal:
        """Create a signal scoped to this module (name-prefixed in traces)."""
        full_name = f"{self.name}.{name}"
        if name in self._signals:
            raise ValueError(f"duplicate signal {full_name!r}")
        sig = Signal(full_name, width=width, reset=reset)
        self._signals[name] = sig
        return sig

    def clocked(
        self, process: Process, sensitive_to: Optional[Sequence[Signal]] = None
    ) -> Process:
        """Register a clocked process owned by this module.

        ``sensitive_to`` optionally declares the process's complete signal
        input set, opting it into the compiled kernel's wait-state elision;
        the process must then report activity via its return value (see
        ``Simulator.add_clocked``).
        """
        sensitivity = tuple(sensitive_to) if sensitive_to is not None else None
        self._clocked.append((process, sensitivity))
        return process

    def comb(
        self,
        process: Process,
        sensitive_to: Optional[Sequence[Signal]] = None,
        drives: Optional[Sequence[Signal]] = None,
    ) -> Process:
        """Register a combinational process owned by this module.

        ``sensitive_to`` lists the signals the process reads; the event-driven
        kernel re-runs the process only when one of them changes.  Omitting it
        falls back to run-always semantics (see ``Simulator.add_comb``).
        ``drives`` lists the signals the process may drive, which the compiled
        kernel requires to levelize the combinational network.
        """
        sensitivity = tuple(sensitive_to) if sensitive_to is not None else None
        driven = tuple(drives) if drives is not None else None
        self._comb.append((process, sensitivity, driven))
        return process

    def submodule(self, module: "Module") -> "Module":
        """Register ``module`` as a child of this module."""
        self._children.append(module)
        return module

    # -- elaboration -----------------------------------------------------------

    def attach(self, simulator: Simulator) -> None:
        """Recursively register this module's contents with ``simulator``."""
        self._simulator = simulator
        for sig in self._signals.values():
            simulator.add_signal(sig)
        for proc, sensitivity in self._clocked:
            simulator.add_clocked(proc, sensitive_to=sensitivity)
        for proc, sensitivity, driven in self._comb:
            simulator.add_comb(proc, sensitive_to=sensitivity, drives=driven)
        for child in self._children:
            child.attach(simulator)

    # -- introspection ------------------------------------------------------

    @property
    def signals(self) -> Dict[str, Signal]:
        """Mapping of local signal names to :class:`Signal` objects."""
        return dict(self._signals)

    @property
    def children(self) -> List["Module"]:
        return list(self._children)

    def iter_signals(self):
        """Yield every signal in this module and its children."""
        yield from self._signals.values()
        for child in self._children:
            yield from child.iter_signals()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} signals={len(self._signals)} children={len(self._children)}>"
