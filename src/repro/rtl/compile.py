"""Levelized compiled simulation kernel: elaborate once, run straight-line.

The event-driven kernel re-discovers, on every cycle, which processes to run
— set unions over dirty signals, dict lookups per sensitivity entry, and a
fixed-point settle loop.  Production cycle-based HDL simulators do none of
that at runtime: they *levelize* the combinational network once at
elaboration and emit a single evaluation order.  :class:`CompiledSimulator`
brings that technique to this codebase.

At registration-freeze time (the first ``step``/``settle``/``reset`` after a
registration, or an explicit :meth:`CompiledSimulator.compile`) the kernel:

1. **assigns dense integer ids** to every signal and process;
2. **builds the sensitivity DAG** from the ``add_comb(..., sensitive_to=...,
   drives=...)`` declarations — an edge from process P to process Q for each
   signal P drives that Q is sensitive to;
3. **topologically ranks** the combinational processes (Kahn's algorithm,
   registration order within a rank), *statically rejecting* true
   combinational cycles at compile time with the offending signal path in
   the :class:`~repro.rtl.simulator.SimulationError` — before any cycle
   runs;
4. **code-generates a fused ``step(n)`` loop** — clocked phase, non-observer
   commit of scheduled signals, a *single* rank-ordered settle sweep gated
   by an integer event bitmask, and monitor dispatch — with every per-cycle
   attribute/property lookup hoisted into locals and every process call
   unrolled.

Levelization is what makes the single sweep sufficient: producers are
ordered before consumers, so each triggered process runs at most once per
cycle and the sweep ends at the same fixed point the event-driven kernel
iterates to.  The price is a stricter contract: every combinational process
must declare both its complete input set (``sensitive_to``) and its complete
output set (``drives``), and must be a pure function of signal values.

Event bitmask layout
--------------------

One Python integer carries all pending work.  Bits ``[0, n_comb)`` are
"combinational process i must re-run"; bits ``[n_comb, n_comb + n_gated)``
are "elidable clocked process j must wake".  Each signal's
:attr:`~repro.rtl.signal.Signal._ev_mask` is the OR of the bits of every
process that reads it, so a committed or driven change is one ``|=`` — no
sets, no dicts, no per-process scheduling structures.

Clocked wait-state elision
--------------------------

Clocked processes registered with ``add_clocked(proc, sensitive_to=[...])``
opt into elision: the compiled kernel skips them on cycles where none of
their declared inputs changed *and* their previous run reported quiescence
(a falsy return value).  The contract mirrors what the generated hardware
does — an FSM sitting in a wait state with stable inputs computes nothing —
and is what lets an idle SoC run at the cost of its genuinely active
processes only.  A process must return truthy whenever re-running it with
unchanged inputs would not be a no-op (it scheduled a signal, changed
internal state it will act on, or is mid-countdown).  Processes registered
without ``sensitive_to`` run every cycle, exactly as on the other kernels.

``tests/test_kernel_equivalence.py`` proves the whole construction
cycle-exact (full signal traces, every cycle) against both the event-driven
kernel and the snapshot-based reference kernel on all four buses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.rtl.signal import Signal
from repro.rtl.simulator import Process, SimulationError, Simulator


@dataclass
class CompiledDesign:
    """Introspection record of one elaboration freeze.

    Exposed as :attr:`CompiledSimulator.design` so tests and tools can see
    exactly what the compiler decided: the dense ids, the levelization, and
    the generated source itself.
    """

    #: Dense id per registered signal, in registration order.
    signal_ids: Dict[str, int] = field(default_factory=dict)
    #: Comb process ids in rank order (the settle sweep order).
    comb_order: List[int] = field(default_factory=list)
    #: Rank (level) per comb process id.
    comb_ranks: Dict[int, int] = field(default_factory=dict)
    #: Comb process ids grouped by rank, rank-major.
    levels: List[List[int]] = field(default_factory=list)
    #: Clocked process ids that opted into wait-state elision.
    gated_clocked: Tuple[int, ...] = ()
    #: Number of clocked processes that always run.
    always_clocked: int = 0
    #: The generated fused step-loop source (debugging aid).
    source: str = ""


def _find_cycle_path(
    adjacency: Dict[int, Dict[int, Signal]], candidates: Sequence[int]
) -> List[Signal]:
    """Return the signals along one combinational cycle among ``candidates``.

    ``adjacency[p][q]`` is a signal driven by process ``p`` and sensed by
    process ``q``.  Called only when Kahn's algorithm left ``candidates``
    unranked, so a cycle is guaranteed to exist among them.
    """
    # Trim nodes that merely sit downstream of the cycle (no successor left
    # in the set) until only strongly-connected members remain; then any
    # walk inside the set must revisit a node.
    remaining = set(candidates)
    trimmed = True
    while trimmed:
        trimmed = False
        for node in list(remaining):
            if not any(q in remaining for q in adjacency.get(node, ())):
                remaining.discard(node)
                trimmed = True
    start = min(remaining)
    stack: List[int] = [start]
    on_path = {start: 0}
    while True:
        node = stack[-1]
        successor = next(q for q in adjacency.get(node, ()) if q in remaining)
        if successor in on_path:
            cycle_nodes = stack[on_path[successor]:] + [successor]
            return [
                adjacency[cycle_nodes[i]][cycle_nodes[i + 1]]
                for i in range(len(cycle_nodes) - 1)
            ]
        on_path[successor] = len(stack)
        stack.append(successor)


class CompiledSimulator(Simulator):
    """Levelized, code-generated simulation kernel.

    Shares the full registration API of :class:`~repro.rtl.simulator.Simulator`
    but requires every combinational process to declare ``sensitive_to`` and
    ``drives``.  Registration after a freeze simply invalidates the compiled
    program; the next ``step``/``settle``/``reset`` re-freezes.

    ``max_settle_iterations`` is accepted for API compatibility but unused:
    combinational loops are rejected statically at compile time instead of
    being detected by an iteration limit at runtime.
    """

    def __init__(self, max_settle_iterations: int = 64) -> None:
        super().__init__(max_settle_iterations=max_settle_iterations)
        self._sched: List[Signal] = []
        self._events = 0
        self._active = 0
        self._comb_all = 0
        self._gated_all = 0
        self._step_fn: Optional[Callable[[int], None]] = None
        self._settle_fn: Optional[Callable[[], int]] = None
        self.design: Optional[CompiledDesign] = None

    # -- registration (every mutation invalidates the compiled program) -----

    def add_signal(self, signal: Signal) -> Signal:
        self._step_fn = None
        self._signals.append(signal)
        signal.bind(self)
        if signal._next is not None:
            self._sched.append(signal)
        return signal

    def add_clocked(
        self, process: Process, sensitive_to: Optional[Sequence[Signal]] = None
    ) -> Process:
        self._step_fn = None
        return super().add_clocked(process, sensitive_to=sensitive_to)

    def add_comb(
        self,
        process: Process,
        sensitive_to: Optional[Sequence[Signal]] = None,
        drives: Optional[Sequence[Signal]] = None,
    ) -> Process:
        self._step_fn = None
        return super().add_comb(process, sensitive_to=sensitive_to, drives=drives)

    def add_monitor(self, process: Process) -> Process:
        self._step_fn = None
        return super().add_monitor(process)

    # -- signal event hooks --------------------------------------------------

    def _signal_scheduled(self, signal: Signal) -> None:
        self._sched.append(signal)

    def _signal_changed(self, signal: Signal) -> None:
        self._events |= signal._ev_mask

    # -- compilation ---------------------------------------------------------

    def compile(self) -> CompiledDesign:
        """Freeze the registered design and build the fused step program.

        Safe to call repeatedly; recompiles only after a registration.
        Raises :class:`SimulationError` for combinational cycles or missing
        ``sensitive_to``/``drives`` declarations.
        """
        if self._step_fn is None:
            self._build()
        assert self.design is not None
        return self.design

    def _ensure_compiled(self) -> None:
        if self._step_fn is None:
            self._build()

    def _levelize(self) -> Tuple[List[int], Dict[int, int]]:
        """Rank the comb processes; reject cycles with the signal path."""
        decls = self._comb_decls
        for pid, (proc, sense, driven) in enumerate(decls):
            missing = [
                name
                for name, value in (("sensitive_to", sense), ("drives", driven))
                if value is None
            ]
            if missing:
                label = getattr(proc, "__qualname__", repr(proc))
                raise SimulationError(
                    f"CompiledSimulator requires every combinational process to "
                    f"declare its inputs and outputs; process #{pid} ({label}) "
                    f"is missing {' and '.join(missing)}.  Declare them via "
                    f"add_comb(proc, sensitive_to=[...], drives=[...]) or use "
                    f"the event-driven kernel for run-always processes."
                )

        # adjacency[p][q] = one signal driven by p and sensed by q.
        readers: Dict[Signal, List[int]] = {}
        for pid, (_, sense, _) in enumerate(decls):
            for sig in sense:
                readers.setdefault(sig, []).append(pid)
        adjacency: Dict[int, Dict[int, Signal]] = {}
        indegree = {pid: 0 for pid in range(len(decls))}
        for pid, (_, _, driven) in enumerate(decls):
            edges = adjacency.setdefault(pid, {})
            for sig in driven:
                for reader in readers.get(sig, ()):
                    if reader not in edges:
                        edges[reader] = sig
                        indegree[reader] += 1

        # Kahn's algorithm; ready set ordered by registration index so ties
        # replay the event kernel's registration-order execution.
        ranks: Dict[int, int] = {}
        ready = sorted(pid for pid, deg in indegree.items() if deg == 0)
        order: List[int] = []
        while ready:
            pid = ready.pop(0)
            rank = max(
                (ranks[p] + 1 for p, edges in adjacency.items() if pid in edges and p in ranks),
                default=0,
            )
            ranks[pid] = rank
            order.append(pid)
            newly_ready = []
            for successor in adjacency.get(pid, {}):
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    newly_ready.append(successor)
            if newly_ready:
                ready = sorted(ready + newly_ready)
        if len(order) != len(decls):
            leftovers = [pid for pid in range(len(decls)) if pid not in ranks]
            path = _find_cycle_path(adjacency, leftovers)
            chain = " -> ".join(sig.name for sig in path + path[:1])
            raise SimulationError(
                f"combinational cycle detected at compile time: {chain} "
                f"(each signal is driven by a process sensitive to the "
                f"previous one; break the loop with a clocked register)"
            )
        return order, ranks

    def _build(self) -> None:
        comb_procs = [proc for proc, _, _ in self._comb_decls]
        order, ranks = self._levelize()
        n_comb = len(comb_procs)

        gated: List[int] = []
        always: List[int] = []
        for cid, (_, sense) in enumerate(self._clocked_decls):
            (gated if sense is not None else always).append(cid)

        # Dense ids + per-signal event masks.
        signal_ids: Dict[str, int] = {}
        for index, sig in enumerate(self._signals):
            signal_ids.setdefault(sig.name, index)
            sig._ev_mask = 0
        for pid, (_, sense, _) in enumerate(self._comb_decls):
            bit = 1 << pid
            for sig in sense:
                sig._ev_mask |= bit
        for wake_pos, cid in enumerate(gated):
            bit = 1 << (n_comb + wake_pos)
            for sig in self._clocked_decls[cid][1]:
                sig._ev_mask |= bit

        self._comb_all = (1 << n_comb) - 1
        self._gated_all = (1 << len(gated)) - 1

        levels: List[List[int]] = []
        for pid in order:
            while len(levels) <= ranks[pid]:
                levels.append([])
            levels[ranks[pid]].append(pid)

        source = self._codegen(order, gated, always, n_comb)
        namespace: Dict[str, object] = {"SIM": self}
        for cid, proc in enumerate(self._clocked):
            namespace[f"c{cid}"] = proc
        for pid, proc in enumerate(comb_procs):
            namespace[f"p{pid}"] = proc
        for mid, proc in enumerate(self._monitors):
            namespace[f"m{mid}"] = proc
        exec(compile(source, "<compiled-kernel>", "exec"), namespace)
        self._step_fn = namespace["step"]  # type: ignore[assignment]
        self._settle_fn = namespace["settle_once"]  # type: ignore[assignment]

        self.design = CompiledDesign(
            signal_ids=signal_ids,
            comb_order=list(order),
            comb_ranks=dict(ranks),
            levels=levels,
            gated_clocked=tuple(gated),
            always_clocked=len(always),
            source=source,
        )

        # A fresh freeze behaves like fresh registration on the event kernel:
        # everything is pending, so the first cycle settles the whole network
        # and runs every elidable process once.
        self._events = self._comb_all | (self._gated_all << n_comb)
        self._active = 0

    def _codegen(self, order, gated, always, n_comb) -> str:
        """Emit the fused step loop for the frozen design."""
        comb_all = self._comb_all
        gated_bit = {cid: 1 << pos for pos, cid in enumerate(gated)}
        always_set = set(always)

        clocked_lines: List[str] = []
        for cid in range(len(self._clocked)):
            if cid in always_set:
                clocked_lines.append(f"            c{cid}()")
            else:
                # Re-reading the live event word per gated process gives the
                # same-cycle visibility the scan kernels have: a clocked
                # process that drive()s a declared input of a later-registered
                # gated process wakes it within this very clocked phase.
                clocked_lines.append(
                    f"            if (run | (s._events >> {n_comb})) & {gated_bit[cid]}:"
                )
                clocked_lines.append(f"                _clk += 1")
                clocked_lines.append(f"                if c{cid}(): nact |= {gated_bit[cid]}")
        clocked_block = "\n".join(clocked_lines) or "            pass"

        def sweep_block(indent: str) -> str:
            # ``_ran`` tracks which processes this sweep executed; a comb bit
            # that is set at sweep end for a process that never ran means the
            # bit arrived *after* that process's levelized position — i.e. a
            # process drove a signal outside its declared ``drives`` set.
            # Turning that into a loud error keeps incomplete declarations
            # from silently producing stale-value traces.
            lines: List[str] = [f"{indent}_ran = 0"]
            for pid in order:
                lines.append(f"{indent}if s._events & {1 << pid}:")
                lines.append(f"{indent}    p{pid}(); _comb += 1; _ran |= {1 << pid}")
            lines.append(f"{indent}_late = s._events & {comb_all} & ~_ran")
            lines.append(f"{indent}if _late:")
            lines.append(f"{indent}    s._declaration_violation(_late)")
            return "\n".join(lines) or f"{indent}pass"

        monitor_calls = "; ".join(f"m{mid}()" for mid in range(len(self._monitors)))
        monitor_line = f"            {monitor_calls}" if monitor_calls else "            pass"

        settle_branch = f"""\
            if s._events & {comb_all}:
                _stl += 1
{sweep_block("                ")}
                s._events &= {~comb_all}
            else:
                _fast += 1"""
        if n_comb == 0:
            settle_branch = "            _fast += 1"

        if gated:
            phase_prologue = f"""\
            ev = s._events
            run = (ev >> {n_comb}) | s._active
            s._events = ev & {comb_all}
            nact = 0"""
            phase_epilogue = f"""\
            s._active = nact
            _clk += {len(always)}"""
        else:
            phase_prologue = "            pass"
            phase_epilogue = f"            _clk += {len(always)}"

        return f"""\
def step(n):
    s = SIM
    sched = s._sched
    stats = s.stats
    cyc = s.cycle
    _clk = _stl = _comb = _fast = _done = 0
    try:
        for _ in range(n):
{phase_prologue}
{clocked_block}
{phase_epilogue}
            if sched:
                d = s._events
                for sig in sched:
                    nxt = sig._next
                    sig._next = None
                    if nxt != sig._value:
                        sig._value = nxt
                        d |= sig._ev_mask
                del sched[:]
                s._events = d
{settle_branch}
            cyc += 1
            s.cycle = cyc
{monitor_line}
            _done += 1
    finally:
        stats.cycles += _done
        stats.clocked_activations += _clk
        stats.settle_calls += _stl
        stats.settle_iterations += _stl
        stats.comb_activations += _comb
        stats.fast_path_cycles += _fast


def settle_once():
    s = SIM
    if not (s._events & {comb_all}):
        return 0
    stats = s.stats
    stats.settle_calls += 1
    stats.settle_iterations += 1
    _comb = 0
    try:
{sweep_block("        ")}
        s._events &= {~comb_all}
    finally:
        stats.comb_activations += _comb
    return 1
"""

    def _declaration_violation(self, late_mask: int) -> None:
        """Raise for comb bits that arrived after their levelized position."""
        names = [
            f"#{pid} ({getattr(proc, '__qualname__', repr(proc))})"
            for pid, (proc, _, _) in enumerate(self._comb_decls)
            if late_mask >> pid & 1
        ]
        raise SimulationError(
            f"combinational process(es) {', '.join(names)} were triggered "
            f"after their levelized position in the settle sweep: some "
            f"process drove a signal outside its declared drives= set, so "
            f"the compile-time ranking is unsound for this design.  Complete "
            f"the add_comb(..., drives=[...]) declarations (the event kernel "
            f"can run the design in the meantime)."
        )

    # -- execution -----------------------------------------------------------

    def settle(self) -> int:
        """Run one rank-ordered sweep if anything is pending; return passes."""
        self._ensure_compiled()
        return self._settle_fn()

    def step(self, cycles: int = 1) -> None:
        if self._step_fn is None:
            self._build()
        self._step_fn(cycles)

    def reset(self) -> None:
        """Reset signals, re-settle, zero the clock and stats.

        Honours the reset→settle contract of the base kernel: combinational
        outputs are re-derived from reset values before ``reset()`` returns,
        monitors are not invoked, and the stats are cleared last.  All
        elidable clocked processes are marked woken, matching the event
        kernel (which runs every clocked process on every cycle anyway).
        """
        self._ensure_compiled()
        for sig in self._signals:
            sig.reset()
        del self._sched[:]
        self._events = self._comb_all | (self._gated_all << len(self._comb_decls))
        self._active = 0
        self.settle()
        self.cycle = 0
        self.stats.reset()
