"""Levelized compiled simulation kernel: elaborate once, run straight-line.

The event-driven kernel re-discovers, on every cycle, which processes to run
— set unions over dirty signals, dict lookups per sensitivity entry, and a
fixed-point settle loop.  Production cycle-based HDL simulators do none of
that at runtime: they *levelize* the combinational network once at
elaboration and emit a single evaluation order.  :class:`CompiledSimulator`
brings that technique to this codebase.

At registration-freeze time (the first ``step``/``settle``/``reset`` after a
registration, or an explicit :meth:`CompiledSimulator.compile`) the kernel:

1. **assigns dense integer ids** to every signal and process;
2. **builds the sensitivity DAG** from the ``add_comb(..., sensitive_to=...,
   drives=...)`` declarations — an edge from process P to process Q for each
   signal P drives that Q is sensitive to;
3. **topologically ranks** the combinational processes (Kahn's algorithm,
   registration order within a rank), *statically rejecting* true
   combinational cycles at compile time with the offending signal path in
   the :class:`~repro.rtl.simulator.SimulationError` — before any cycle
   runs;
4. **code-generates a fused ``step(n)`` loop** — clocked phase, non-observer
   commit of scheduled signals, a *single* rank-ordered settle sweep gated
   by an integer event bitmask, and monitor dispatch — with every per-cycle
   attribute/property lookup hoisted into locals and every process call
   unrolled.

Levelization is what makes the single sweep sufficient: producers are
ordered before consumers, so each triggered process runs at most once per
cycle and the sweep ends at the same fixed point the event-driven kernel
iterates to.  The price is a stricter contract: every combinational process
must declare both its complete input set (``sensitive_to``) and its complete
output set (``drives``), and must be a pure function of signal values.

Event bitmask layout
--------------------

One Python integer carries all pending work.  Bits ``[0, n_comb)`` are
"combinational process i must re-run"; bits ``[n_comb, n_comb + n_gated)``
are "elidable clocked process j must wake".  Each signal's
:attr:`~repro.rtl.signal.Signal._ev_mask` is the OR of the bits of every
process that reads it, so a committed or driven change is one ``|=`` — no
sets, no dicts, no per-process scheduling structures.

Clocked wait-state elision
--------------------------

Clocked processes registered with ``add_clocked(proc, sensitive_to=[...])``
opt into elision: the compiled kernel skips them on cycles where none of
their declared inputs changed *and* their previous run reported quiescence
(a falsy return value).  The contract mirrors what the generated hardware
does — an FSM sitting in a wait state with stable inputs computes nothing —
and is what lets an idle SoC run at the cost of its genuinely active
processes only.  A process must return truthy whenever re-running it with
unchanged inputs would not be a no-op (it scheduled a signal, changed
internal state it will act on, or is mid-countdown).  Processes registered
without ``sensitive_to`` run every cycle, exactly as on the other kernels.

Harness fusion
--------------

The testbench side of a simulation lives inside the same generated loop:

* **Lowered waits** — :meth:`CompiledSimulator.wait_until` dispatches a
  declarative :class:`~repro.rtl.simulator.WaitCondition` to generated
  ``wait_eq``/``wait_ge`` loops sharing the per-cycle body with ``step``,
  so a whole driver-call wait is one call with a slot compare per cycle.
* **Fused monitors** — a monitor object implementing
  ``emit_compiled_monitor(prefix)`` (see
  :meth:`repro.sis.protocol.SISProtocolMonitor.emit_compiled_monitor`) has
  its per-cycle checks inlined, state hoisted into function locals, and
  event-gated on its declared signals — no per-cycle Python dispatch.
* **Timed wakes** — gated clocked processes in pure countdowns call
  :meth:`wake_after` and sleep; the loop pays one integer compare per cycle
  against the earliest pending wake.
* **Cycle leaping** — when every machine is parked (no pending commits,
  events, wakes or active machines) and every monitor is provably quiet,
  the generated loop jumps the cycle counter straight to the next timed
  wake (clamped to the call's horizon) instead of iterating: idle spans
  cost O(1) regardless of length.  Constructor flag ``leap=False`` (CLI:
  ``--no-leap``) disables the fast path for debugging; designs with
  always-run clocked processes or unannotated monitors never leap.
* **Persistent programs** — levelization + generated source are cached on
  disk (:class:`CompiledProgramCache`, ``SPLICE_COMPILE_CACHE``), keyed by
  a digest of the design topology and this compiler's own fingerprint, so
  identical designs skip recompilation across processes.

``tests/test_kernel_equivalence.py`` proves the whole construction
cycle-exact (full signal traces, every cycle, plus identical monitor
violation lists) against both the event-driven kernel and the
snapshot-based reference kernel on all four buses.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from heapq import heappop, heappush
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.rtl.signal import Signal
from repro.rtl.simulator import Process, SimulationError, Simulator, WaitCondition

#: Environment variable naming the persistent compiled-program cache
#: directory.  When set (or when a cache is passed to the constructor),
#: levelization + codegen results are reused across processes for identical
#: design topologies — campaign workers and repeated ``build_system`` calls
#: skip recompilation entirely.
PROGRAM_CACHE_ENV = "SPLICE_COMPILE_CACHE"

#: Fingerprint of this compiler's own source: baked into every design digest
#: so a change to the code generator invalidates all cached programs.
_COMPILER_FINGERPRINT = hashlib.sha256(Path(__file__).read_bytes()).hexdigest()


class CompiledProgramCache:
    """A directory of codegen results keyed by design digest.

    Entries are single JSON files (``<digest>.json``) holding the generated
    source plus the levelization (``order``/``ranks``) needed to rebuild the
    :class:`CompiledDesign` introspection record without re-running Kahn's
    algorithm.  The digest covers the complete design topology *and* the
    compiler's own source fingerprint, so a hit is only possible for a design
    this exact compiler version would compile identically; corrupt entries
    are treated as misses.  Like the campaign result cache, the directory is
    trusted — entries are executed, so do not point it at untrusted data.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, digest: str) -> Path:
        return self.directory / f"{digest}.json"

    def get(self, digest: str) -> Optional[dict]:
        path = self._path(digest)
        try:
            payload = json.loads(path.read_text())
            if not isinstance(payload.get("source"), str):
                raise ValueError("missing source")
            order = [int(x) for x in payload["order"]]
            ranks = {int(k): int(v) for k, v in payload["ranks"].items()}
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return {"source": payload["source"], "order": order, "ranks": ranks}

    def put(self, digest: str, source: str, order: List[int], ranks: Dict[int, int]) -> Path:
        path = self._path(digest)
        payload = {
            "digest": digest,
            "source": source,
            "order": list(order),
            "ranks": {str(k): v for k, v in ranks.items()},
        }
        # Unique per pid *and* thread: the farm compiles programs from
        # multiple threads of one process, so a pid-only temp name could
        # still interleave two writers into a torn entry.
        tmp = path.with_name(
            f".{digest}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path


#: Sentinel for "no timed wake pending" (compares greater than any cycle).
_NEVER = 1 << 62


def _default_program_cache() -> Optional[CompiledProgramCache]:
    directory = os.environ.get(PROGRAM_CACHE_ENV)
    if not directory:
        return None
    try:
        return CompiledProgramCache(directory)
    except OSError:
        return None


@dataclass
class CompiledDesign:
    """Introspection record of one elaboration freeze.

    Exposed as :attr:`CompiledSimulator.design` so tests and tools can see
    exactly what the compiler decided: the dense ids, the levelization, and
    the generated source itself.
    """

    #: Dense id per registered signal, in registration order.
    signal_ids: Dict[str, int] = field(default_factory=dict)
    #: Comb process ids in rank order (the settle sweep order).
    comb_order: List[int] = field(default_factory=list)
    #: Rank (level) per comb process id.
    comb_ranks: Dict[int, int] = field(default_factory=dict)
    #: Comb process ids grouped by rank, rank-major.
    levels: List[List[int]] = field(default_factory=list)
    #: Clocked process ids that opted into wait-state elision.
    gated_clocked: Tuple[int, ...] = ()
    #: Number of clocked processes that always run.
    always_clocked: int = 0
    #: The generated fused step-loop source (debugging aid).
    source: str = ""
    #: Number of monitors inlined into the generated loop (vs. called).
    fused_monitors: int = 0
    #: Number of clocked FSM machines lowered inline (vs. called).
    fused_clocked: int = 0
    #: Number of combinational FSM machines lowered into the settle sweep.
    fused_comb: int = 0
    #: FSM IR fingerprints of every lowered machine, in registration order.
    fsm_fingerprints: Tuple[str, ...] = ()
    #: Content digest of the frozen design (compiler fingerprint included).
    digest: str = ""
    #: Whether this freeze reused a persistent program-cache entry.
    program_cache_hit: bool = False
    #: Whether the generated loops include the cycle-leap fast path (the
    #: kernel's ``leap`` flag AND the design's static eligibility).
    leap: bool = False


def _find_cycle_path(
    adjacency: Dict[int, Dict[int, Signal]], candidates: Sequence[int]
) -> List[Signal]:
    """Return the signals along one combinational cycle among ``candidates``.

    ``adjacency[p][q]`` is a signal driven by process ``p`` and sensed by
    process ``q``.  Called only when Kahn's algorithm left ``candidates``
    unranked, so a cycle is guaranteed to exist among them.
    """
    # Trim nodes that merely sit downstream of the cycle (no successor left
    # in the set) until only strongly-connected members remain; then any
    # walk inside the set must revisit a node.
    remaining = set(candidates)
    trimmed = True
    while trimmed:
        trimmed = False
        for node in list(remaining):
            if not any(q in remaining for q in adjacency.get(node, ())):
                remaining.discard(node)
                trimmed = True
    start = min(remaining)
    stack: List[int] = [start]
    on_path = {start: 0}
    while True:
        node = stack[-1]
        successor = next(q for q in adjacency.get(node, ()) if q in remaining)
        if successor in on_path:
            cycle_nodes = stack[on_path[successor]:] + [successor]
            return [
                adjacency[cycle_nodes[i]][cycle_nodes[i + 1]]
                for i in range(len(cycle_nodes) - 1)
            ]
        on_path[successor] = len(stack)
        stack.append(successor)


class CompiledSimulator(Simulator):
    """Levelized, code-generated simulation kernel.

    Shares the full registration API of :class:`~repro.rtl.simulator.Simulator`
    but requires every combinational process to declare ``sensitive_to`` and
    ``drives``.  Registration after a freeze simply invalidates the compiled
    program; the next ``step``/``settle``/``reset`` re-freezes.

    ``max_settle_iterations`` is accepted for API compatibility but unused:
    combinational loops are rejected statically at compile time instead of
    being detected by an iteration limit at runtime.
    """

    timed_wakes = True

    def __init__(
        self,
        max_settle_iterations: int = 64,
        program_cache: Optional[object] = None,
        leap: bool = True,
    ) -> None:
        super().__init__(max_settle_iterations=max_settle_iterations)
        self._sched: List[Signal] = []
        # Observer fast path: scheduling reports are a plain list append (no
        # Python frame); the list object is never replaced, only cleared.
        self._signal_scheduled = self._sched.append
        self._events = 0
        self._active = 0
        # Timed wakes: (target sim-cycle, seq, process) heap + cached minimum,
        # so the generated loop pays one integer compare per cycle.  The
        # per-process target map deduplicates re-arms: only the earliest live
        # target per process counts; superseded heap entries are tombstones
        # that _pop_timed discards.
        self._timed: List[tuple] = []
        self._timed_seq = 0
        self._next_timed = _NEVER
        self._timed_target: Dict[Process, int] = {}
        self._gated_bits: Dict[Process, int] = {}
        #: Whether cycle leaping may be generated (the design must also be
        #: eligible: no always-run clocked processes and no monitor the
        #: kernel cannot prove quiet-cycle-safe — see ``_build``).
        self._leap = bool(leap)
        # Minimum countdown at which a lowered Sleep op parks the machine via
        # wake_after (read by the FSM lowering at runtime).  Short waits stay
        # active on purpose, leap or no leap: a couple of inlined runs are
        # cheaper than the heap traffic of parking, and a 2-3 cycle span is
        # not worth leaping anyway.  Only spans longer than this can engage
        # the cycle-leaping fast path.
        self._sleep_threshold = 3
        self._comb_all = 0
        self._gated_all = 0
        self._mon_all = 0
        self._step_fn: Optional[Callable[[int], None]] = None
        self._settle_fn: Optional[Callable[[], int]] = None
        self._wait_eq_fn: Optional[Callable[[Signal, int, int], int]] = None
        self._wait_ge_fn: Optional[Callable[[Signal, int, int], int]] = None
        if program_cache is None:
            program_cache = _default_program_cache()
        elif isinstance(program_cache, (str, Path)):
            program_cache = CompiledProgramCache(program_cache)
        #: Optional :class:`CompiledProgramCache` reused across freezes.
        self.program_cache = program_cache
        self.design: Optional[CompiledDesign] = None
        # Per-clocked-process run counters (gated processes only; always-run
        # processes execute every cycle by construction).  Flushed from
        # generated-loop locals in the finally block; basis of the per-FSM
        # attribution in ``splice profile``.
        self._proc_runs: List[int] = []
        self._fused_labels: Dict[int, str] = {}

    # -- registration (every mutation invalidates the compiled program) -----

    def add_signal(self, signal: Signal) -> Signal:
        self._step_fn = None
        self._signals.append(signal)
        signal.bind(self)
        if signal._next is not None:
            self._sched.append(signal)
        return signal

    def add_clocked(
        self, process: Process, sensitive_to: Optional[Sequence[Signal]] = None
    ) -> Process:
        self._step_fn = None
        return super().add_clocked(process, sensitive_to=sensitive_to)

    def add_comb(
        self,
        process: Process,
        sensitive_to: Optional[Sequence[Signal]] = None,
        drives: Optional[Sequence[Signal]] = None,
    ) -> Process:
        self._step_fn = None
        return super().add_comb(process, sensitive_to=sensitive_to, drives=drives)

    def add_monitor(self, process: Process) -> Process:
        self._step_fn = None
        return super().add_monitor(process)

    # -- signal event hooks --------------------------------------------------

    # (_signal_scheduled is bound to self._sched.append in __init__.)

    def _signal_changed(self, signal: Signal) -> None:
        self._events |= signal._ev_mask

    # -- fault injection -----------------------------------------------------

    def inject_faults(self, controller) -> None:
        """Attach/detach a fault controller and invalidate the program.

        The fault hook (a one-compare guard in the fused cycle body plus a
        clamp on the cycle-leap span) is only *generated* when a controller
        is attached — a clean design compiles to byte-identical source with
        an unchanged digest, so fault support costs fault-free runs nothing.
        """
        self._step_fn = None
        super().inject_faults(controller)

    def _fire_faults(self) -> None:
        """Apply due fault ops; schedule a full comb re-derivation.

        ``drive()`` already ORed each changed signal's event mask in; OR-ing
        ``_comb_all`` on top re-runs the whole network next cycle, matching
        the scan kernels' dirty-all (see ``Simulator._fire_faults``).
        ``_mon_all`` forces every fused monitor body too: a fault can change
        a rule input that is *not* one of the monitor's gate signals (e.g.
        IO_DONE), which the scan kernels see because they sample every cycle.
        """
        self._faults.fire(self)
        self._events |= self._comb_all | self._mon_all

    # -- timed wakes ---------------------------------------------------------

    def wake_after(self, process: Process, cycles: int) -> None:
        """Wake the gated ``process`` in ``cycles`` cycles (or sooner on
        a declared-input change).  See ``Simulator.wake_after`` for the
        contract; here the request is honoured, letting countdown states
        (bus arbitration, bridge latency, calculation latency) sleep through
        the wait instead of decrementing a counter every cycle.

        ``cycles`` is clamped to at least 1 ("wake next cycle"): a zero- or
        negative-cycle request would target the cycle currently executing,
        whose wake pops have already been drained by the fused loop.

        Requests are deduplicated per process: re-arming with a target no
        earlier than one already pending is dropped outright (being woken
        early is always contract-safe, and the pending entry covers it), so
        a machine that re-arms every run cannot grow the heap without bound.
        Re-arming *earlier* pushes a new entry and tombstones the old one,
        which :meth:`_pop_timed` discards when it surfaces.
        """
        target = self.cycle + max(1, int(cycles))
        armed = self._timed_target.get(process)
        if armed is not None and armed <= target:
            return
        self._timed_target[process] = target
        heappush(self._timed, (target, self._timed_seq, process))
        self._timed_seq += 1
        if target < self._next_timed:
            self._next_timed = target

    def _pop_timed(self, cycle: int) -> int:
        """Collect the wake bits of every timed request due at ``cycle``.

        Heap entries whose target no longer matches the process's live
        target are tombstones (the process re-armed earlier, or its live
        entry already fired) and are discarded without setting a wake bit.
        """
        mask = 0
        heap = self._timed
        bits = self._gated_bits
        targets = self._timed_target
        while heap and heap[0][0] <= cycle:
            target, _, proc = heappop(heap)
            if targets.get(proc) == target:
                del targets[proc]
                mask |= bits.get(proc, 0)
        self._next_timed = heap[0][0] if heap else _NEVER
        return mask

    # -- compilation ---------------------------------------------------------

    def compile(self) -> CompiledDesign:
        """Freeze the registered design and build the fused step program.

        Safe to call repeatedly; recompiles only after a registration.
        Raises :class:`SimulationError` for combinational cycles or missing
        ``sensitive_to``/``drives`` declarations.
        """
        if self._step_fn is None:
            self._build()
        assert self.design is not None
        return self.design

    def _ensure_compiled(self) -> None:
        if self._step_fn is None:
            self._build()

    def _levelize(self) -> Tuple[List[int], Dict[int, int]]:
        """Rank the comb processes; reject cycles with the signal path."""
        decls = self._comb_decls
        for pid, (proc, sense, driven) in enumerate(decls):
            missing = [
                name
                for name, value in (("sensitive_to", sense), ("drives", driven))
                if value is None
            ]
            if missing:
                label = getattr(proc, "__qualname__", repr(proc))
                raise SimulationError(
                    f"CompiledSimulator requires every combinational process to "
                    f"declare its inputs and outputs; process #{pid} ({label}) "
                    f"is missing {' and '.join(missing)}.  Declare them via "
                    f"add_comb(proc, sensitive_to=[...], drives=[...]) or use "
                    f"the event-driven kernel for run-always processes."
                )

        # adjacency[p][q] = one signal driven by p and sensed by q.
        readers: Dict[Signal, List[int]] = {}
        for pid, (_, sense, _) in enumerate(decls):
            for sig in sense:
                readers.setdefault(sig, []).append(pid)
        adjacency: Dict[int, Dict[int, Signal]] = {}
        indegree = {pid: 0 for pid in range(len(decls))}
        for pid, (_, _, driven) in enumerate(decls):
            edges = adjacency.setdefault(pid, {})
            for sig in driven:
                for reader in readers.get(sig, ()):
                    if reader not in edges:
                        edges[reader] = sig
                        indegree[reader] += 1

        # Kahn's algorithm; ready set ordered by registration index so ties
        # replay the event kernel's registration-order execution.
        ranks: Dict[int, int] = {}
        ready = sorted(pid for pid, deg in indegree.items() if deg == 0)
        order: List[int] = []
        while ready:
            pid = ready.pop(0)
            rank = max(
                (ranks[p] + 1 for p, edges in adjacency.items() if pid in edges and p in ranks),
                default=0,
            )
            ranks[pid] = rank
            order.append(pid)
            newly_ready = []
            for successor in adjacency.get(pid, {}):
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    newly_ready.append(successor)
            if newly_ready:
                ready = sorted(ready + newly_ready)
        if len(order) != len(decls):
            leftovers = [pid for pid in range(len(decls)) if pid not in ranks]
            path = _find_cycle_path(adjacency, leftovers)
            chain = " -> ".join(sig.name for sig in path + path[:1])
            raise SimulationError(
                f"combinational cycle detected at compile time: {chain} "
                f"(each signal is driven by a process sensitive to the "
                f"previous one; break the loop with a clocked register)"
            )
        return order, ranks

    def _monitor_blocks(
        self, n_comb: int, n_gated: int
    ) -> Tuple[List[str], List[str], List[str], Dict[str, object], int, dict]:
        """Collect the per-cycle monitor code for the generated loop.

        A monitor whose process is a bound method of an object implementing
        ``emit_compiled_monitor(prefix)`` (e.g.
        :class:`repro.sis.protocol.SISProtocolMonitor`) is *fused*: its
        checks run inline in the generated loop with inputs and rolling state
        hoisted to function locals — no per-cycle Python dispatch.  A fused
        monitor that declares ``gate_signals`` additionally gets a bit in the
        event word (above the gated-clocked wake bits): its per-cycle block
        is skipped entirely on cycles where none of those signals changed and
        its ``hot`` state expression is false — a skip the hook guarantees is
        a no-op.  Every other monitor keeps the plain ``m<id>()`` call.
        Order of registration is preserved either way.

        Returns (entry_lines, per_cycle_lines, exit_lines, namespace,
        fused_count, leap_info); monitor event-mask bits are assigned as a
        side effect.  ``leap_info`` describes whether cycle leaping can skip
        monitor dispatch entirely on quiet cycles:

        * a fused, gated monitor is leap-safe while its ``hot`` expression is
          false (the same condition under which its per-cycle block is
          already a proven no-op) — the expression joins the leap guard;
        * a plain monitor whose owner implements ``observe_leap(n)`` is
          leap-safe: the hook is called with the leap width so the monitor
          can account for the skipped cycles (e.g. a trace recorder
          replicates its last sample — signal values cannot change during a
          leap);
        * any other monitor disables leaping for the design (``ok`` False).
        """
        entry: List[str] = []
        body: List[str] = []
        exit_: List[str] = []
        namespace: Dict[str, object] = {}
        fused = 0
        leap_info = {"ok": True, "hot": [], "calls": []}
        next_bit = n_comb + n_gated
        self._mon_all = 0
        for mid, proc in enumerate(self._monitors):
            owner = getattr(proc, "__self__", None)
            hook = getattr(owner, "emit_compiled_monitor", None)
            if hook is None:
                body.append(f"m{mid}()")
                leap_hook = getattr(owner, "observe_leap", None)
                if leap_hook is not None:
                    namespace[f"mlp{mid}"] = leap_hook
                    leap_info["calls"].append(f"mlp{mid}")
                else:
                    leap_info["ok"] = False
                continue
            spec = hook(f"mon{mid}")
            entry.extend(spec["entry"])
            exit_.extend(spec["exit"])
            namespace.update(spec["namespace"])
            gate_signals = spec.get("gate_signals") or ()
            if gate_signals:
                bit = 1 << next_bit
                next_bit += 1
                self._mon_all |= bit
                for sig in gate_signals:
                    sig._ev_mask |= bit
                hot = spec.get("hot") or "False"
                body.append(f"if s._events & {bit} or {hot}:")
                body.extend("    " + line for line in spec["body"])
                leap_info["hot"].append(hot)
            else:
                body.extend(spec["body"])
                leap_info["ok"] = False
            fused += 1
        return entry, body, exit_, namespace, fused, leap_info

    def _fsm_blocks(
        self, gated: Sequence[int]
    ) -> Tuple[Dict[int, dict], Dict[int, dict]]:
        """Collect the lowered form of every FSM-IR machine in the design.

        A clocked process that is a bound method of an object implementing
        ``emit_compiled_clocked(prefix)`` (a :class:`repro.rtl.fsm.BoundFsm`)
        and that declared its sensitivity (``add_clocked(...,
        sensitive_to=[...])``) is *lowered*: the machine's dispatch chain,
        guarded transitions and signal ops are inlined into the generated
        loop under its wake gate, with the state register held in a function
        local across cycles.  Combinational processes whose owner implements
        ``emit_compiled_comb(prefix)`` are likewise inlined into the
        rank-ordered settle sweep.  Everything else keeps its plain call.
        """
        gated_set = set(gated)
        fused_clocked: Dict[int, dict] = {}
        for cid, (proc, _) in enumerate(self._clocked_decls):
            if cid not in gated_set:
                continue
            owner = getattr(proc, "__self__", None)
            hook = getattr(owner, "emit_compiled_clocked", None)
            # Lower only the machine's canonical tick: a different registered
            # callable of the same machine (e.g. the interpreter oracle) must
            # keep running as a plain call, or its timed wakes would be keyed
            # to a process the kernel never registered.
            if hook is not None and proc is getattr(owner, "tick", None):
                fused_clocked[cid] = hook(f"f{cid}")
        fused_comb: Dict[int, dict] = {}
        for pid, (proc, sense, driven) in enumerate(self._comb_decls):
            if sense is None or driven is None:
                continue
            owner = getattr(proc, "__self__", None)
            hook = getattr(owner, "emit_compiled_comb", None)
            if hook is not None and proc is getattr(owner, "tick", None):
                fused_comb[pid] = hook(f"g{pid}")
        return fused_clocked, fused_comb

    def _design_digest(self, monitor_text: str) -> str:
        """Content address of the frozen design's codegen-relevant topology.

        Two designs with the same digest produce byte-identical generated
        source and identical levelization, so a persistent cache entry can be
        reused across processes.  The digest covers: the compiler source
        fingerprint, the signal count, every comb declaration's
        sensitivity/drives structure (as registration indices), every clocked
        declaration's gating, and the monitor sequence (fused monitors by
        their emitted source, others by position).
        """
        index = {id(sig): i for i, sig in enumerate(self._signals)}

        def key(sig: Signal) -> str:
            pos = index.get(id(sig))
            return str(pos) if pos is not None else f"x:{sig.name}:{sig.width}"

        parts = [
            _COMPILER_FINGERPRINT,
            f"signals={len(self._signals)}",
            # Leap is a runtime constructor flag, not covered by the compiler
            # fingerprint, yet it changes the generated source.
            f"leap={self._leap}",
            # An attached fault schedule changes the generated source (the
            # injection hook) *and* the run's meaning: folding its
            # fingerprint in guarantees the program cache can never serve a
            # faulted program as clean or vice versa.
            f"faults={self._faults.fingerprint if self._faults is not None else 'none'}",
        ]
        for pid, (_, sense, driven) in enumerate(self._comb_decls):
            s = ",".join(key(sig) for sig in sense) if sense is not None else "?"
            d = ",".join(key(sig) for sig in driven) if driven is not None else "?"
            parts.append(f"c{pid}:{s}|{d}")
        for cid, (_, sense) in enumerate(self._clocked_decls):
            s = ",".join(key(sig) for sig in sense) if sense is not None else "?"
            parts.append(f"k{cid}:{s}")
        parts.append(f"monitors:{monitor_text}")
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()

    def _build(self) -> None:
        comb_procs = [proc for proc, _, _ in self._comb_decls]
        n_comb = len(comb_procs)

        gated: List[int] = []
        always: List[int] = []
        for cid, (_, sense) in enumerate(self._clocked_decls):
            (gated if sense is not None else always).append(cid)
        self._gated_bits = {self._clocked[cid]: 1 << pos for pos, cid in enumerate(gated)}

        # Dense ids + per-signal event masks.
        signal_ids: Dict[str, int] = {}
        for index, sig in enumerate(self._signals):
            signal_ids.setdefault(sig.name, index)
            sig._ev_mask = 0
        for pid, (_, sense, _) in enumerate(self._comb_decls):
            if sense is None:
                continue  # rejected below by _levelize with guidance
            bit = 1 << pid
            for sig in sense:
                sig._ev_mask |= bit
        for wake_pos, cid in enumerate(gated):
            bit = 1 << (n_comb + wake_pos)
            for sig in self._clocked_decls[cid][1]:
                sig._ev_mask |= bit

        self._comb_all = (1 << n_comb) - 1
        self._gated_all = (1 << len(gated)) - 1

        mon_entry, mon_body, mon_exit, mon_namespace, fused_monitors, leap_info = (
            self._monitor_blocks(n_comb, len(gated))
        )
        # Leap eligibility is static per design: an always-run clocked
        # process must execute every cycle, and every monitor must be
        # provably quiet-cycle-safe (see _monitor_blocks).
        leap_static = self._leap and not always and leap_info["ok"]
        fused_clocked, fused_comb = self._fsm_blocks(gated)
        self._fused_labels = {
            cid: spec["label"] for cid, spec in fused_clocked.items()
        }
        self._proc_runs = [0] * len(self._clocked)

        # Persistent program cache: identical topology -> reuse levelization
        # and generated source, skipping Kahn's algorithm and codegen.  The
        # hook text covers the monitors *and* every lowered FSM machine, so
        # a change to any machine's IR changes the digest.
        digest = ""
        cached = None
        cache = self.program_cache
        if cache is not None:
            hook_lines = list(mon_entry) + list(mon_body) + list(mon_exit)
            # Leap eligibility and guard inputs shape the generated source
            # but are invisible to the declaration topology — hash them too.
            hook_lines.append(
                f"leap:{leap_static}:{','.join(leap_info['calls'])}:"
                f"{'|'.join(leap_info['hot'])}"
            )
            for spec in fused_clocked.values():
                hook_lines += spec["entry"] + spec["body"] + spec["exit"]
                hook_lines.append(spec["fingerprint"])
            for spec in fused_comb.values():
                hook_lines += spec["body"]
                hook_lines.append(spec["fingerprint"])
            monitor_text = hashlib.sha256("\n".join(hook_lines).encode()).hexdigest()
            digest = self._design_digest(monitor_text)
            cached = cache.get(digest)

        if cached is not None:
            order = cached["order"]
            ranks = cached["ranks"]
            source = cached["source"]
        else:
            order, ranks = self._levelize()
            source = self._codegen(
                order, gated, always, n_comb, mon_entry, mon_body, mon_exit,
                fused_clocked, fused_comb,
                leap_info=leap_info if leap_static else None,
            )
            if cache is not None:
                cache.put(digest, source, order, ranks)

        levels: List[List[int]] = []
        for pid in order:
            while len(levels) <= ranks[pid]:
                levels.append([])
            levels[ranks[pid]].append(pid)

        namespace: Dict[str, object] = {"SIM": self}
        for cid, proc in enumerate(self._clocked):
            namespace[f"c{cid}"] = proc
        for pid, proc in enumerate(comb_procs):
            namespace[f"p{pid}"] = proc
        for mid, proc in enumerate(self._monitors):
            namespace[f"m{mid}"] = proc
        namespace.update(mon_namespace)
        for spec in fused_clocked.values():
            namespace.update(spec["namespace"])
        for spec in fused_comb.values():
            namespace.update(spec["namespace"])
        exec(compile(source, "<compiled-kernel>", "exec"), namespace)
        self._step_fn = namespace["step"]  # type: ignore[assignment]
        self._settle_fn = namespace["settle_once"]  # type: ignore[assignment]
        self._wait_eq_fn = namespace["wait_eq"]  # type: ignore[assignment]
        self._wait_ge_fn = namespace["wait_ge"]  # type: ignore[assignment]

        self.design = CompiledDesign(
            signal_ids=signal_ids,
            comb_order=list(order),
            comb_ranks=dict(ranks),
            levels=levels,
            gated_clocked=tuple(gated),
            always_clocked=len(always),
            source=source,
            fused_monitors=fused_monitors,
            fused_clocked=len(fused_clocked),
            fused_comb=len(fused_comb),
            fsm_fingerprints=tuple(
                spec["fingerprint"]
                for spec in list(fused_clocked.values()) + list(fused_comb.values())
            ),
            digest=digest,
            program_cache_hit=cached is not None,
            leap=leap_static,
        )

        # A fresh freeze behaves like fresh registration on the event kernel:
        # everything is pending, so the first cycle settles the whole network
        # and runs every elidable process once.
        self._events = self._comb_all | (self._gated_all << n_comb)
        self._active = 0

    def _codegen(
        self,
        order,
        gated,
        always,
        n_comb,
        mon_entry: Sequence[str] = (),
        mon_body: Sequence[str] = (),
        mon_exit: Sequence[str] = (),
        fused_clocked: Optional[Dict[int, dict]] = None,
        fused_comb: Optional[Dict[int, dict]] = None,
        leap_info: Optional[dict] = None,
    ) -> str:
        """Emit the fused step loop (and wait loops) for the frozen design.

        The per-cycle body — clocked phase, inline commit, rank-ordered
        settle sweep, fused/called monitors — is shared verbatim between
        three entry points: ``step(n)`` (a fixed cycle count), and
        ``wait_eq``/``wait_ge`` (run until a signal reaches a target value,
        the lowered form of :class:`~repro.rtl.simulator.WaitCondition`).
        The wait loops check the signal's committed slot between cycles, so a
        whole driver-call wait executes inside one generated-function call.

        ``fused_clocked`` / ``fused_comb`` carry the lowered FSM-IR machines
        (see :meth:`_fsm_blocks`): their bodies replace the ``c<cid>()`` /
        ``p<pid>()`` calls outright, with binding hoists in the entry block
        and state-register writebacks in the exit block.

        ``leap_info`` (non-``None`` only for leap-eligible designs) adds the
        *cycle-leap* fast path ahead of the per-cycle body: on a cycle where
        nothing is scheduled, no events or wakes are pending, and every
        fused monitor's ``hot`` expression is false, every cycle up to
        ``min(next timed wake, cycles remaining in this call) - 1`` is
        provably identical — no process may run, no signal may change, every
        monitor block is a no-op — so the loop jumps the cycle counter
        straight to the first cycle on which something can happen.  Leap-safe
        plain monitors are informed through their ``observe_leap(n)`` hook
        (``leap_info["calls"]``).  Skipped cycles are counted in
        ``stats.leaped_cycles`` (and, since they skip settle by definition,
        in ``stats.fast_path_cycles``).
        """
        comb_all = self._comb_all
        gated_bit = {cid: 1 << pos for pos, cid in enumerate(gated)}
        always_set = set(always)
        fused_clocked = fused_clocked or {}
        fused_comb = fused_comb or {}

        clocked_lines: List[str] = []
        for cid in range(len(self._clocked)):
            if cid in always_set:
                clocked_lines.append(f"            c{cid}()")
                if gated:
                    # Refresh the wake word after any process actually ran:
                    # a clocked process that drive()s a declared input of a
                    # later-registered gated process wakes it within this
                    # very clocked phase — the same-cycle visibility the
                    # scan kernels have.  (Reading the live event word only
                    # after a run, instead of at every check, keeps the
                    # all-parked cycle at two ops per process.)
                    clocked_lines.append(f"            run |= s._events >> {n_comb}")
            else:
                clocked_lines.append(f"            if run & {gated_bit[cid]}:")
                clocked_lines.append(f"                _clk += 1; _pr{cid} += 1")
                spec = fused_clocked.get(cid)
                if spec is None:
                    clocked_lines.append(
                        f"                if c{cid}(): nact |= {gated_bit[cid]}"
                    )
                else:
                    # Lowered machine: the dispatch chain runs inline; no
                    # per-cycle Python call remains for this process.
                    clocked_lines.extend(
                        "                " + line for line in spec["body"]
                    )
                    clocked_lines.append(
                        f"                if {spec['act']}: nact |= {gated_bit[cid]}"
                    )
                clocked_lines.append(f"                run |= s._events >> {n_comb}")
        clocked_block = "\n".join(clocked_lines) or "            pass"

        def sweep_block(indent: str) -> str:
            # ``_ran`` tracks which processes this sweep executed; a comb bit
            # that is set at sweep end for a process that never ran means the
            # bit arrived *after* that process's levelized position — i.e. a
            # process drove a signal outside its declared ``drives`` set.
            # Turning that into a loud error keeps incomplete declarations
            # from silently producing stale-value traces.
            lines: List[str] = [f"{indent}_ran = 0"]
            for pid in order:
                lines.append(f"{indent}if s._events & {1 << pid}:")
                spec = fused_comb.get(pid)
                if spec is None:
                    lines.append(f"{indent}    p{pid}(); _comb += 1; _ran |= {1 << pid}")
                else:
                    lines.extend(f"{indent}    " + line for line in spec["body"])
                    lines.append(f"{indent}    _comb += 1; _ran |= {1 << pid}")
            lines.append(f"{indent}_late = s._events & {comb_all} & ~_ran")
            lines.append(f"{indent}if _late:")
            lines.append(f"{indent}    s._declaration_violation(_late)")
            return "\n".join(lines) or f"{indent}pass"

        monitor_lines = ["            " + line for line in mon_body]
        monitor_block = "\n".join(monitor_lines) or "            pass"
        entry_lines = list(mon_entry)
        exit_lines: List[str] = []
        for cid, spec in sorted(fused_clocked.items()):
            entry_lines.extend(spec["entry"])
            exit_lines.extend(spec["exit"])
        if gated:
            entry_lines.append(
                " = ".join(f"_pr{cid}" for cid in gated) + " = 0"
            )
            for cid in gated:
                exit_lines.append(f"s._proc_runs[{cid}] += _pr{cid}")
        exit_lines.extend(mon_exit)
        entry_block = "\n".join("    " + line for line in entry_lines)
        if entry_block:
            entry_block += "\n"
        exit_block = "\n".join("        " + line for line in exit_lines)
        if exit_block:
            exit_block += "\n"

        settle_branch = f"""\
            if s._events & {comb_all}:
                _stl += 1
{sweep_block("                ")}
                s._events &= {~comb_all}
            else:
                _fast += 1"""
        if n_comb == 0:
            settle_branch = "            _fast += 1"

        # Fault-injection hook: generated only when a controller is attached,
        # so clean designs keep byte-identical source (and digests).  The
        # guard sits after the settle branch — monitors on this very cycle
        # observe the faulted values, clocked processes see them next cycle —
        # and the leap span below is clamped to the next scheduled fault
        # cycle, so a fault cycle is always executed, never leaped over.
        faulted = self._faults is not None
        if faulted:
            fault_hook = (
                "            if cyc >= s._next_fault:\n"
                "                s._fire_faults()\n"
            )
            fault_clamp = (
                "                _fsk = s._next_fault - cyc\n"
                "                if _fsk < _skip:\n"
                "                    _skip = _fsk\n"
            )
        else:
            fault_hook = ""
            fault_clamp = ""

        if leap_info is not None:
            hot_terms = "".join(f" and not ({hot})" for hot in leap_info["hot"])
            leap_calls = "".join(
                f"                    {name}(_skip)\n" for name in leap_info["calls"]
            )
            # The guard sits right after the phase prologue.  In the gated
            # case the event word (`ev`) and wake word (`run`) are already in
            # function locals there, so a busy cycle rejects the whole check
            # with a single local truthiness test — the leap fast path costs
            # active workloads essentially nothing.  `run` also folds in any
            # wakes just popped for this cycle, so a due wake target vetoes
            # the leap without a separate clock comparison.
            if gated:
                leap_guard = f"if not run and not ev and not sched{hot_terms}:"
            else:
                leap_guard = f"if not sched and not s._events{hot_terms}:"

            def leap_block(remaining: str) -> str:
                # `_skip` is clamped to the cycles left in this call; the
                # wake-target cycle itself (and everything after) executes
                # normally.
                return f"""\
            {leap_guard}
                _skip = s._next_timed - cyc
{fault_clamp}                _rem = {remaining} - _done
                if _skip > _rem:
                    _skip = _rem
                if _skip > 0:
                    cyc += _skip
                    s.cycle = cyc
                    _done += _skip
                    _leap += _skip
                    _fast += _skip
{leap_calls}                    continue
"""
        else:
            def leap_block(remaining: str) -> str:
                return ""

        has_mon_gates = any(line.startswith("if s._events & ") for line in mon_body)
        if gated:
            phase_prologue = f"""\
            ev = s._events
            run = (ev >> {n_comb}) | s._active
            if cyc >= s._next_timed:
                run |= s._pop_timed(cyc)
            s._events = ev & {comb_all}
            nact = 0"""
            phase_epilogue = f"""\
            s._active = nact
            _clk += {len(always)}"""
        else:
            # No gated processes: the phase needs no wake word, but gated
            # monitor bits must still be consumed at the start of each cycle.
            phase_prologue = (
                f"            s._events &= {comb_all}" if has_mon_gates else "            pass"
            )
            phase_epilogue = f"            _clk += {len(always)}"

        def cycle_body(remaining: str) -> str:
            return f"""\
{phase_prologue}
{leap_block(remaining)}{clocked_block}
{phase_epilogue}
            if sched:
                d = s._events
                _ac = None
                for _sg in sched:
                    nxt = _sg._next
                    if _sg._auto:
                        # Pulsed strobe: commit now, auto-clear next cycle.
                        _sg._auto = False
                        _sg._next = 0
                        if _ac is None:
                            _ac = [_sg]
                        else:
                            _ac.append(_sg)
                    else:
                        _sg._next = None
                    if nxt != _sg._value:
                        _sg._value = nxt
                        d |= _sg._ev_mask
                del sched[:]
                if _ac is not None:
                    sched.extend(_ac)
                s._events = d
{settle_branch}
{fault_hook}            cyc += 1
            s.cycle = cyc
{monitor_block}
            _done += 1"""

        stats_flush = f"""\
{exit_block}        stats.cycles += _done
        stats.clocked_activations += _clk
        stats.settle_calls += _stl
        stats.settle_iterations += _stl
        stats.comb_activations += _comb
        stats.fast_path_cycles += _fast
        stats.leaped_cycles += _leap"""

        def wait_fn(name: str, keep_waiting: str) -> str:
            return f"""\
def {name}(sig, target, limit):
    s = SIM
    sched = s._sched
    stats = s.stats
    cyc = s.cycle
{entry_block}    _clk = _stl = _comb = _fast = _done = _leap = 0
    try:
        while {keep_waiting}:
            if _done >= limit:
                return -1
{cycle_body("limit")}
    finally:
{stats_flush}
    return _done
"""

        return f"""\
def step(n):
    s = SIM
    sched = s._sched
    stats = s.stats
    cyc = s.cycle
{entry_block}    _clk = _stl = _comb = _fast = _done = _leap = 0
    try:
        while _done < n:
{cycle_body("n")}
    finally:
{stats_flush}


{wait_fn("wait_eq", "sig._value != target")}

{wait_fn("wait_ge", "sig._value < target")}

def settle_once():
    s = SIM
    if not (s._events & {comb_all}):
        return 0
    stats = s.stats
    stats.settle_calls += 1
    stats.settle_iterations += 1
    _comb = 0
    try:
{sweep_block("        ")}
        s._events &= {~comb_all}
    finally:
        stats.comb_activations += _comb
    return 1
"""

    def _declaration_violation(self, late_mask: int) -> None:
        """Raise for comb bits that arrived after their levelized position."""
        names = [
            f"#{pid} ({getattr(proc, '__qualname__', repr(proc))})"
            for pid, (proc, _, _) in enumerate(self._comb_decls)
            if late_mask >> pid & 1
        ]
        raise SimulationError(
            f"combinational process(es) {', '.join(names)} were triggered "
            f"after their levelized position in the settle sweep: some "
            f"process drove a signal outside its declared drives= set, so "
            f"the compile-time ranking is unsound for this design.  Complete "
            f"the add_comb(..., drives=[...]) declarations (the event kernel "
            f"can run the design in the meantime)."
        )

    # -- per-FSM attribution --------------------------------------------------

    def process_profile(self) -> List[dict]:
        """Per-machine cycle attribution for the current run.

        Returns one record per clocked process, in registration order:
        ``label`` (the lowered machine's owner/spec name, or the process
        qualname), ``kind`` (``"lowered"`` for inlined FSM-IR machines,
        ``"called"`` otherwise), ``active`` (cycles on which the machine
        actually ran), ``leaped`` (cycles the whole kernel leaped over while
        every machine was parked — no per-cycle gate check even happened),
        and ``elided`` (executed cycles the wait-state gate skipped this
        machine on); ``active + leaped + elided == cycles`` for every gated
        machine.  Always-run processes execute every *executed* cycle by
        construction (their presence disables leaping, so for them
        ``active == cycles``).  This is what names the next bottleneck
        instead of guessing at it: a machine with a high active count is
        where the per-cycle budget goes.
        """
        self._ensure_compiled()
        cycles = self.stats.cycles
        leaped = self.stats.leaped_cycles
        gated_set = set(self.design.gated_clocked)
        records = []
        for cid, proc in enumerate(self._clocked):
            label = self._fused_labels.get(cid)
            kind = "lowered" if label is not None else "called"
            if label is None:
                owner = getattr(proc, "__self__", None)
                label = getattr(
                    owner, "profile_label", None
                ) or getattr(proc, "__qualname__", repr(proc))
            active = self._proc_runs[cid] if cid in gated_set else cycles - leaped
            records.append(
                {
                    "label": label,
                    "kind": kind,
                    "gated": cid in gated_set,
                    "active": active,
                    "leaped": leaped,
                    "elided": max(0, cycles - active - leaped),
                }
            )
        return records

    # -- execution -----------------------------------------------------------

    def settle(self) -> int:
        """Run one rank-ordered sweep if anything is pending; return passes."""
        self._ensure_compiled()
        return self._settle_fn()

    def step(self, cycles: int = 1) -> None:
        if self._step_fn is None:
            self._build()
        self._step_fn(cycles)

    def wait_until(self, condition: WaitCondition, timeout: int = 100_000) -> int:
        """Run the lowered wait: the whole wait is one generated-loop call.

        Cycle-exact with the base kernel's ``wait_until`` (condition checked
        before each cycle; ``timeout`` elapsed cycles raise), but the
        per-cycle condition check is a slot comparison inside the fused loop
        instead of a Python-level ``step()`` round trip.
        """
        self._ensure_compiled()
        fn = self._wait_eq_fn if condition.op == "==" else self._wait_ge_fn
        elapsed = fn(condition.signal, condition.value, timeout)
        if elapsed < 0:
            raise SimulationError(
                f"run_until timed out after {timeout} cycles "
                f"(started at {self.cycle - timeout})"
            )
        return elapsed

    def reset(self) -> None:
        """Reset signals, re-settle, zero the clock and stats.

        Honours the reset→settle contract of the base kernel: combinational
        outputs are re-derived from reset values before ``reset()`` returns,
        monitors are not invoked, and the stats are cleared last.  All
        elidable clocked processes are marked woken, matching the event
        kernel (which runs every clocked process on every cycle anyway).
        The timed-wake state (heap, per-process targets, cached minimum,
        sequence counter) is cleared too: the cycle counter rewinds to 0, so
        a wake requested before the reset would otherwise fire at a bogus
        cycle — a parked machine is instead woken by the all-woken mark and
        re-arms itself from the fresh cycle count.
        """
        self._ensure_compiled()
        for sig in self._signals:
            sig.reset()
        del self._sched[:]
        del self._timed[:]
        self._timed_target.clear()
        self._timed_seq = 0
        self._next_timed = _NEVER
        self._events = self._comb_all | (self._gated_all << len(self._comb_decls))
        self._active = 0
        self._proc_runs = [0] * len(self._clocked)
        self.settle()
        self.cycle = 0
        if self._faults is not None:
            self._faults.rebase(self, 0)
        else:
            self._next_fault = _NEVER
        self.stats.reset()
