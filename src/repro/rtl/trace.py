"""Waveform capture for simulated signals.

:class:`TraceRecorder` samples a chosen set of signals after every cycle and
stores them in a :class:`Trace`, which can be queried, diffed, or rendered as
a simple VCD-like text dump.  The evaluation harness uses traces to verify
that generated adapters follow the SIS timing diagrams (Figures 4.3 and 4.4).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.rtl.signal import Signal
from repro.rtl.simulator import Simulator


class Trace:
    """Recorded per-cycle values for a fixed set of signals."""

    def __init__(self, names: Sequence[str]) -> None:
        self.names: List[str] = list(names)
        self.samples: List[Dict[str, int]] = []

    def append(self, sample: Dict[str, int]) -> None:
        self.samples.append(dict(sample))

    def __len__(self) -> int:
        return len(self.samples)

    def values(self, name: str) -> List[int]:
        """The full value history of one signal."""
        if name not in self.names:
            raise KeyError(f"signal {name!r} was not traced")
        return [s[name] for s in self.samples]

    def at(self, cycle: int) -> Dict[str, int]:
        """Sample recorded for ``cycle`` (index into the recording)."""
        return dict(self.samples[cycle])

    def edges(self, name: str) -> List[int]:
        """Cycles at which ``name`` transitioned from 0 to non-zero."""
        history = self.values(name)
        rising = []
        prev = 0
        for cycle, value in enumerate(history):
            if value and not prev:
                rising.append(cycle)
            prev = value
        return rising

    def count_high(self, name: str) -> int:
        """Number of cycles during which ``name`` was non-zero."""
        return sum(1 for v in self.values(name) if v)

    def render(self) -> str:
        """Render an ASCII table of the trace (one row per signal)."""
        lines = []
        width = max((len(n) for n in self.names), default=0)
        for name in self.names:
            cells = " ".join(f"{v:>4x}" for v in self.values(name))
            lines.append(f"{name:<{width}} | {cells}")
        return "\n".join(lines)


class TraceRecorder:
    """Attach to a simulator and record selected signals every cycle.

    Implements the compiled kernel's monitor leap protocol
    (:meth:`observe_leap`), so recording a trace does not force the kernel
    to execute idle cycles one by one: a leap replicates the last sample
    once per skipped cycle, which is exact because no signal can change
    during a leap.
    """

    def __init__(self, simulator: Simulator, signals: Iterable[Signal]) -> None:
        self._signals: List[Signal] = list(signals)
        self.trace = Trace([s.name for s in self._signals])
        simulator.add_monitor(self._sample)

    def _sample(self) -> None:
        self.trace.append({s.name: s.value for s in self._signals})

    def observe_leap(self, cycles: int) -> None:
        """Account for ``cycles`` leaped cycles (compiled kernel only).

        Signal values are frozen for the whole leaped span, so the recording
        stays bit-identical to sampling each cycle individually.
        """
        samples = self.trace.samples
        if samples:
            sample = samples[-1]
        else:
            # A leap can only follow at least one executed cycle after this
            # recorder attached (attaching recompiles, and a fresh freeze
            # marks everything pending), but sample defensively: values are
            # unchanged during a leap, so reading them now is still exact.
            sample = {s.name: s.value for s in self._signals}
        samples.extend([sample] * cycles)
