"""Finite-state-machine helper used by generated user-logic stubs.

The paper's user-logic stubs consist of an ICOB (a clocked process that acts
on the current state) and an SMB (a block that latches the next state the
ICOB requests).  :class:`FSM` provides exactly that split: a ``state`` signal
updated from a ``next_state`` request once per cycle.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.rtl.signal import Signal


class FSM:
    """A named-state machine backed by a pair of signals.

    Parameters
    ----------
    name:
        Prefix for the underlying signals.
    states:
        Ordered state names; the first is the reset state.
    """

    def __init__(self, name: str, states: Iterable[str]) -> None:
        self.name = name
        self.states: List[str] = list(states)
        if not self.states:
            raise ValueError("FSM requires at least one state")
        if len(set(self.states)) != len(self.states):
            raise ValueError(f"duplicate state names in FSM {name!r}")
        self._index: Dict[str, int] = {s: i for i, s in enumerate(self.states)}
        width = max(1, (len(self.states) - 1).bit_length())
        self.state_signal = Signal(f"{name}.state", width=width, reset=0)
        self.next_signal = Signal(f"{name}.next_state", width=width, reset=0)

    # -- queries ---------------------------------------------------------------

    @property
    def state(self) -> str:
        """Name of the current state."""
        return self.states[self.state_signal.value]

    def is_in(self, state: str) -> bool:
        """True when the FSM is currently in ``state``."""
        return self.state_signal.value == self.encode(state)

    def encode(self, state: str) -> int:
        """Return the numeric encoding of ``state``."""
        try:
            return self._index[state]
        except KeyError:
            raise KeyError(f"unknown state {state!r} for FSM {self.name!r}") from None

    # -- transitions --------------------------------------------------------

    def request(self, state: str) -> None:
        """Request a transition to ``state`` (takes effect on the next edge)."""
        self.next_signal.next = self.encode(state)
        self.state_signal.next = self.encode(state)

    def hold(self) -> None:
        """Explicitly remain in the current state (no-op, for readability)."""

    def signals(self) -> List[Signal]:
        """Signals that must be registered with the simulator."""
        return [self.state_signal, self.next_signal]
