"""Lowerable finite-state-machine IR — the declarative form of every
per-cycle Python state machine in the tree.

PR 4 measured the remaining cost of the compiled kernel on the Figure 9.1
workloads: every bus master, slave adapter, user-logic stub and arbiter
still executed as a per-cycle Python ``tick()`` call, and that shared FSM
cost dominated.  This module removes the Python call from that tier the way
migen's simulator lowers FHDL processes: the machines are *described as
data* — states, guarded transitions, signal schedules/pulses/drives, counter
updates, timed-wake parks — and the description has two backends:

* an **interpreted backend** (:meth:`BoundFsm.tick_interpreted`): a
  tree-walking executor over the IR with pre-compiled guard/action
  expressions — the semantic oracle every other execution form is proven
  against;
* a **standalone tick** (:meth:`BoundFsm.tick`): a per-machine function
  generated from the IR at bind time (bindings in closure cells, integer
  state register synchronised with the owner's state attribute per tick).
  It is the drop-in replacement for the hand-written ``tick()`` methods
  and is what the scan kernels (event-driven and reference) register as
  the clocked process — IR execution without per-op dispatch cost; and
* a **lowered backend** (:meth:`BoundFsm.emit_compiled_clocked` /
  :meth:`BoundFsm.emit_compiled_comb`): a code generator the
  :class:`~repro.rtl.compile.CompiledSimulator` calls at elaboration freeze
  to inline the machine straight into its fused ``step(n)`` loop — the
  state register is held in a function local across cycles, all bindings
  are hoisted at function entry, and no per-cycle Python call remains.

The standalone tick and the inlined body come from the *same* emitter, so
they cannot drift apart; the tree-walker is an independent implementation.
``tests/test_kernel_equivalence.py`` proves standalone and lowered
execution cycle-exact against each other (and against the retained
hand-written Python ticks, which stay available as the ``"python"``
backend) on the full paper grid; ``tests/test_fsm_ir.py`` proves the
interpreter equivalent to both on randomized machines.

The IR
------

A machine is an :class:`FsmSpec`: an ``entry`` op tree executed every tick
(reset handling, request detection, cycle accounting) containing exactly one
:class:`StateDispatch` marker, plus named states whose bodies are op trees.
Expressions are Python expression strings over a closed lexicon declared by
the spec — signal bindings (``sig_name._value`` reads the committed slot),
``m`` (the owning module object), integer constants (inlined as literals by
the lowering backend), scratch temps, and ``CYCLE`` (the pre-increment
simulator cycle).  Side effects are explicit ops:

========================  ====================================================
:class:`Exec`             a statement over the lexicon (counter updates etc.)
:class:`If`               structured branch (guarded transition bodies)
:class:`Goto`             set the state register (the transition itself)
:class:`Redispatch`       re-enter the dispatch chain *this* cycle
                          (same-cycle fall-through between states)
:class:`Active`           set / accumulate the wait-state-elision flag
:class:`Schedule`         two-phase ``sig.schedule(expr)``
:class:`Pulse`            kernel-cleared one-cycle strobe ``sig.pulse(expr)``
:class:`Drive`            combinational ``sig.drive(expr)`` (comb specs only)
:class:`ScheduleZero`     bulk clear of a declared signal group
:class:`Call`             escape to a bound Python helper (transaction
                          boundaries); the state register is synchronised
                          around the call so helpers may set it
:class:`Sleep`            timed-wake park for pure countdowns
========================  ====================================================

Validation is static and loud: transitions to undeclared states, states
unreachable from the initial/helper-entered set, combinational drives inside
clocked machines (and vice versa) are all rejected when the spec is built,
with the offending op named — the same move the compiled kernel makes for
combinational cycles.  :func:`detect_drive_conflicts` additionally reports
two bound machines combinationally driving the same signal.

Every spec has a content :meth:`~FsmSpec.fingerprint`; the compiled kernel
folds the emitted machine source into its design digest (so program-cache
entries are IR-exact) and the campaign result cache folds
:func:`fsm_ir_fingerprint` into every cell digest.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from functools import lru_cache
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.rtl.signal import Signal, schedule_zero


class FsmError(ValueError):
    """Raised for malformed FSM IR (bad transitions, invalid ops, ...)."""


# ---------------------------------------------------------------------------
# backend selection
# ---------------------------------------------------------------------------

#: Backends: ``"ir"`` registers the interpreted IR tick (and lets the
#: compiled kernel lower the machine inline); ``"python"`` registers the
#: retained hand-written tick method — the differential-testing path and an
#: escape hatch for scan-kernel-heavy workloads.
BACKENDS = ("ir", "python")

_backend_stack: List[str] = ["ir"]


def current_backend() -> str:
    """The FSM backend newly constructed machines will use."""
    return _backend_stack[-1]


def resolve_backend(backend: Optional[str]) -> str:
    """Normalise a constructor's ``fsm_backend`` argument."""
    name = backend if backend is not None else current_backend()
    if name not in BACKENDS:
        raise FsmError(f"unknown FSM backend {name!r} (known: {BACKENDS})")
    return name


@contextmanager
def use_backend(backend: str):
    """Temporarily switch the default FSM backend (tests, profiling)."""
    if backend not in BACKENDS:
        raise FsmError(f"unknown FSM backend {backend!r} (known: {BACKENDS})")
    _backend_stack.append(backend)
    try:
        yield
    finally:
        _backend_stack.pop()


# ---------------------------------------------------------------------------
# ops
# ---------------------------------------------------------------------------


def _ops(items) -> tuple:
    out = tuple(items)
    for op in out:
        if not isinstance(op, Op):
            raise FsmError(f"expected an FSM op, got {op!r}")
    return out


class Op:
    """Base class for IR operations (frozen dataclasses)."""

    __slots__ = ()


@dataclass(frozen=True)
class Exec(Op):
    """A statement over the machine lexicon (counter/register updates)."""

    code: str


@dataclass(frozen=True)
class If(Op):
    """A structured branch; ``then``/``orelse`` are op sequences."""

    cond: str
    then: tuple
    orelse: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "then", _ops(self.then))
        object.__setattr__(self, "orelse", _ops(self.orelse))


@dataclass(frozen=True)
class Goto(Op):
    """Set the state register to ``state`` (does not stop the body)."""

    state: str


@dataclass(frozen=True)
class Redispatch(Op):
    """Re-enter the state dispatch chain within the same tick."""


@dataclass(frozen=True)
class StateDispatch(Op):
    """Marker in ``entry``: run the current state's body here."""


@dataclass(frozen=True)
class Active(Op):
    """Set (or OR-accumulate) the wait-state-elision activity flag."""

    expr: str = "True"
    accumulate: bool = False


@dataclass(frozen=True)
class Schedule(Op):
    """Two-phase ``sig.schedule(expr)``; ``capture`` ORs the report into
    the activity flag (the canonical idiom for steady wait states)."""

    sig: str
    expr: str
    capture: bool = False


@dataclass(frozen=True)
class Pulse(Op):
    """Kernel-cleared one-cycle strobe ``sig.pulse(expr)``."""

    sig: str
    expr: str = "1"
    capture: bool = False


@dataclass(frozen=True)
class Drive(Op):
    """Combinational ``sig.drive(expr)`` — only valid in comb specs."""

    sig: str
    expr: str


@dataclass(frozen=True)
class ScheduleZero(Op):
    """Bulk ``schedule(0)`` over a declared signal group."""

    group: str


@dataclass(frozen=True)
class Call(Op):
    """Escape to a bound Python helper (transaction-boundary work).

    The state register is written back to the owner before the call and
    reloaded after it, so helpers are free to change the machine's state
    (``_begin`` hooks, completion bookkeeping).  ``args`` is a
    comma-separated expression list; ``store`` names a scratch temp for the
    return value.
    """

    helper: str
    args: str = ""
    store: Optional[str] = None


@dataclass(frozen=True)
class Sleep(Op):
    """Park a pure countdown: on kernels with timed wakes, book a wake in
    ``delta`` cycles and report quiescence; on scan kernels stay active.
    Mirrors ``BusMaster._sleep_until`` exactly."""

    delta: str


# ---------------------------------------------------------------------------
# the spec
# ---------------------------------------------------------------------------


@dataclass
class FsmSpec:
    """One machine, described as data.

    ``kind`` is ``"clocked"`` (stateful, produces an activity flag, may
    schedule/pulse) or ``"comb"`` (stateless entry-only body that may only
    ``drive``).  State bodies and ``entry`` are op trees; the owner object's
    ``state_attr`` attribute holds the *name* of the current state between
    ticks (helpers and tests keep reading the familiar strings), while both
    backends dispatch on a dense integer register internally.

    The binding name tuples (``signals``/``groups``/``helpers``/``consts``/
    ``temps``) declare the complete expression lexicon; binding the spec
    (:class:`BoundFsm`) checks that every declared name is supplied.
    """

    name: str
    kind: str = "clocked"
    entry: tuple = ()
    states: Dict[str, tuple] = field(default_factory=dict)
    initial: Optional[str] = None
    state_attr: str = "_state"
    #: States helpers may enter directly (reachability roots besides Goto).
    external_states: tuple = ()
    signals: tuple = ()
    groups: tuple = ()
    helpers: tuple = ()
    consts: tuple = ()
    temps: tuple = ()

    def __post_init__(self) -> None:
        self.entry = _ops(self.entry)
        self.states = {name: _ops(body) for name, body in self.states.items()}
        self.external_states = tuple(self.external_states)
        self.validate()

    # -- static diagnostics -------------------------------------------------

    def _walk(self, ops: Iterable[Op]):
        for op in ops:
            yield op
            if isinstance(op, If):
                yield from self._walk(op.then)
                yield from self._walk(op.orelse)

    def _all_ops(self):
        yield from self._walk(self.entry)
        for body in self.states.values():
            yield from self._walk(body)

    def validate(self) -> None:
        """Reject malformed machines with the offending construct named."""
        if self.kind not in ("clocked", "comb"):
            raise FsmError(f"FSM {self.name!r}: unknown kind {self.kind!r}")

        if self.kind == "comb":
            if self.states:
                raise FsmError(
                    f"comb FSM {self.name!r} must be stateless (entry ops only)"
                )
            for op in self._all_ops():
                if isinstance(op, (Schedule, Pulse, ScheduleZero)):
                    raise FsmError(
                        f"comb FSM {self.name!r} uses two-phase op {op!r}; "
                        f"combinational processes may only drive()"
                    )
                if isinstance(
                    op, (Goto, Redispatch, StateDispatch, Active, Sleep, Call)
                ):
                    raise FsmError(
                        f"comb FSM {self.name!r} uses clocked-only op {op!r}"
                    )
            return

        if not self.states:
            raise FsmError(f"clocked FSM {self.name!r} declares no states")
        if self.initial is None:
            self.initial = next(iter(self.states))
        if self.initial not in self.states:
            raise FsmError(
                f"FSM {self.name!r}: initial state {self.initial!r} is not declared"
            )
        for state in self.external_states:
            if state not in self.states:
                raise FsmError(
                    f"FSM {self.name!r}: external state {state!r} is not declared"
                )

        dispatches = sum(
            1 for op in self._walk(self.entry) if isinstance(op, StateDispatch)
        )
        if dispatches != 1:
            raise FsmError(
                f"clocked FSM {self.name!r} must contain exactly one "
                f"StateDispatch in its entry tree (found {dispatches})"
            )
        for op in self._walk(self.entry):
            if isinstance(op, Redispatch):
                raise FsmError(
                    f"FSM {self.name!r}: Redispatch outside a state body "
                    f"(it re-enters the dispatch chain, which only exists "
                    f"inside states)"
                )
        for name, body in self.states.items():
            for op in self._walk(body):
                if isinstance(op, StateDispatch):
                    raise FsmError(
                        f"FSM {self.name!r}: StateDispatch inside state {name!r} "
                        f"(use Redispatch for same-cycle fall-through)"
                    )

        # Malformed transitions: every Goto must target a declared state.
        for op in self._all_ops():
            if isinstance(op, Goto) and op.state not in self.states:
                raise FsmError(
                    f"FSM {self.name!r}: transition to unknown state "
                    f"{op.state!r} (declared: {sorted(self.states)})"
                )
            if isinstance(op, Drive):
                raise FsmError(
                    f"clocked FSM {self.name!r} drives {op.sig!r} "
                    f"combinationally; clocked machines must schedule() or "
                    f"pulse() (conflicting-drive hazard)"
                )

        # Unreachable states: not initial, not helper-entered, never a Goto
        # target.  A state the dispatch chain can never select is dead logic
        # — reject it loudly instead of silently carrying it.
        targeted = {self.initial, *self.external_states}
        targeted.update(
            op.state for op in self._all_ops() if isinstance(op, Goto)
        )
        unreachable = [s for s in self.states if s not in targeted]
        if unreachable:
            raise FsmError(
                f"FSM {self.name!r}: unreachable state(s) {unreachable} "
                f"(no Goto targets them, they are not the initial state, and "
                f"they are not declared in external_states)"
            )

    # -- introspection ------------------------------------------------------

    def written_signals(self) -> Tuple[str, ...]:
        """Binding names of every signal (and group) this machine writes."""
        names: List[str] = []
        for op in self._all_ops():
            if isinstance(op, (Schedule, Pulse, Drive)):
                if op.sig not in names:
                    names.append(op.sig)
            elif isinstance(op, ScheduleZero):
                if op.group not in names:
                    names.append(op.group)
        return tuple(names)

    def _canonical(self) -> str:
        def dump(op: Op) -> str:
            kind = type(op).__name__
            parts = []
            for f in fields(op):
                value = getattr(op, f.name)
                if isinstance(value, tuple) and value and isinstance(value[0], Op):
                    value = "[" + ",".join(dump(v) for v in value) + "]"
                parts.append(f"{f.name}={value!r}")
            return f"{kind}({','.join(parts)})"

        lines = [
            f"fsm:{self.name}:{self.kind}:{self.initial}:{self.state_attr}",
            "entry:" + ",".join(dump(op) for op in self.entry),
        ]
        for name, body in self.states.items():
            lines.append(f"state {name}:" + ",".join(dump(op) for op in body))
        lines.append(f"consts:{','.join(self.consts)}")
        return "\n".join(lines)

    def fingerprint(self) -> str:
        """Content digest of the IR (states, transitions, ops, lexicon)."""
        return hashlib.sha256(self._canonical().encode()).hexdigest()


#: Bumped whenever the IR schema or execution semantics change; folded into
#: :func:`fsm_ir_fingerprint` so caches keyed on it invalidate.
FSM_IR_VERSION = 1


@lru_cache(maxsize=1)
def fsm_ir_fingerprint() -> str:
    """Digest of this module's source + IR schema version.

    The campaign result cache folds this into every cell digest so a change
    to the FSM IR (its semantics, its lowering, or any machine described in
    it — machine specs live in source files already covered by the source
    fingerprint) invalidates cached measurements.
    """
    from pathlib import Path

    digest = hashlib.sha256()
    digest.update(f"fsm-ir-v{FSM_IR_VERSION}\0".encode())
    digest.update(Path(__file__).read_bytes())
    return digest.hexdigest()


def detect_drive_conflicts(machines: Sequence["BoundFsm"]) -> List[str]:
    """Report signals combinationally driven by more than one bound machine.

    Two comb machines driving the same :class:`Signal` is the classic
    conflicting-drive bug; the scan kernels would silently resolve it by
    execution order.  Returns human-readable diagnostics (empty = clean).
    """
    drivers: Dict[int, List[Tuple[str, Signal]]] = {}
    for machine in machines:
        if machine.spec.kind != "comb":
            continue
        for name in machine.spec.written_signals():
            sig = machine._bindings[name]
            drivers.setdefault(id(sig), []).append((machine.spec.name, sig))
    conflicts = []
    for entries in drivers.values():
        if len(entries) > 1:
            sig = entries[0][1]
            owners = sorted(name for name, _ in entries)
            conflicts.append(
                f"signal {sig.name!r} is combinationally driven by "
                f"{len(entries)} machines: {', '.join(owners)}"
            )
    return sorted(conflicts)


# ---------------------------------------------------------------------------
# interpreted backend
# ---------------------------------------------------------------------------

# Compiled-op tags (tuple-encoded program for the tree walker).
_EXEC, _IF, _GOTO, _REDISP, _DISPATCH, _ACTIVE, _SCHED, _PULSE, _DRIVE, _SZERO, _CALL, _SLEEP = range(12)

#: Control codes returned by the interpreter's op walker.
_CTRL_NONE, _CTRL_REDISPATCH = 0, 1


class BoundFsm:
    """An :class:`FsmSpec` bound to its owner module, signals and helpers.

    ``tick`` is the interpreted backend — register it as the clocked
    process (``module.clocked(fsm.tick, sensitive_to=[...])``) exactly like
    a hand-written tick method; its return value is the wait-state-elision
    activity flag.  The compiled kernel recognises the bound machine via the
    ``emit_compiled_clocked`` / ``emit_compiled_comb`` hooks and inlines the
    lowered form instead of calling ``tick`` at all.
    """

    def __init__(
        self,
        spec: FsmSpec,
        owner,
        *,
        signals: Optional[Dict[str, Signal]] = None,
        groups: Optional[Dict[str, tuple]] = None,
        helpers: Optional[Dict[str, Callable]] = None,
        consts: Optional[Dict[str, int]] = None,
    ) -> None:
        self.spec = spec
        self.owner = owner
        signals = dict(signals or {})
        groups = {k: tuple(v) for k, v in (groups or {}).items()}
        helpers = dict(helpers or {})
        consts = {k: int(v) for k, v in (consts or {}).items()}
        for label, declared, supplied in (
            ("signal", spec.signals, signals),
            ("group", spec.groups, groups),
            ("helper", spec.helpers, helpers),
            ("const", spec.consts, consts),
        ):
            missing = [n for n in declared if n not in supplied]
            extra = [n for n in supplied if n not in declared]
            if missing or extra:
                raise FsmError(
                    f"FSM {spec.name!r}: {label} bindings mismatch "
                    f"(missing {missing}, undeclared {extra})"
                )
        self._signals = signals
        self._groups = groups
        self._helpers = helpers
        self._consts = consts
        self._bindings: Dict[str, object] = {**signals, **groups}
        self._state_names = list(spec.states)
        self._state_index = {name: i for i, name in enumerate(self._state_names)}
        # Persistent expression namespace for the interpreter: bindings are
        # constant, temps persist harmlessly between ticks, CYCLE is
        # refreshed per tick.
        self._ns: Dict[str, object] = {
            "m": owner,
            "CYCLE": 0,
            **signals,
            **groups,
            **helpers,
            **consts,
        }
        # The interpreter's op program is built lazily on first use: the
        # oracle is exercised by tests, not by ordinary simulation, and
        # compiling its per-op expressions for every machine of every system
        # build was measurable at campaign scale.
        self._entry_prog: Optional[tuple] = None
        self._state_progs: List[tuple] = []
        if spec.kind == "clocked" and not hasattr(owner, spec.state_attr):
            setattr(owner, spec.state_attr, spec.initial)
        self._standalone = False
        #: The registered process: a per-machine function generated from the
        #: IR (state register synchronised with the owner per call).  The
        #: ``__self__`` backref lets the compiled kernel discover the
        #: lowering hooks exactly as it does for bound methods.
        self.tick = self._build_standalone_tick()
        self.tick.__self__ = self

    # -- profile / introspection -------------------------------------------

    @property
    def profile_label(self) -> str:
        owner_name = getattr(self.owner, "name", type(self.owner).__name__)
        return f"{owner_name}:{self.spec.name}"

    @property
    def state(self) -> str:
        """Current state name (clocked machines)."""
        return getattr(self.owner, self.spec.state_attr)

    # -- op compilation -----------------------------------------------------

    def _expr(self, text: str):
        return compile(text, f"<fsm {self.spec.name}>", "eval")

    def _stmt(self, text: str):
        return compile(text, f"<fsm {self.spec.name}>", "exec")

    def _compile_ops(self, ops: tuple) -> tuple:
        prog = []
        for op in ops:
            if isinstance(op, Exec):
                prog.append((_EXEC, self._stmt(op.code)))
            elif isinstance(op, If):
                prog.append(
                    (
                        _IF,
                        self._expr(op.cond),
                        self._compile_ops(op.then),
                        self._compile_ops(op.orelse),
                    )
                )
            elif isinstance(op, Goto):
                prog.append((_GOTO, self._state_index[op.state]))
            elif isinstance(op, Redispatch):
                prog.append((_REDISP,))
            elif isinstance(op, StateDispatch):
                prog.append((_DISPATCH,))
            elif isinstance(op, Active):
                prog.append((_ACTIVE, self._expr(op.expr), op.accumulate))
            elif isinstance(op, Schedule):
                prog.append(
                    (_SCHED, self._signals[op.sig], self._expr(op.expr), op.capture)
                )
            elif isinstance(op, Pulse):
                prog.append(
                    (_PULSE, self._signals[op.sig], self._expr(op.expr), op.capture)
                )
            elif isinstance(op, Drive):
                prog.append((_DRIVE, self._signals[op.sig], self._expr(op.expr)))
            elif isinstance(op, ScheduleZero):
                prog.append((_SZERO, self._groups[op.group]))
            elif isinstance(op, Call):
                args = self._expr(f"({op.args},)") if op.args else None
                prog.append((_CALL, self._helpers[op.helper], args, op.store))
            elif isinstance(op, Sleep):
                prog.append((_SLEEP, self._expr(op.delta)))
            else:  # pragma: no cover - guarded by _ops()
                raise FsmError(f"unknown op {op!r}")
        return tuple(prog)

    # -- interpreted execution ---------------------------------------------

    def _run(self, prog: tuple, ns: dict, ctx: list) -> int:
        # ctx = [state_index, activity, simulator]; returns a control code.
        for op in prog:
            tag = op[0]
            if tag == _IF:
                branch = op[2] if eval(op[1], ns) else op[3]
                if branch:
                    ctrl = self._run(branch, ns, ctx)
                    if ctrl:
                        return ctrl
            elif tag == _EXEC:
                exec(op[1], ns)
            elif tag == _SCHED:
                if op[3]:
                    ctx[1] = op[1].schedule(eval(op[2], ns)) or ctx[1]
                else:
                    op[1].schedule(eval(op[2], ns))
            elif tag == _PULSE:
                if op[3]:
                    ctx[1] = op[1].pulse(eval(op[2], ns)) or ctx[1]
                else:
                    op[1].pulse(eval(op[2], ns))
            elif tag == _ACTIVE:
                if op[2]:
                    ctx[1] = ctx[1] or eval(op[1], ns)
                else:
                    ctx[1] = eval(op[1], ns)
            elif tag == _GOTO:
                ctx[0] = op[1]
            elif tag == _CALL:
                owner, attr = self.owner, self.spec.state_attr
                setattr(owner, attr, self._state_names[ctx[0]])
                result = op[1](*eval(op[2], ns)) if op[2] is not None else op[1]()
                if op[3] is not None:
                    ns[op[3]] = result
                ctx[0] = self._state_index[getattr(owner, attr)]
            elif tag == _SLEEP:
                delta = eval(op[1], ns)
                sim = ctx[2]
                if delta > 1 and sim is not None and sim.timed_wakes:
                    # Wake the interpreter itself: when tick_interpreted is
                    # the registered process, this is the identity the
                    # kernel's wake bits are keyed by (bound methods compare
                    # by function+instance, so a fresh access is fine).
                    sim.wake_after(self.tick_interpreted, delta)
                    ctx[1] = False
                else:
                    ctx[1] = True
            elif tag == _DISPATCH:
                progs = self._state_progs
                for _ in range(64):
                    if self._run(progs[ctx[0]], ns, ctx) != _CTRL_REDISPATCH:
                        break
                else:  # pragma: no cover - defensive bound
                    raise FsmError(
                        f"FSM {self.spec.name!r}: dispatch did not terminate"
                    )
            elif tag == _REDISP:
                return _CTRL_REDISPATCH
            elif tag == _DRIVE:
                op[1].drive(eval(op[2], ns))
            elif tag == _SZERO:
                schedule_zero(op[1])
        return _CTRL_NONE

    def tick_interpreted(self):
        """Interpreted execution of one clock tick (or one comb evaluation).

        The tree-walking oracle: op-by-op execution over the IR data with no
        code generation involved.  Drop-in compatible with :attr:`tick`;
        used by the randomized equivalence tests to pin down the semantics
        the generated forms must reproduce.
        """
        if self._entry_prog is None:
            self._entry_prog = self._compile_ops(self.spec.entry)
            self._state_progs = [
                self._compile_ops(self.spec.states[name])
                for name in self._state_names
            ]
        owner = self.owner
        sim = getattr(owner, "_simulator", None)
        ns = self._ns
        ns["CYCLE"] = sim.cycle if sim is not None else 0
        if self.spec.kind == "comb":
            self._run(self._entry_prog, ns, [0, False, sim])
            return None
        ctx = [self._state_index[getattr(owner, self.spec.state_attr)], False, sim]
        self._run(self._entry_prog, ns, ctx)
        setattr(owner, self.spec.state_attr, self._state_names[ctx[0]])
        return ctx[1]

    # -- standalone generated tick (the scan-kernel backend) ----------------

    def _build_standalone_tick(self):
        """Generate this machine's ``tick()`` function from the IR.

        Shares the op emitter with the compiled-kernel lowering (the two
        forms cannot drift apart); bindings live in closure cells, constants
        are inlined as literals, and the state register round-trips through
        the owner's state attribute once per call so helpers and tests keep
        seeing the familiar state names.
        """
        p = "z"
        spec = self.spec
        # Same spec, same program: the generated source depends only on the
        # IR and the declared binding names, so the compiled code object is
        # cached on the spec and shared by every machine instance built from
        # it (specs themselves are cached per class/shape by their owners).
        program = getattr(spec, "_standalone_program", None)
        if program is None:
            # Unlike the lowered form (emitted per elaboration freeze, where
            # constants become literals), the shared standalone program takes
            # consts as closure parameters — instances built from the same
            # spec may bind different values (base addresses, widths).
            mapping = self._rename_map(p)
            for name in spec.consts:
                mapping[name] = f"{p}_k_{name}"
            rename = self._renamer(mapping)
            make_params: List[str] = [f"{p}_M", f"{p}_SN", f"{p}_SI", f"{p}_SZ"]
            alias_lines = [f"{p}_m = {p}_M"]
            for name in spec.signals:
                make_params.append(f"{p}_SIG_{name}")
                alias_lines.append(f"{p}_{name} = {p}_SIG_{name}")
            for name in spec.groups:
                make_params.append(f"{p}_GRP_{name}")
                alias_lines.append(f"{p}_g_{name} = {p}_GRP_{name}")
            for name in spec.helpers:
                make_params.append(f"{p}_HLP_{name}")
                alias_lines.append(f"{p}_h_{name} = {p}_HLP_{name}")
            for name in spec.consts:
                make_params.append(f"{p}_k_{name}")

            body: List[str] = []
            self._standalone = True
            try:
                self._emit_ops(spec.entry, "", rename, body, p)
            finally:
                self._standalone = False

            lines = [f"def {p}_make({', '.join(make_params)}):"]
            lines += ["    " + line for line in alias_lines]
            lines.append(f"    def {p}_tick():")
            if spec.kind == "comb":
                lines += ["        " + line for line in body]
                lines.append("        return None")
            else:
                lines.append(f"        {p}_s = {p}_m._simulator")
                lines.append(f"        cyc = {p}_s.cycle if {p}_s is not None else 0")
                lines.append(f"        {p}_st = {p}_SI[{p}_m.{spec.state_attr}]")
                lines.append(f"        {p}_act = False")
                lines += ["        " + line for line in body]
                lines.append(f"        {p}_m.{spec.state_attr} = {p}_SN[{p}_st]")
                lines.append(f"        return {p}_act")
            lines.append(f"    return {p}_tick")
            program = compile("\n".join(lines), f"<fsm-tick {spec.name}>", "exec")
            spec._standalone_program = program

        make_args: Dict[str, object] = {
            f"{p}_M": self.owner,
            f"{p}_SN": self._state_names,
            f"{p}_SI": self._state_index,
            f"{p}_SZ": schedule_zero,
        }
        for name in spec.signals:
            make_args[f"{p}_SIG_{name}"] = self._signals[name]
        for name in spec.groups:
            make_args[f"{p}_GRP_{name}"] = self._groups[name]
        for name in spec.helpers:
            make_args[f"{p}_HLP_{name}"] = self._helpers[name]
        for name in spec.consts:
            make_args[f"{p}_k_{name}"] = self._consts[name]
        namespace: Dict[str, object] = {f"{p}_FERR": FsmError}
        exec(program, namespace)
        return namespace[f"{p}_make"](**make_args)

    # -- lowered backend ----------------------------------------------------

    def _renamer(self, mapping: Dict[str, str]):
        import re

        if not mapping:
            return lambda text: text
        # String literals are matched first (and left untouched) so a state
        # name or message containing a lexicon word is never rewritten.
        pattern = re.compile(
            r"('[^']*'|\"[^\"]*\")|(?<![\w.])("
            + "|".join(sorted(map(re.escape, mapping), key=len, reverse=True))
            + r")\b"
        )

        def replace(match):
            if match.group(1) is not None:
                return match.group(1)
            return mapping[match.group(2)]

        return lambda text: pattern.sub(replace, text)

    def _emit_ops(self, ops: tuple, indent: str, rename, lines: List[str], p: str) -> None:
        spec = self.spec
        for op in ops:
            if isinstance(op, Exec):
                for line in op.code.split("\n"):
                    lines.append(indent + rename(line))
            elif isinstance(op, If):
                lines.append(indent + f"if {rename(op.cond)}:")
                if op.then:
                    self._emit_ops(op.then, indent + "    ", rename, lines, p)
                else:
                    lines.append(indent + "    pass")
                if op.orelse:
                    lines.append(indent + "else:")
                    self._emit_ops(op.orelse, indent + "    ", rename, lines, p)
            elif isinstance(op, Goto):
                lines.append(indent + f"{p}_st = {self._state_index[op.state]}")
            elif isinstance(op, Redispatch):
                lines.append(indent + "continue")
            elif isinstance(op, StateDispatch):
                self._emit_dispatch(indent, rename, lines, p)
            elif isinstance(op, Active):
                target = f"{p}_act"
                if op.accumulate:
                    lines.append(indent + f"{target} = {target} or ({rename(op.expr)})")
                else:
                    lines.append(indent + f"{target} = {rename(op.expr)}")
            elif isinstance(op, Schedule):
                if self._standalone:
                    call = f"{rename(op.sig)}.schedule({rename(op.expr)})"
                    if op.capture:
                        lines.append(indent + f"{p}_act = {call} or {p}_act")
                    else:
                        lines.append(indent + call)
                else:
                    self._emit_schedule_inline(op, indent, rename, lines, p)
            elif isinstance(op, Pulse):
                if self._standalone:
                    call = f"{rename(op.sig)}.pulse({rename(op.expr)})"
                    if op.capture:
                        lines.append(indent + f"{p}_act = {call} or {p}_act")
                    else:
                        lines.append(indent + call)
                else:
                    self._emit_pulse_inline(op, indent, rename, lines, p)
            elif isinstance(op, Drive):
                if self._standalone:
                    lines.append(indent + f"{rename(op.sig)}.drive({rename(op.expr)})")
                else:
                    self._emit_drive_inline(op, indent, rename, lines, p)
            elif isinstance(op, ScheduleZero):
                if self._standalone:
                    lines.append(indent + f"{p}_SZ({rename(op.group)})")
                else:
                    # Unrolled per member against the known observer contract
                    # (mirrors schedule_zero exactly, including its quirk of
                    # not touching _auto on the scheduled-from-idle path).
                    for index in range(len(self._groups[op.group])):
                        sig = f"{p}_GM_{op.group}_{index}"
                        lines.append(indent + f"if {sig}._next is None:")
                        lines.append(indent + f"    if {sig}._value:")
                        lines.append(indent + f"        {sig}._next = 0")
                        lines.append(indent + f"        sched.append({sig})")
                        lines.append(indent + "else:")
                        lines.append(indent + f"    {sig}._next = 0")
                        lines.append(indent + f"    {sig}._auto = False")
            elif isinstance(op, Call):
                attr = spec.state_attr
                lines.append(indent + f"{p}_m.{attr} = {p}_SN[{p}_st]")
                call = f"{rename(op.helper)}({rename(op.args)})"
                if op.store is not None:
                    lines.append(indent + f"{rename(op.store)} = {call}")
                else:
                    lines.append(indent + call)
                lines.append(indent + f"{p}_st = {p}_SI[{p}_m.{attr}]")
            elif isinstance(op, Sleep):
                lines.append(indent + f"{p}_d = {rename(op.delta)}")
                if self._standalone:
                    # Scan kernels run every clocked process every cycle;
                    # only kernels honouring timed wakes may park.
                    lines.append(
                        indent
                        + f"if {p}_d > 1 and {p}_s is not None and {p}_s.timed_wakes:"
                    )
                    lines.append(indent + f"    {p}_s.wake_after({p}_tick, {p}_d)")
                else:
                    # The compiled kernel always honours timed wakes — park
                    # when the countdown is long enough to pay for the heap
                    # traffic.  The break-even point belongs to the kernel:
                    # with cycle leaping on, parking pays as soon as one
                    # whole cycle can be skipped (threshold 1); without it,
                    # short waits (arbitration, bridge crossings) stay
                    # active because a couple of extra inlined runs are
                    # cheaper than wake bookkeeping.  Countdowns re-check
                    # their target either way.
                    lines.append(indent + f"if {p}_d > s._sleep_threshold:")
                    lines.append(indent + f"    s.wake_after({p}_TICK, {p}_d)")
                lines.append(indent + f"    {p}_act = False")
                lines.append(indent + "else:")
                lines.append(indent + f"    {p}_act = True")

    # The lowered backend runs inside CompiledSimulator's generated loop,
    # where the signal observer protocol is known statically: a scheduled
    # report is exactly ``sched.append(sig)`` and a changed report is exactly
    # ``s._events |= sig._ev_mask``.  The three emitters below inline
    # Signal.schedule/pulse/drive against that contract — the per-op method
    # call disappears and the width mask becomes a literal.  The standalone
    # tick keeps the method calls: on scan kernels the observer differs.

    def _masked_value(self, op, rename) -> Tuple[Optional[int], str]:
        """Constant-fold the op's value expression when it is a literal
        (inlined constants included — the renamer substitutes them first)."""
        mask = self._signals[op.sig]._mask
        text = rename(op.expr)
        try:
            return int(text, 0) & mask, ""
        except ValueError:
            return None, f"({text}) & {mask}"

    def _emit_schedule_inline(self, op, indent, rename, lines: List[str], p: str) -> None:
        sig = rename(op.sig)
        const, value_code = self._masked_value(op, rename)
        if const is None:
            lines.append(indent + f"{p}_v = {value_code}")
            value = f"{p}_v"
        else:
            value = repr(const)
        report = [f"{indent}        {p}_act = True"] if op.capture else []
        lines.append(indent + f"if {sig}._next is None:")
        lines.append(indent + f"    if {value} != {sig}._value:")
        lines.append(indent + f"        {sig}._auto = False")
        lines.append(indent + f"        {sig}._next = {value}")
        lines.append(indent + f"        sched.append({sig})")
        lines.extend(report)
        lines.append(indent + "    else:")
        lines.append(indent + f"        {sig}._auto = False")
        lines.append(indent + "else:")
        lines.append(indent + f"    {sig}._auto = False")
        lines.append(indent + f"    {sig}._next = {value}")
        if op.capture:
            lines.append(indent + f"    {p}_act = True")

    def _emit_pulse_inline(self, op, indent, rename, lines: List[str], p: str) -> None:
        sig = rename(op.sig)
        const, value_code = self._masked_value(op, rename)
        if const is not None and const != 0:
            # The common strobe: a non-zero constant pulse always schedules.
            lines.append(indent + f"if {sig}._next is None: sched.append({sig})")
            lines.append(indent + f"{sig}._next = {const}")
            lines.append(indent + f"{sig}._auto = True")
            if op.capture:
                lines.append(indent + f"{p}_act = True")
            return
        if const is None:
            lines.append(indent + f"{p}_v = {value_code}")
            value = f"{p}_v"
        else:
            value = repr(const)
        lines.append(indent + f"if {sig}._next is None:")
        lines.append(indent + f"    if {value} != {sig}._value or {value} != 0:")
        lines.append(indent + f"        sched.append({sig})")
        lines.append(indent + f"        {sig}._next = {value}")
        lines.append(indent + f"        {sig}._auto = True")
        if op.capture:
            lines.append(indent + f"        {p}_act = True")
        lines.append(indent + "else:")
        lines.append(indent + f"    {sig}._next = {value}")
        lines.append(indent + f"    {sig}._auto = True")
        if op.capture:
            lines.append(indent + f"    {p}_act = True")

    def _emit_drive_inline(self, op, indent, rename, lines: List[str], p: str) -> None:
        sig = rename(op.sig)
        const, value_code = self._masked_value(op, rename)
        if const is None:
            lines.append(indent + f"{p}_v = {value_code}")
            value = f"{p}_v"
        else:
            value = repr(const)
        lines.append(indent + f"if {value} != {sig}._value:")
        lines.append(indent + f"    {sig}._value = {value}")
        lines.append(indent + f"    s._events |= {sig}._ev_mask")

    def _emit_dispatch(self, indent: str, rename, lines: List[str], p: str) -> None:
        # Bounded like the interpreter's dispatch (a Redispatch cycle must
        # fail loudly, not hang the generated loop); the for/else raises
        # only when 64 iterations never reached a break.
        lines.append(indent + f"for {p}_i in range(64):")
        inner = indent + "    "
        for index, name in enumerate(self._state_names):
            lines.append(inner + f"if {p}_st == {index}:")
            body = self.spec.states[name]
            if body:
                self._emit_ops(body, inner + "    ", rename, lines, p)
            else:
                lines.append(inner + "    pass")
            lines.append(inner + "    break")
        lines.append(inner + "break")
        lines.append(indent + "else:")
        lines.append(
            indent
            + f"    raise {p}_FERR({self.spec.name!r} + ': dispatch did not terminate')"
        )

    def _rename_map(self, p: str) -> Dict[str, str]:
        mapping = {"m": f"{p}_m", "CYCLE": "cyc"}
        for name in self.spec.signals:
            mapping[name] = f"{p}_{name}"
        for name in self.spec.groups:
            mapping[name] = f"{p}_g_{name}"
        for name in self.spec.helpers:
            mapping[name] = f"{p}_h_{name}"
        for name, value in self._consts.items():
            mapping[name] = repr(value)
        for name in self.spec.temps:
            mapping[name] = f"{p}_t_{name}"
        return mapping

    def emit_compiled_clocked(self, prefix: str) -> dict:
        """Lowering hook for :class:`repro.rtl.compile.CompiledSimulator`.

        Returns ``entry`` lines (hoist bindings + the state register into
        function locals, once per generated call), per-cycle ``body`` lines
        (the machine inlined; sets ``<prefix>_act``), ``exit`` lines (write
        the state name back to the owner), and the ``namespace`` the
        generated module needs.  The body is emitted at zero indentation;
        the kernel indents it under its run-gate.
        """
        if self.spec.kind != "clocked":
            raise FsmError(f"FSM {self.spec.name!r} is not a clocked machine")
        p = prefix
        rename = self._renamer(self._rename_map(p))
        namespace: Dict[str, object] = {
            f"{p}_M": self.owner,
            f"{p}_SN": self._state_names,
            f"{p}_SI": self._state_index,
            f"{p}_SZ": schedule_zero,
            f"{p}_TICK": self.tick,
            f"{p}_FERR": FsmError,
        }
        entry = [f"{p}_m = {p}_M"]
        for name, sig in self._signals.items():
            namespace[f"{p}_SIG_{name}"] = sig
            entry.append(f"{p}_{name} = {p}_SIG_{name}")
        for name, group in self._groups.items():
            namespace[f"{p}_GRP_{name}"] = group
            entry.append(f"{p}_g_{name} = {p}_GRP_{name}")
            for index, sig in enumerate(group):
                namespace[f"{p}_GM_{name}_{index}"] = sig
        for name, helper in self._helpers.items():
            namespace[f"{p}_HLP_{name}"] = helper
            entry.append(f"{p}_h_{name} = {p}_HLP_{name}")
        entry.append(f"{p}_st = {p}_SI[{p}_m.{self.spec.state_attr}]")
        body: List[str] = [f"{p}_act = False"]
        self._emit_ops(self.spec.entry, "", rename, body, p)
        exit_ = [f"{p}_M.{self.spec.state_attr} = {p}_SN[{p}_st]"]
        return {
            "entry": entry,
            "body": body,
            "exit": exit_,
            "namespace": namespace,
            "act": f"{p}_act",
            "label": self.profile_label,
            "fingerprint": self.spec.fingerprint(),
        }

    def emit_compiled_comb(self, prefix: str) -> dict:
        """Lowering hook for combinational machines (settle-sweep inline).

        The body references namespace globals directly (the sweep runs only
        on triggered cycles, in both ``step`` and ``settle_once``, so there
        is no shared entry hoist point).
        """
        if self.spec.kind != "comb":
            raise FsmError(f"FSM {self.spec.name!r} is not a comb machine")
        p = prefix
        mapping = {"m": f"{p}_m"}
        namespace: Dict[str, object] = {f"{p}_m": self.owner}
        for name, sig in self._signals.items():
            mapping[name] = f"{p}_{name}"
            namespace[f"{p}_{name}"] = sig
        for name, value in self._consts.items():
            mapping[name] = repr(value)
        for name in self.spec.temps:
            mapping[name] = f"{p}_t_{name}"
        rename = self._renamer(mapping)
        body: List[str] = []
        self._emit_ops(self.spec.entry, "", rename, body, p)
        return {
            "body": body,
            "namespace": namespace,
            "label": self.profile_label,
            "fingerprint": self.spec.fingerprint(),
        }


# ---------------------------------------------------------------------------
# the original two-signal state helper (kept verbatim for generated stubs)
# ---------------------------------------------------------------------------


class FSM:
    """A named-state machine backed by a pair of signals.

    This is the original minimal helper (state/next_state signal pair) used
    by tests and examples; the lowerable IR above is the machine *compiler*.

    Parameters
    ----------
    name:
        Prefix for the underlying signals.
    states:
        Ordered state names; the first is the reset state.
    """

    def __init__(self, name: str, states: Iterable[str]) -> None:
        self.name = name
        self.states: List[str] = list(states)
        if not self.states:
            raise ValueError("FSM requires at least one state")
        if len(set(self.states)) != len(self.states):
            raise ValueError(f"duplicate state names in FSM {name!r}")
        self._index: Dict[str, int] = {s: i for i, s in enumerate(self.states)}
        width = max(1, (len(self.states) - 1).bit_length())
        self.state_signal = Signal(f"{name}.state", width=width, reset=0)
        self.next_signal = Signal(f"{name}.next_state", width=width, reset=0)

    # -- queries ---------------------------------------------------------------

    @property
    def state(self) -> str:
        """Name of the current state."""
        return self.states[self.state_signal.value]

    def is_in(self, state: str) -> bool:
        """True when the FSM is currently in ``state``."""
        return self.state_signal.value == self.encode(state)

    def encode(self, state: str) -> int:
        """Return the numeric encoding of ``state``."""
        try:
            return self._index[state]
        except KeyError:
            raise KeyError(f"unknown state {state!r} for FSM {self.name!r}") from None

    # -- transitions --------------------------------------------------------

    def request(self, state: str) -> None:
        """Request a transition to ``state`` (takes effect on the next edge)."""
        self.next_signal.next = self.encode(state)
        self.state_signal.next = self.encode(state)

    def hold(self) -> None:
        """Explicitly remain in the current state (no-op, for readability)."""

    def signals(self) -> List[Signal]:
        """Signals that must be registered with the simulator."""
        return [self.state_signal, self.next_signal]
