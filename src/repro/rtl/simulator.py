"""Cycle-driven simulation engines: the event-driven kernel and its oracle.

(A third kernel, the levelized :class:`repro.rtl.compile.CompiledSimulator`,
shares this registration API and is proven cycle-exact against both kernels
here by ``tests/test_kernel_equivalence.py``.)

Two kernels live in this module:

* :class:`Simulator` — the **event-driven kernel** used everywhere by
  default.  Signals report changes into a per-simulator dirty set (see
  :meth:`repro.rtl.signal.Signal.bind`), combinational processes declare
  *sensitivity lists* (``add_comb(proc, sensitive_to=[...])``), and the
  settle phase only re-runs processes whose inputs changed.  When a cycle's
  clocked phase commits no differing value, settle is skipped entirely (the
  *fast path*), so an idle design costs only its clocked processes.
* :class:`ReferenceSimulator` — the original snapshot-based kernel kept
  verbatim as the differential-testing oracle.  Its settle phase re-runs
  *every* combinational process and compares full signal-vector snapshots
  until a pass changes nothing.  ``tests/test_kernel_equivalence.py`` proves
  the two kernels produce cycle-identical traces on all four buses.

Both kernels advance one clock cycle at a time:

1. **clocked phase** — every registered clocked process runs once, reading
   the *current* values of signals and scheduling updates via ``sig.next``.
2. **commit phase** — all pending ``next`` assignments are applied at once,
   which models all flip-flops updating on the same clock edge.  (The
   event-driven kernel only visits signals that actually scheduled a value.)
3. **combinational settle** — combinational processes run (driving values
   with :meth:`repro.rtl.signal.Signal.drive`) until no signal changes or
   the iteration limit is hit, which flags a combinational loop.

Sensitivity lists and the purity contract
-----------------------------------------

``add_comb(proc, sensitive_to=[sig, ...])`` declares that ``proc`` reads
only the listed signals; the event-driven kernel re-runs it exactly when one
of them changed.  Omitting ``sensitive_to`` falls back to *run always*
semantics for legacy callers: the process re-runs on every settle pass, like
the reference kernel — but settle itself is still skipped on cycles where no
signal changed at all.  Both modes therefore assume combinational processes
are **pure functions of signal values**: a process that reads non-signal
Python state mutated elsewhere may not be re-run when that state changes.
Every in-tree combinational process satisfies this contract.

When the fast path applies
--------------------------

``step()`` skips the settle phase for a cycle when the commit phase changed
no signal value and nothing was driven since the previous settle.  Because
combinational outputs are pure functions of signal values and were already
at a fixed point, re-running them could not change anything.  Designs that
spend most cycles idle (e.g. a bus master waiting on a peripheral) run at
clocked-process cost only; :class:`SimulatorStats` counts how often the fast
path fired.

This is the classical two-phase synchronous model used by cycle-based HDL
simulators; it is sufficient for every protocol in the paper because all
four target buses are single-clock synchronous interfaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.rtl.signal import Signal


class SimulationError(RuntimeError):
    """Raised for structural simulation problems (e.g. combinational loops)."""


#: Sentinel for "no fault scheduled" — one integer compare per cycle is the
#: whole cost of fault support on a clean design.  Matches the compiled
#: kernel's timed-wake sentinel (``repro.rtl.compile._NEVER``).
_NEVER = 1 << 62


Process = Callable[[], None]


@dataclass(frozen=True)
class WaitCondition:
    """A declarative wait target: ``signal <op> value``.

    Testbench code that previously polled a Python lambda every cycle
    (``run_until(lambda: txn.done)``) can instead wait on a *signal* — for
    example a bus master's completion-count signal — which every kernel can
    evaluate without calling back into Python.  The event and reference
    kernels check the condition in a tight per-cycle loop (cycle-exact with
    ``run_until``: the condition is evaluated before each step); the compiled
    kernel lowers the check into its generated fused step loop, so a whole
    wait executes as one native-speed call.

    ``op`` is ``"=="`` (the default, wrap-safe for counters that increment by
    one per event) or ``">="`` (monotonic thresholds).  ``value`` is compared
    against the signal's committed value, masked to the signal's width.
    """

    signal: Signal
    value: int
    op: str = "=="

    def __post_init__(self) -> None:
        if self.op not in ("==", ">="):
            raise ValueError(f"unsupported wait op {self.op!r} (use '==' or '>=')")
        object.__setattr__(self, "value", int(self.value) & self.signal._mask)

    def satisfied(self) -> bool:
        """Whether the condition currently holds."""
        if self.op == "==":
            return self.signal._value == self.value
        return self.signal._value >= self.value


@dataclass
class SimulatorStats:
    """Counters describing how much work the kernel performed.

    ``fast_path_cycles`` counts cycles on which the settle phase was skipped
    because no signal changed during the commit phase.  The reference kernel
    never takes the fast path, so comparing the two objects for the same
    stimulus shows what the event-driven scheduler saved.

    ``leaped_cycles`` counts cycles the compiled kernel's cycle-leaping mode
    skipped outright (every machine parked, no events pending, monitors
    quiet): they are included in ``cycles`` but no per-cycle code ran for
    them.  Scan kernels execute every cycle, so the counter stays 0 there;
    ``executed_cycles`` is always ``cycles - leaped_cycles``.
    """

    cycles: int = 0
    settle_calls: int = 0
    settle_iterations: int = 0
    comb_activations: int = 0
    clocked_activations: int = 0
    fast_path_cycles: int = 0
    leaped_cycles: int = 0

    @property
    def executed_cycles(self) -> int:
        """Cycles on which per-cycle code actually ran (total minus leaped)."""
        return self.cycles - self.leaped_cycles

    def reset(self) -> None:
        """Zero every counter (done automatically by ``Simulator.reset``)."""
        self.cycles = 0
        self.settle_calls = 0
        self.settle_iterations = 0
        self.comb_activations = 0
        self.clocked_activations = 0
        self.fast_path_cycles = 0
        self.leaped_cycles = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "cycles": self.cycles,
            "settle_calls": self.settle_calls,
            "settle_iterations": self.settle_iterations,
            "comb_activations": self.comb_activations,
            "clocked_activations": self.clocked_activations,
            "fast_path_cycles": self.fast_path_cycles,
            "leaped_cycles": self.leaped_cycles,
            "executed_cycles": self.executed_cycles,
        }

    def report(self) -> str:
        """Render the counters as an aligned, human-readable block."""
        rows = self.as_dict()
        width = max(len(k) for k in rows)
        return "\n".join(f"{name:<{width}}  {value}" for name, value in rows.items())


class Simulator:
    """Event-driven, synchronous, single-clock cycle-based simulator.

    Parameters
    ----------
    max_settle_iterations:
        Upper bound on combinational settle passes per cycle before a
        combinational loop is reported.
    """

    #: Whether this kernel honours :meth:`wake_after` (timed wakes).  Scan
    #: kernels run every clocked process on every cycle, so a countdown
    #: process gains nothing from announcing its wake time; processes check
    #: this flag to skip the bookkeeping entirely.
    timed_wakes = False

    def __init__(self, max_settle_iterations: int = 64) -> None:
        self._signals: List[Signal] = []
        self._clocked: List[Process] = []
        self._comb: List[Process] = []
        self._always_comb: List[Process] = []
        self._sensitive: Dict[Signal, List[Process]] = {}
        self._monitors: List[Process] = []
        self._dirty: Set[Signal] = set()
        self._scheduled: Set[Signal] = set()
        self.max_settle_iterations = max_settle_iterations
        self.cycle = 0
        self.stats = SimulatorStats()
        # Registration-order index per comb process: lets settle sort a
        # triggered subset instead of filtering the full process list.
        self._comb_index: Dict[Process, int] = {}
        # Full declarations, kept for the compiled kernel (and introspection):
        # (process, sensitivity, drives) per comb process and
        # (process, sensitivity) per clocked process.  The event/reference
        # kernels ignore ``drives`` and clocked sensitivity entirely.
        self._comb_decls: List[tuple] = []
        self._clocked_decls: List[tuple] = []
        # Fault injection (see repro.faults): an attached controller and the
        # next absolute cycle carrying a scheduled fault.
        self._faults = None
        self._next_fault = _NEVER

    # -- registration ------------------------------------------------------

    def add_signal(self, signal: Signal) -> Signal:
        """Track ``signal`` so commits and resets include it.

        Registration binds the signal's event observer to this simulator and
        marks it dirty, so the first settle pass sees every signal as a
        potential input change (mirroring the reference kernel, which always
        runs every combinational process on the first cycle).
        """
        self._signals.append(signal)
        signal.bind(self)
        self._dirty.add(signal)
        if signal._next is not None:
            # A next value scheduled before registration (observer not yet
            # bound) must still be committed on the next cycle.
            self._scheduled.add(signal)
        return signal

    def add_signals(self, signals: Iterable[Signal]) -> None:
        for sig in signals:
            self.add_signal(sig)

    def signal(self, name: str, width: int = 1, reset: int = 0) -> Signal:
        """Create and register a new signal."""
        return self.add_signal(Signal(name, width=width, reset=reset))

    def add_clocked(
        self, process: Process, sensitive_to: Optional[Sequence[Signal]] = None
    ) -> Process:
        """Register a process executed once per rising clock edge.

        ``sensitive_to`` optionally declares the complete set of signals the
        process reads.  This kernel (and the reference kernel) runs every
        clocked process on every cycle regardless; the declaration is the
        opt-in for the compiled kernel's wait-state elision (see
        :class:`repro.rtl.compile.CompiledSimulator`), under which the
        process must return a truthy value from any invocation after which
        re-running it with unchanged declared inputs would *not* be a no-op.
        """
        self._clocked.append(process)
        self._clocked_decls.append(
            (process, tuple(sensitive_to) if sensitive_to is not None else None)
        )
        return process

    def add_comb(
        self,
        process: Process,
        sensitive_to: Optional[Sequence[Signal]] = None,
        drives: Optional[Sequence[Signal]] = None,
    ) -> Process:
        """Register a combinational process run during the settle phase.

        ``sensitive_to`` lists the signals the process reads; the settle
        phase re-runs it only when one of them changed.  When omitted, the
        process falls back to *run always* semantics (re-run on every settle
        pass), which is correct for any pure process at the cost of extra
        activations.  ``drives`` lists the signals the process may drive;
        this kernel ignores it, but the compiled kernel requires it to
        levelize the combinational network at compile time.
        """
        self._comb_index.setdefault(process, len(self._comb))
        self._comb.append(process)
        self._comb_decls.append(
            (
                process,
                tuple(sensitive_to) if sensitive_to is not None else None,
                tuple(drives) if drives is not None else None,
            )
        )
        if sensitive_to is None:
            self._always_comb.append(process)
        else:
            for sig in sensitive_to:
                self._sensitive.setdefault(sig, []).append(process)
        return process

    def add_monitor(self, process: Process) -> Process:
        """Register a monitor run after every cycle (never drives signals)."""
        self._monitors.append(process)
        return process

    def wake_after(self, process: Process, cycles: int) -> None:
        """Request a timed wake for an elidable clocked process (no-op here).

        A gated process sitting in a *pure countdown* — a state whose next
        ``cycles - 1`` re-runs would provably do nothing but decrement a
        counter, regardless of input changes — may call this and then report
        quiescence.  Kernels with ``timed_wakes`` (the compiled kernel) skip
        the process until the target cycle or an earlier declared-input
        change; this kernel runs every clocked process every cycle anyway, so
        the request is discarded.  Processes must derive their countdown from
        the simulator cycle (not from run counts), so being run *more* often
        than requested is always safe.

        ``cycles`` is clamped to at least 1 on every kernel: a zero (or
        negative) request means "wake on the *next* cycle", never "re-run
        within the current cycle".  A zero-cycle target would name the cycle
        currently executing, which the wake queue may already have drained —
        the request could be missed or double-delivered depending on where
        the pop runs inside the fused loop, so it is defined away.
        """

    @property
    def signals(self) -> List[Signal]:
        """The registered signals, in registration order."""
        return list(self._signals)

    def register_module(self, module) -> None:
        """Register a :class:`repro.rtl.module.Module` and its children."""
        module.attach(self)

    # -- signal event hooks (called by bound Signals) ----------------------

    def _signal_scheduled(self, signal: Signal) -> None:
        self._scheduled.add(signal)

    def _signal_changed(self, signal: Signal) -> None:
        self._dirty.add(signal)

    # -- fault injection -----------------------------------------------------

    def inject_faults(self, controller) -> None:
        """Attach a :class:`repro.faults.inject.FaultController` (or detach
        with ``None``).  The controller is rebased to the current cycle, so
        its relative fault cycles count from the moment of attachment; run
        harnesses (e.g. ``SpliceInterpolator.run_scenario``) rebase again at
        each scenario start.
        """
        self._faults = controller
        if controller is None:
            self._next_fault = _NEVER
        else:
            controller.rebase(self, self.cycle)

    def _fire_faults(self) -> None:
        """Apply the fault ops due at the current cycle (post-settle).

        After the overrides land, every signal is marked dirty so the *next*
        cycle's settle re-runs the whole combinational network: a forced
        value on a comb-driven wire reverts after exactly one cycle, which
        is also what the reference kernel (settle-everything-every-cycle)
        does — the differential contract under injection depends on it.
        """
        self._faults.fire(self)
        self._dirty.update(self._signals)

    # -- execution -----------------------------------------------------------

    def reset(self) -> None:
        """Reset all registered signals, the cycle counter, and the stats.

        Reset→settle contract: after every signal returns to its reset value
        (clearing any pending ``next``), one settle phase re-derives all
        combinational outputs *before* ``reset()`` returns, so monitors and
        trace recorders observe a fully consistent design on the first
        ``step()`` after reset.  Monitors are **not** invoked during reset —
        traces begin with the first post-reset cycle.  When no combinational
        processes exist the settle is a no-op and the reset values stand as
        committed; this is safe because with no processes there is nothing
        whose outputs could be stale.  ``SimulatorStats`` is cleared last, so
        the reset-time settle is not counted against the run.
        """
        for sig in self._signals:
            sig.reset()
        self._scheduled.clear()
        self._dirty.clear()
        self._dirty.update(self._signals)
        self.settle()
        self.cycle = 0
        if self._faults is not None:
            self._faults.rebase(self, 0)
        self.stats.reset()

    def settle(self) -> int:
        """Run triggered combinational processes until signals stop changing.

        Returns the number of settle passes used (0 when nothing was dirty).
        """
        dirty = self._dirty
        if not dirty:
            return 0
        comb = self._comb
        if not comb:
            dirty.clear()
            return 0
        stats = self.stats
        stats.settle_calls += 1
        sensitive = self._sensitive
        always = self._always_comb
        comb_index = self._comb_index
        iterations = 0
        while dirty:
            if iterations >= self.max_settle_iterations:
                raise SimulationError(
                    "combinational logic failed to settle within "
                    f"{self.max_settle_iterations} iterations (possible combinational loop)"
                )
            iterations += 1
            triggered = set(always)
            for sig in dirty:
                procs = sensitive.get(sig)
                if procs:
                    triggered.update(procs)
            dirty.clear()
            if not triggered:
                break
            if len(triggered) == len(comb):
                to_run: Sequence[Process] = comb
            else:
                # Preserve registration order for the triggered subset by
                # sorting it on the precomputed registration index —
                # O(t log t) in the triggered count rather than a filter
                # over every registered process.
                to_run = sorted(triggered, key=comb_index.__getitem__)
            for proc in to_run:
                proc()
            stats.comb_activations += len(to_run)
        stats.settle_iterations += iterations
        return iterations

    def step(self, cycles: int = 1) -> None:
        """Advance the simulation ``cycles`` clock cycles.

        Cycles on which the commit phase changes no signal value skip the
        settle phase entirely (counted in ``stats.fast_path_cycles``).
        """
        clocked = self._clocked
        scheduled = self._scheduled
        dirty = self._dirty
        stats = self.stats
        for _ in range(cycles):
            for proc in clocked:
                proc()
            stats.clocked_activations += len(clocked)
            if scheduled:
                # Snapshot before committing: a pulsed signal's commit
                # re-schedules its auto-clear into the live set.
                pending = list(scheduled)
                scheduled.clear()
                for sig in pending:
                    sig.commit()
            if dirty:
                self.settle()
            else:
                stats.fast_path_cycles += 1
            if self._next_fault <= self.cycle:
                self._fire_faults()
            self.cycle += 1
            stats.cycles += 1
            for mon in self._monitors:
                mon()

    def run_until(self, condition: Callable[[], bool], timeout: int = 100_000) -> int:
        """Step until ``condition()`` is true; return the number of cycles taken.

        The condition is evaluated *before* each step: a condition that is
        already true when ``run_until`` is called returns 0 without stepping,
        even with ``timeout=0``.  A false condition with ``timeout=0`` raises
        immediately.  Raises :class:`SimulationError` when ``timeout`` cycles
        elapse with the condition still false.
        """
        start = self.cycle
        while not condition():
            if self.cycle - start >= timeout:
                raise SimulationError(
                    f"run_until timed out after {timeout} cycles (started at {start})"
                )
            self.step()
        return self.cycle - start

    def wait_until(self, condition: WaitCondition, timeout: int = 100_000) -> int:
        """Step until the declarative ``condition`` holds; return cycles taken.

        Semantically identical to ``run_until`` with an equivalent lambda —
        the condition is evaluated before each step, an already-true condition
        returns 0, and ``timeout`` elapsed cycles raise
        :class:`SimulationError` — but expressed on a signal so kernels can
        evaluate it without a per-cycle Python callback.  This kernel checks
        the signal slot directly in a tight loop; the compiled kernel
        overrides this with a wait lowered into its generated step loop.
        """
        sig = condition.signal
        target = condition.value
        start = self.cycle
        step = self.step
        if condition.op == "==":
            while sig._value != target:
                if self.cycle - start >= timeout:
                    raise SimulationError(
                        f"run_until timed out after {timeout} cycles (started at {start})"
                    )
                step()
        else:
            while sig._value < target:
                if self.cycle - start >= timeout:
                    raise SimulationError(
                        f"run_until timed out after {timeout} cycles (started at {start})"
                    )
                step()
        return self.cycle - start


class ReferenceSimulator(Simulator):
    """The original snapshot-based kernel, kept as the equivalence oracle.

    Every settle pass runs *every* combinational process and detects change
    by snapshotting the full signal vector before and after each process —
    O(signals × processes) per pass.  ``step()`` always settles, never taking
    the fast path.  The settle/step algorithms are the seed implementation,
    so the differential harness can prove the event-driven *scheduler*
    (sensitivity lists, dirty tracking, fast path) cycle-exact against them.
    Note the :class:`~repro.rtl.signal.Signal` layer itself is shared by both
    kernels — defects there are oracle-blind and are covered instead by the
    signal unit tests in ``tests/test_rtl.py``.
    """

    # Dirty/scheduled bookkeeping is unused by this kernel; keep the signal
    # hooks as no-ops so its per-cycle cost matches the seed implementation.
    def _signal_scheduled(self, signal: Signal) -> None:
        pass

    def _signal_changed(self, signal: Signal) -> None:
        pass

    def settle(self) -> int:
        self._dirty.clear()
        if not self._comb:
            return 0
        stats = self.stats
        stats.settle_calls += 1
        for iteration in range(1, self.max_settle_iterations + 1):
            changed = False
            for proc in self._comb:
                before = _snapshot(self._signals)
                proc()
                stats.comb_activations += 1
                if _snapshot(self._signals) != before:
                    changed = True
            if not changed:
                stats.settle_iterations += iteration
                return iteration
        raise SimulationError(
            "combinational logic failed to settle within "
            f"{self.max_settle_iterations} iterations (possible combinational loop)"
        )

    def step(self, cycles: int = 1) -> None:
        stats = self.stats
        for _ in range(cycles):
            for proc in self._clocked:
                proc()
            stats.clocked_activations += len(self._clocked)
            for sig in self._signals:
                sig.commit()
            self._scheduled.clear()
            self.settle()
            if self._next_fault <= self.cycle:
                self._fire_faults()
            self.cycle += 1
            stats.cycles += 1
            for mon in self._monitors:
                mon()


def _snapshot(signals: List[Signal]) -> tuple:
    return tuple(sig.value for sig in signals)
