"""Cycle-driven simulation engine.

The simulator advances one clock cycle at a time:

1. **clocked phase** — every registered clocked process runs once, reading
   the *current* values of signals and scheduling updates via ``sig.next``.
2. **commit phase** — all pending ``next`` assignments are applied at once,
   which models all flip-flops updating on the same clock edge.
3. **combinational settle** — combinational processes run repeatedly (driving
   values with :meth:`repro.rtl.signal.Signal.drive`) until no signal changes
   or the iteration limit is hit, which flags a combinational loop.

This is the classical two-phase synchronous model used by cycle-based HDL
simulators; it is sufficient for every protocol in the paper because all four
target buses are single-clock synchronous interfaces.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.rtl.signal import Signal


class SimulationError(RuntimeError):
    """Raised for structural simulation problems (e.g. combinational loops)."""


Process = Callable[[], None]


class Simulator:
    """Synchronous, single-clock cycle-based simulator.

    Parameters
    ----------
    max_settle_iterations:
        Upper bound on combinational settle passes per cycle before a
        combinational loop is reported.
    """

    def __init__(self, max_settle_iterations: int = 64) -> None:
        self._signals: List[Signal] = []
        self._clocked: List[Process] = []
        self._comb: List[Process] = []
        self._monitors: List[Process] = []
        self.max_settle_iterations = max_settle_iterations
        self.cycle = 0

    # -- registration ------------------------------------------------------

    def add_signal(self, signal: Signal) -> Signal:
        """Track ``signal`` so commits and resets include it."""
        self._signals.append(signal)
        return signal

    def add_signals(self, signals: Iterable[Signal]) -> None:
        for sig in signals:
            self.add_signal(sig)

    def signal(self, name: str, width: int = 1, reset: int = 0) -> Signal:
        """Create and register a new signal."""
        return self.add_signal(Signal(name, width=width, reset=reset))

    def add_clocked(self, process: Process) -> Process:
        """Register a process executed once per rising clock edge."""
        self._clocked.append(process)
        return process

    def add_comb(self, process: Process) -> Process:
        """Register a combinational process run during the settle phase."""
        self._comb.append(process)
        return process

    def add_monitor(self, process: Process) -> Process:
        """Register a monitor run after every cycle (never drives signals)."""
        self._monitors.append(process)
        return process

    def register_module(self, module) -> None:
        """Register a :class:`repro.rtl.module.Module` and its children."""
        module.attach(self)

    # -- execution -----------------------------------------------------------

    def reset(self) -> None:
        """Reset every registered signal and the cycle counter."""
        for sig in self._signals:
            sig.reset()
        self.cycle = 0
        self.settle()

    def settle(self) -> int:
        """Run combinational processes until signals stop changing.

        Returns the number of settle iterations used.
        """
        if not self._comb:
            return 0
        for iteration in range(1, self.max_settle_iterations + 1):
            changed = False
            for proc in self._comb:
                before = _snapshot(self._signals)
                proc()
                if _snapshot(self._signals) != before:
                    changed = True
            if not changed:
                return iteration
        raise SimulationError(
            "combinational logic failed to settle within "
            f"{self.max_settle_iterations} iterations (possible combinational loop)"
        )

    def step(self, cycles: int = 1) -> None:
        """Advance the simulation ``cycles`` clock cycles."""
        for _ in range(cycles):
            for proc in self._clocked:
                proc()
            for sig in self._signals:
                sig.commit()
            self.settle()
            self.cycle += 1
            for mon in self._monitors:
                mon()

    def run_until(self, condition: Callable[[], bool], timeout: int = 100_000) -> int:
        """Step until ``condition()`` is true; return the number of cycles taken.

        Raises :class:`SimulationError` when ``timeout`` cycles elapse first.
        """
        start = self.cycle
        while not condition():
            if self.cycle - start >= timeout:
                raise SimulationError(
                    f"run_until timed out after {timeout} cycles (started at {start})"
                )
            self.step()
        return self.cycle - start


def _snapshot(signals: List[Signal]) -> tuple:
    return tuple(sig.value for sig in signals)
