"""Cycle-accurate RTL simulation kernel.

This package is the hardware substrate of the reproduction: every piece of
"generated hardware" (bus adapters, arbitration units, user-logic stubs) and
every hand-coded baseline peripheral is expressed as a :class:`Module` built
from :class:`Signal` objects and simulated by :class:`Simulator`.

Two kernels are provided: the default event-driven :class:`Simulator`
(sensitivity-list scheduling, dirty-signal tracking, and a settle-skipping
fast path) and the snapshot-based :class:`ReferenceSimulator` kept as the
differential-testing oracle.  Both are synchronous: a single global clock,
two-phase (read current values / commit next values) clocked processes, and a
settling loop for combinational processes.  That matches the hardware the
paper describes — all four target buses (PLB, OPB, FCB, APB) are synchronous
interfaces clocked from a single bus clock.
"""

from functools import partial

from repro.rtl.signal import Signal, mask_for_width, truncate
from repro.rtl.simulator import (
    ReferenceSimulator,
    SimulationError,
    Simulator,
    SimulatorStats,
    WaitCondition,
)
from repro.rtl.compile import (
    PROGRAM_CACHE_ENV,
    CompiledDesign,
    CompiledProgramCache,
    CompiledSimulator,
)
from repro.rtl.module import Module
from repro.rtl.fsm import (
    FSM,
    BoundFsm,
    FsmError,
    FsmSpec,
    current_backend,
    detect_drive_conflicts,
    fsm_ir_fingerprint,
    use_backend,
)
from repro.rtl.trace import Trace, TraceRecorder

#: Kernel name -> simulator factory, as exposed by ``--kernel`` everywhere.
KERNELS = {
    "event": Simulator,
    "reference": ReferenceSimulator,
    "compiled": CompiledSimulator,
}

#: The kernel used when nothing is specified.
DEFAULT_KERNEL = "event"


def kernel_factory(name: str, leap: bool = True):
    """Resolve a kernel name to its simulator factory.

    ``leap=False`` disables the compiled kernel's cycle-leaping fast path
    (the ``--no-leap`` debugging aid): idle spans are then executed cycle by
    cycle exactly as before the leap optimisation.  The flag has no effect
    on the scan kernels, which execute every cycle regardless.
    """
    try:
        factory = KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown simulation kernel {name!r} (known: {sorted(KERNELS)})"
        ) from None
    if not leap and name == "compiled":
        return partial(factory, leap=False)
    return factory


__all__ = [
    "Signal",
    "Simulator",
    "WaitCondition",
    "CompiledProgramCache",
    "PROGRAM_CACHE_ENV",
    "ReferenceSimulator",
    "CompiledSimulator",
    "CompiledDesign",
    "SimulatorStats",
    "SimulationError",
    "Module",
    "FSM",
    "BoundFsm",
    "FsmError",
    "FsmSpec",
    "current_backend",
    "detect_drive_conflicts",
    "fsm_ir_fingerprint",
    "use_backend",
    "Trace",
    "TraceRecorder",
    "KERNELS",
    "DEFAULT_KERNEL",
    "kernel_factory",
    "mask_for_width",
    "truncate",
]
