"""Hardware signals for the RTL simulation kernel.

A :class:`Signal` models a fixed-width wire or register.  Clocked processes
read ``sig.value`` and schedule updates with ``sig.next = x`` (applied when
the simulator commits the cycle); combinational processes drive values
immediately with :meth:`Signal.drive`.

Signals participate in the event-driven scheduler through an *observer*
backref (:meth:`Signal.bind`): scheduling a next value reports the signal to
the simulator's pending-commit set, and any committed or driven value change
reports it to the simulator's dirty set, so the settle phase only re-runs
combinational processes whose inputs actually changed.

The compiled kernel (:class:`repro.rtl.compile.CompiledSimulator`) adds a
*fast, non-observer commit path*: at compile time it stores a per-signal
event bitmask in :attr:`Signal._ev_mask` (one bit per combinational process
sensitive to the signal plus one bit per elidable clocked process reading
it), and its generated ``step`` loop commits scheduled values by touching
``_value``/``_next`` directly and OR-ing ``_ev_mask`` into the kernel's
dirty word — no observer dispatch per signal.  :meth:`Signal.drive` still
notifies the observer on change, which is how settle-phase updates feed the
same bitmask.
"""

from __future__ import annotations

from typing import Optional


def schedule_zero(signals) -> None:
    """Schedule 0 on every signal in ``signals`` (bulk ``schedule(0)``).

    Semantically identical to calling ``sig.schedule(0)`` on each, with the
    per-signal method dispatch flattened into one loop — bus masters clear
    their whole request group once per beat, which made the six individual
    calls measurable on every kernel.  Lives here so knowledge of the
    pending-slot/observer/pulse protocol stays in the signal layer.
    """
    for sig in signals:
        if sig._next is None:
            if sig._value:
                sig._next = 0
                observer = sig._observer
                if observer is not None:
                    observer._signal_scheduled(sig)
        else:
            sig._next = 0
            sig._auto = False


def mask_for_width(width: int) -> int:
    """Return the bit mask covering ``width`` bits (``width >= 1``)."""
    if width < 1:
        raise ValueError(f"signal width must be >= 1, got {width}")
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Truncate ``value`` to ``width`` bits (two's-complement wrap for negatives)."""
    return value & mask_for_width(width)


class Signal:
    """A fixed-width hardware signal with two-phase update semantics.

    Parameters
    ----------
    name:
        Human-readable name used in traces and error messages.
    width:
        Bit width; values are stored as non-negative integers masked to this
        width.
    reset:
        Value the signal takes on reset and at construction.
    """

    __slots__ = (
        "name",
        "width",
        "reset_value",
        "_value",
        "_next",
        "_mask",
        "_observer",
        "_ev_mask",
        "_auto",
    )

    def __init__(self, name: str, width: int = 1, reset: int = 0) -> None:
        self.name = name
        self.width = width
        self._mask = mask_for_width(width)
        self.reset_value = reset & self._mask
        self._value = self.reset_value
        self._next: Optional[int] = None
        self._observer = None
        # Event bitmask assigned by the compiled kernel at elaboration freeze:
        # which compiled processes a change to this signal must trigger/wake.
        self._ev_mask = 0
        # Pulse flag: when set, the next commit automatically schedules the
        # signal back to 0 (see :meth:`pulse`), so one-cycle strobes need no
        # process invocation on the following cycle just to deassert.
        self._auto = False

    # -- event reporting ---------------------------------------------------

    def bind(self, observer) -> None:
        """Attach the simulator observing this signal's update events.

        ``observer`` must provide ``_signal_scheduled(sig)`` (a next value was
        scheduled) and ``_signal_changed(sig)`` (the committed value changed).
        A signal reports to at most one simulator; rebinding replaces the
        previous observer.
        """
        self._observer = observer

    # -- value access -----------------------------------------------------

    @property
    def value(self) -> int:
        """Current (committed) value of the signal."""
        return self._value

    @property
    def next(self) -> int:
        """The pending next-cycle value (falls back to the current value)."""
        return self._value if self._next is None else self._next

    @next.setter
    def next(self, value: int) -> None:
        self.schedule(value)

    def schedule(self, value: int) -> bool:
        """Schedule ``value`` iff doing so has any effect; return whether it did.

        Scheduling the current value with nothing pending is a no-op under
        two-phase semantics — committing it could never change the signal —
        and returns ``False``; skipping it keeps idle designs off the commit
        path.  The report makes this the canonical idiom for FSM processes
        that re-assert outputs every cycle and participate in the compiled
        kernel's wait-state elision: ``active |= sig.schedule(v)`` both keeps
        the two-phase semantics and feeds the activity flag the elision
        contract requires.  The ``next`` setter is sugar for this method.
        """
        if type(value) is not int:
            value = int(value)
        value &= self._mask
        self._auto = False  # a plain schedule overrides a pending pulse clear
        if self._next is None:
            if value == self._value:
                return False
            self._next = value
            if self._observer is not None:
                self._observer._signal_scheduled(self)
            return True
        self._next = value
        return True

    def pulse(self, value: int = 1) -> bool:
        """Assert ``value`` for exactly one cycle, auto-clearing to 0.

        The committed waveform is identical to ``sig.next = value`` this
        cycle followed by ``sig.next = 0`` from a process on the next cycle —
        but the deassert is performed by the *kernel* during the commit
        phase, so a strobing FSM does not need to run (or be woken) on the
        following cycle purely to drop its strobe.  That is what lets
        request/acknowledge state machines report quiescence immediately
        after strobing and stay parked under the compiled kernel's
        wait-state elision.  Returns whether anything was scheduled.

        A subsequent :meth:`schedule` (or another :meth:`pulse`) in the same
        or next cycle overrides the pending auto-clear, so back-to-back
        strobes compose naturally.
        """
        if type(value) is not int:
            value = int(value)
        value &= self._mask
        had_pending = self._next is not None
        if not had_pending and value == self._value:
            if value == 0:
                return False  # pulsing 0 onto a low strobe: nothing to do
            # Value already high with nothing pending: schedule a no-change
            # commit so the kernel still visits the signal and arms the
            # auto-clear for the following cycle.
            self._next = value
            self._auto = True
            if self._observer is not None:
                self._observer._signal_scheduled(self)
            return True
        self._next = value
        self._auto = True
        if not had_pending and self._observer is not None:
            self._observer._signal_scheduled(self)
        return True

    def drive(self, value: int) -> bool:
        """Immediately drive ``value`` (combinational assignment).

        Returns ``True`` when the driven value differs from the previous
        value, which the simulator uses to detect combinational settling.
        """
        if type(value) is not int:
            value = int(value)
        value &= self._mask
        changed = value != self._value
        self._value = value
        if changed and self._observer is not None:
            self._observer._signal_changed(self)
        return changed

    # -- lifecycle ---------------------------------------------------------

    def commit(self) -> bool:
        """Apply the pending next value; return whether the value changed.

        A pending :meth:`pulse` re-schedules 0 for the following cycle
        (reporting the new pending value to the observer), which is how the
        auto-clear propagates on the scan kernels; the compiled kernel's
        generated commit loop performs the equivalent inline.
        """
        if self._next is None:
            return False
        changed = self._next != self._value
        self._value = self._next
        if self._auto:
            self._auto = False
            self._next = 0
            if self._observer is not None:
                self._observer._signal_scheduled(self)
        else:
            self._next = None
        if changed and self._observer is not None:
            self._observer._signal_changed(self)
        return changed

    def reset(self) -> None:
        """Return the signal to its reset value and clear pending updates."""
        changed = self._value != self.reset_value
        self._value = self.reset_value
        self._next = None
        self._auto = False
        if changed and self._observer is not None:
            self._observer._signal_changed(self)

    # -- conveniences -------------------------------------------------------

    def bit(self, index: int) -> int:
        """Return bit ``index`` (0 = LSB) of the current value."""
        if not 0 <= index < self.width:
            raise IndexError(f"bit {index} out of range for {self.width}-bit signal {self.name}")
        return (self._value >> index) & 1

    def bits(self, hi: int, lo: int) -> int:
        """Return the inclusive slice ``[hi:lo]`` of the current value."""
        if hi < lo:
            raise ValueError("bits() requires hi >= lo")
        return (self._value >> lo) & mask_for_width(hi - lo + 1)

    def is_set(self) -> bool:
        """True when the signal is non-zero (an active-high strobe)."""
        return self._value != 0

    def __bool__(self) -> bool:
        return self._value != 0

    def __int__(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, width={self.width}, value=0x{self._value:x})"
