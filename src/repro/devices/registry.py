"""Runner-builder registry: implementation labels → runnable systems.

The campaign subsystem ships grid cells to worker processes as plain data
(label strings, scenario descriptors, seeds, kernel names).  Simulators
themselves are not picklable, so each worker looks the label up here and
elaborates its own system on the requested simulation kernel.  The registry
is populated at import time with the five Chapter 9 implementations (plus
the OPB/APB retargets) and stays open for plugins: :func:`register_runner`
accepts any builder whose result exposes
``run_scenario(sets) -> {"result", "cycles", ...}``; builders that accept a
``simulator_factory`` keyword participate in kernel selection, zero-argument
builders are restricted to the default kernel.
"""

from __future__ import annotations

import functools
import inspect
from typing import Callable, Dict, List

from repro.devices.baselines import build_naive_plb_system, build_optimized_fcb_system
from repro.devices.interpolator import build_splice_interpolator
from repro.rtl import DEFAULT_KERNEL, kernel_factory

#: label -> zero-argument builder returning an object with ``run_scenario``.
_BUILDERS: Dict[str, Callable[[], object]] = {}


def register_runner(label: str, builder: Callable[[], object], *, replace: bool = False) -> None:
    """Register ``builder`` under ``label``.

    Builders must be importable module-level callables (or partials of them)
    so that worker processes can rebuild the runner from the label alone.
    Note that a registration made at runtime only reaches sharded-executor
    workers when processes are forked (Linux default); under the ``spawn``
    start method, perform the registration in a module the workers import.
    """
    if label in _BUILDERS and not replace:
        raise ValueError(f"runner label {label!r} is already registered")
    _BUILDERS[label] = builder


def known_labels() -> List[str]:
    """All registered implementation labels, sorted."""
    return sorted(_BUILDERS)


def _accepts_keyword(builder: Callable[..., object], name: str) -> bool:
    """Whether ``builder`` can be called with ``name=...``."""
    try:
        parameters = inspect.signature(builder).parameters.values()
    except (TypeError, ValueError):  # builtins / exotic callables
        return False
    return any(
        p.name == name or p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters
    )


def build_runner(
    label: str,
    kernel: str = DEFAULT_KERNEL,
    leap: bool = True,
    simulator_factory=None,
):
    """Elaborate a fresh system for ``label`` on ``kernel`` and return it.

    The returned object exposes ``run_scenario(sets)``; building is the
    expensive step (parsing the spec, elaborating RTL), so callers should
    build once per (label, kernel) and reuse the runner across scenarios.
    Campaign cells only consume the (result, cycles, transactions) outcome,
    so builders that understand ``record_transactions`` are asked not to
    retain per-transaction objects — a runner reused across thousands of
    cells must not grow memory per call.  ``leap=False`` disables the
    compiled kernel's cycle-leaping fast path (see
    :func:`repro.rtl.kernel_factory`).

    An explicit ``simulator_factory`` overrides name-based kernel selection
    entirely — this is how differential harnesses (the fuzz oracle, the
    mutation acceptance tests) run registry implementations on instrumented
    or deliberately broken kernels that have no registered name.
    """
    try:
        builder = _BUILDERS[label]
    except KeyError:
        raise KeyError(
            f"unknown implementation label {label!r} (known: {known_labels()})"
        ) from None
    if simulator_factory is not None and kernel != DEFAULT_KERNEL:
        raise ValueError("pass either kernel= or simulator_factory=, not both")
    kwargs = {}
    if _accepts_keyword(builder, "record_transactions"):
        kwargs["record_transactions"] = False
    if _accepts_keyword(builder, "simulator_factory"):
        factory = simulator_factory or kernel_factory(kernel, leap=leap)
        return builder(simulator_factory=factory, **kwargs)
    if kernel != DEFAULT_KERNEL or simulator_factory is not None:
        raise TypeError(
            f"builder for {label!r} does not accept simulator_factory; "
            f"it cannot honour a kernel selection"
        )
    return builder(**kwargs)


register_runner("simple_plb", build_naive_plb_system)
register_runner("optimized_fcb", build_optimized_fcb_system)
for _kind in ("splice_plb", "splice_plb_dma", "splice_fcb", "splice_opb", "splice_apb"):
    register_runner(_kind, functools.partial(build_splice_interpolator, _kind))
