"""Hand-coded baseline interfaces for the Chapter 9 comparison.

Section 9.2.1 describes two hand-coded interconnects for the linear
interpolator:

* **"Simple PLB"** — the designers' first attempt, written before they knew
  "all of the intricacies of the PLB"; it is representative of what an
  end-user unfamiliar with the protocol would create.  This reproduction
  models those inefficiencies explicitly: every word is decoded and stored
  over several wait-state cycles before it is acknowledged, each input set is
  preceded by a count header word, and the driver defensively polls a status
  register before collecting the result.
* **"Optimized FCB"** — a hand-tuned co-processor attachment that
  acknowledges every beat on the next cycle, consumes quad-word bursts, and
  returns the result without any polling.

Both devices run the identical calculation
(:func:`repro.devices.interpolator.interpolate_fixed_point`) with the same
fixed latency as the Splice-generated versions, so the measured differences
come purely from the interface logic — exactly the paper's methodology.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.buses.base import BusTransaction, TransactionKind, TransactionOp
from repro.buses.fcb import FCBMaster, FCBSlaveBundle
from repro.buses.plb import PLBMaster, PLBSlaveBundle
from repro.core.generation.ir import EntityIR, EntityKind, PortDirection
from repro.devices.interpolator import CALCULATION_LATENCY, interpolate_fixed_point
from repro.rtl.fsm import (
    Active,
    BoundFsm,
    Call,
    Exec,
    FsmSpec,
    Goto,
    If,
    Pulse,
    Schedule,
    StateDispatch,
    resolve_backend,
)
from repro.rtl.module import Module
from repro.rtl.simulator import Simulator
from repro.soc.cpu import ProcessorModel

#: Slot assignments used by both hand-coded designs.
SLOT_STATUS = 0
SLOT_SET1 = 1
SLOT_SET2 = 2
SLOT_SET3 = 3
SLOT_RESULT = 4

_BASE_ADDRESS = 0x80030000
_NUM_SLOTS = 8


def _complete_interpolation(device) -> None:
    """Finish a baseline's calculation: both hand-coded devices share the
    identical completion bookkeeping (shared by both FSM backends too)."""
    device.result = interpolate_fixed_point(
        device.sets[SLOT_SET1], device.sets[SLOT_SET2], device.sets[SLOT_SET3]
    )
    device.calc_done = True
    device._calculating = False
    device.activations += 1


class NaivePLBInterpolator(Module):
    """The naïve hand-coded PLB interpolator slave."""

    #: Wait-state cycles inserted between seeing a write and acknowledging it
    #: (decode, byte-enable check, store) — the hallmark of the first-attempt
    #: implementation.
    WRITE_WAIT_STATES = 4
    READ_WAIT_STATES = 3

    def __init__(
        self,
        name: str,
        plb: PLBSlaveBundle,
        calc_latency: int = CALCULATION_LATENCY,
        fsm_backend: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.plb = plb
        self.calc_latency = calc_latency
        self.sets: Dict[int, List[int]] = {SLOT_SET1: [], SLOT_SET2: [], SLOT_SET3: []}
        self.expected: Dict[int, int] = {SLOT_SET1: -1, SLOT_SET2: -1, SLOT_SET3: -1}
        self.result = 0
        self.calc_done = False
        self._calc_counter = 0
        self._calculating = False
        self._state = "idle"
        self._delay = 0
        self._pending_slot = 0
        self._pending_data = 0
        self.activations = 0
        sensitivity = [
            plb.rst, plb.wr_req, plb.wr_ce, plb.rd_req, plb.rd_ce, plb.data_to_slave,
        ]
        if resolve_backend(fsm_backend) == "ir":
            self.fsm = BoundFsm(
                self._fsm_spec(),
                self,
                signals={
                    "prst": plb.rst, "wr_req": plb.wr_req, "wr_ce": plb.wr_ce,
                    "rd_req": plb.rd_req, "rd_ce": plb.rd_ce,
                    "d2s": plb.data_to_slave, "dfs": plb.data_from_slave,
                    "wr_ack": plb.wr_ack, "rd_ack": plb.rd_ack,
                },
                helpers={
                    "h_reset_state": self._reset_state,
                    "h_finish_calc": self._finish_calc,
                    "h_store_word": self._store_word,
                    "h_clear_inputs": self._clear_inputs,
                },
                consts={
                    "WWAIT": self.WRITE_WAIT_STATES,
                    "RWAIT": self.READ_WAIT_STATES,
                    "STATUS": SLOT_STATUS,
                    "RESULT": SLOT_RESULT,
                },
            )
            self.clocked(self.fsm.tick, sensitive_to=sensitivity)
        else:
            self.clocked(self._tick, sensitive_to=sensitivity)

    @staticmethod
    @functools.lru_cache(maxsize=None)
    def _fsm_spec() -> FsmSpec:
        """The first-attempt hand-coded slave as FSM IR.

        The calculation countdown is an entry overlay (it runs regardless of
        the bus state, as in the hand-written tick); the decode wait states
        count down a cycle at a time — deliberately *not* a timed-wake park,
        because modelling the naïve design's always-busy decode FSM is the
        point of this baseline.
        """
        return FsmSpec(
            name="naive_plb_interp",
            entry=(
                If(
                    "prst._value",
                    (Call("h_reset_state"),),
                    orelse=(
                        If(
                            "m._calculating",
                            (
                                Exec("m._calc_counter += 1"),
                                If(
                                    "m._calc_counter >= m.calc_latency",
                                    (Call("h_finish_calc"),),
                                ),
                                Active("True"),
                            ),
                        ),
                        StateDispatch(),
                    ),
                ),
            ),
            states={
                "idle": (
                    If(
                        "wr_req._value and wr_ce._value",
                        (
                            Exec("m._pending_slot = wr_ce._value.bit_length() - 1"),
                            Exec("m._pending_data = d2s._value"),
                            Exec("m._delay = WWAIT"),
                            Goto("write_decode"),
                            Active("True"),
                        ),
                        orelse=(
                            If(
                                "rd_req._value and rd_ce._value",
                                (
                                    Exec("m._pending_slot = rd_ce._value.bit_length() - 1"),
                                    Exec("m._delay = RWAIT"),
                                    Goto("read_decode"),
                                    Active("True"),
                                ),
                            ),
                        ),
                    ),
                ),
                # Decode/wait states count down or respond every cycle
                # regardless of input changes, so they always report activity.
                "write_decode": (
                    If(
                        "m._delay > 0",
                        (Exec("m._delay -= 1"),),
                        orelse=(
                            Call("h_store_word", args="m._pending_slot, m._pending_data"),
                            Pulse("wr_ack"),
                            Goto("idle"),
                        ),
                    ),
                    Active("True"),
                ),
                "read_decode": (
                    If(
                        "m._delay > 0",
                        (Exec("m._delay -= 1"),),
                        orelse=(
                            If(
                                "m._pending_slot == STATUS",
                                (
                                    Schedule("dfs", "1 if m.calc_done else 0"),
                                    Pulse("rd_ack"),
                                    Goto("idle"),
                                ),
                                orelse=(
                                    If(
                                        "m._pending_slot == RESULT",
                                        (
                                            If(
                                                "m.calc_done",
                                                (
                                                    Schedule("dfs", "m.result & 0xFFFFFFFF"),
                                                    Pulse("rd_ack"),
                                                    Exec("m.calc_done = False"),
                                                    Call("h_clear_inputs"),
                                                    Goto("idle"),
                                                ),
                                                # otherwise: hold the bus
                                                # (pseudo-asynchronous wait).
                                            ),
                                        ),
                                        orelse=(
                                            Schedule("dfs", "0"),
                                            Pulse("rd_ack"),
                                            Goto("idle"),
                                        ),
                                    ),
                                ),
                            ),
                        ),
                    ),
                    Active("True"),
                ),
            },
            initial="idle",
            state_attr="_state",
            signals=(
                "prst", "wr_req", "wr_ce", "rd_req", "rd_ce", "d2s", "dfs",
                "wr_ack", "rd_ack",
            ),
            helpers=("h_reset_state", "h_finish_calc", "h_store_word", "h_clear_inputs"),
            consts=("WWAIT", "RWAIT", "STATUS", "RESULT"),
        )

    def _finish_calc(self) -> None:
        _complete_interpolation(self)

    def _tick(self) -> bool:
        plb = self.plb
        # ACK strobes are kernel-cleared pulses; no deassert pass needed.
        active = False

        if plb.rst.value:
            self._reset_state()
            return active

        if self._calculating:
            self._calc_counter += 1
            if self._calc_counter >= self.calc_latency:
                self._finish_calc()
            active = True

        if self._state == "idle":
            if plb.wr_req.value and plb.wr_ce.value:
                self._pending_slot = plb.selected_slot(write=True)
                self._pending_data = plb.data_to_slave.value
                self._state = "write_decode"
                self._delay = self.WRITE_WAIT_STATES
                return True
            if plb.rd_req.value and plb.rd_ce.value:
                self._pending_slot = plb.selected_slot(write=False)
                self._state = "read_decode"
                self._delay = self.READ_WAIT_STATES
                return True
            return active

        # Decode/wait states count down or respond every cycle regardless of
        # input changes, so they always report activity.
        if self._state == "write_decode":
            if self._delay > 0:
                self._delay -= 1
                return True
            self._store_word(self._pending_slot, self._pending_data)
            plb.wr_ack.pulse(1)
            self._state = "idle"
            return True

        if self._state == "read_decode":
            if self._delay > 0:
                self._delay -= 1
                return True
            if self._pending_slot == SLOT_STATUS:
                plb.data_from_slave.next = 1 if self.calc_done else 0
                plb.rd_ack.pulse(1)
                self._state = "idle"
            elif self._pending_slot == SLOT_RESULT:
                if self.calc_done:
                    plb.data_from_slave.next = self.result & 0xFFFFFFFF
                    plb.rd_ack.pulse(1)
                    self.calc_done = False
                    self._clear_inputs()
                    self._state = "idle"
                # otherwise: hold the bus (pseudo-asynchronous wait).
            else:
                plb.data_from_slave.next = 0
                plb.rd_ack.pulse(1)
                self._state = "idle"
            return True
        return active

    # -- helpers ---------------------------------------------------------------

    def _store_word(self, slot: int, word: int) -> None:
        if slot not in self.sets:
            return
        if self.expected[slot] < 0:
            self.expected[slot] = word  # count header
            self.sets[slot] = []
        else:
            self.sets[slot].append(word)
        if (
            slot == SLOT_SET3
            and self.expected[SLOT_SET3] >= 0
            and len(self.sets[SLOT_SET3]) >= self.expected[SLOT_SET3]
            and all(
                self.expected[s] >= 0 and len(self.sets[s]) >= self.expected[s]
                for s in (SLOT_SET1, SLOT_SET2, SLOT_SET3)
            )
        ):
            self._calculating = True
            self._calc_counter = 0
            self.calc_done = False

    def _clear_inputs(self) -> None:
        for slot in self.sets:
            self.sets[slot] = []
            self.expected[slot] = -1

    def _reset_state(self) -> None:
        self._clear_inputs()
        self.result = 0
        self.calc_done = False
        self._calculating = False
        self._calc_counter = 0
        self._state = "idle"
        self._delay = 0


class OptimizedFCBInterpolator(Module):
    """The hand-tuned FCB interpolator slave (acknowledges beats back-to-back)."""

    def __init__(
        self,
        name: str,
        fcb: FCBSlaveBundle,
        calc_latency: int = CALCULATION_LATENCY,
        fsm_backend: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.fcb = fcb
        self.calc_latency = calc_latency
        self.sets: Dict[int, List[int]] = {SLOT_SET1: [], SLOT_SET2: [], SLOT_SET3: []}
        self.expected: Dict[int, int] = {SLOT_SET1: -1, SLOT_SET2: -1, SLOT_SET3: -1}
        self.result = 0
        self.calc_done = False
        self._calculating = False
        self._calc_counter = 0
        self._target_slot = 0
        self._is_write = False
        self._beat_seen = True
        self._decode_wait = 0
        self.activations = 0
        sensitivity = [
            fcb.rst, fcb.req, fcb.func_sel, fcb.is_write,
            fcb.data_valid, fcb.data_to_slave,
        ]
        if resolve_backend(fsm_backend) == "ir":
            self.fsm = BoundFsm(
                self._fsm_spec(),
                self,
                signals={
                    "prst": fcb.rst, "req": fcb.req, "func_sel": fcb.func_sel,
                    "is_write": fcb.is_write, "data_valid": fcb.data_valid,
                    "d2s": fcb.data_to_slave, "dfs": fcb.data_from_slave,
                    "ack": fcb.ack, "resp_valid": fcb.resp_valid,
                },
                helpers={
                    "h_reset_state": self._reset_state,
                    "h_finish_calc": self._finish_calc,
                    "h_store_word": self._store_word,
                    "h_clear_inputs": self._clear_inputs,
                },
                consts={"RESULT": SLOT_RESULT},
            )
            self.clocked(self.fsm.tick, sensitive_to=sensitivity)
        else:
            self.clocked(self._tick, sensitive_to=sensitivity)

    @staticmethod
    @functools.lru_cache(maxsize=None)
    def _fsm_spec() -> FsmSpec:
        """The hand-tuned co-processor slave as FSM IR.

        This design is flag-driven rather than phase-driven (the hallmark of
        hand-tuned RTL), so the IR is a single dispatch state whose body
        mirrors the write/read flag logic, with the calculation countdown
        and request capture as entry overlays.
        """
        return FsmSpec(
            name="optimized_fcb_interp",
            entry=(
                If(
                    "prst._value",
                    (Call("h_reset_state"),),
                    orelse=(
                        If(
                            "m._calculating",
                            (
                                Exec("m._calc_counter += 1"),
                                If(
                                    "m._calc_counter >= m.calc_latency",
                                    (Call("h_finish_calc"),),
                                ),
                                Active("True"),
                            ),
                        ),
                        If(
                            "req._value",
                            (
                                Exec("m._target_slot = func_sel._value"),
                                Exec("m._is_write = bool(is_write._value)"),
                                Exec("m._beat_seen = False"),
                                Active("True"),
                            ),
                        ),
                        StateDispatch(),
                    ),
                ),
            ),
            states={
                "main": (
                    If(
                        "m._is_write",
                        (
                            # Register the beat, decode the target set, ack
                            # two cycles later — fast, but not free.
                            If(
                                "data_valid._value and not m._beat_seen",
                                (
                                    If(
                                        "m._decode_wait < 3",
                                        (Exec("m._decode_wait += 1"), Active("True")),
                                        orelse=(
                                            Exec("m._decode_wait = 0"),
                                            Call(
                                                "h_store_word",
                                                args="m._target_slot, d2s._value",
                                            ),
                                            Pulse("ack"),
                                            Exec("m._beat_seen = True"),
                                            Active("True"),
                                        ),
                                    ),
                                ),
                                orelse=(
                                    If(
                                        "not data_valid._value",
                                        # Idempotent while the bus is quiet.
                                        (Exec("m._beat_seen = False"),),
                                    ),
                                ),
                            ),
                        ),
                        orelse=(
                            If(
                                "m._target_slot and not m._beat_seen",
                                (
                                    If(
                                        "m._target_slot == RESULT and not m.calc_done",
                                        # Hold the port until the result is
                                        # ready; the countdown keeps us active.
                                        (Active("True"),),
                                        orelse=(
                                            If(
                                                "m._target_slot == RESULT",
                                                (
                                                    Schedule("dfs", "m.result & 0xFFFFFFFF"),
                                                    Exec("m.calc_done = False"),
                                                    Call("h_clear_inputs"),
                                                ),
                                                orelse=(
                                                    Schedule("dfs", "1 if m.calc_done else 0"),
                                                ),
                                            ),
                                            Pulse("resp_valid"),
                                            Exec("m._beat_seen = True"),
                                            Active("True"),
                                        ),
                                    ),
                                ),
                            ),
                        ),
                    ),
                ),
            },
            state_attr="_fsm_state",
            signals=(
                "prst", "req", "func_sel", "is_write", "data_valid",
                "d2s", "dfs", "ack", "resp_valid",
            ),
            helpers=("h_reset_state", "h_finish_calc", "h_store_word", "h_clear_inputs"),
            consts=("RESULT",),
        )

    def _finish_calc(self) -> None:
        _complete_interpolation(self)

    def _tick(self) -> bool:
        fcb = self.fcb
        # ACK / RESP_VALID strobes are kernel-cleared pulses.
        active = False

        if fcb.rst.value:
            self._reset_state()
            return active

        if self._calculating:
            self._calc_counter += 1
            if self._calc_counter >= self.calc_latency:
                self._finish_calc()
            active = True

        if fcb.req.value:
            self._target_slot = fcb.func_sel.value
            self._is_write = bool(fcb.is_write.value)
            self._beat_seen = False
            active = True

        if self._is_write:
            # The hand-tuned design registers the incoming beat, decodes the
            # target set, and acknowledges two cycles later — fast, but not
            # free, because the operand registers sit behind a write decoder.
            if fcb.data_valid.value and not self._beat_seen:
                if self._decode_wait < 3:
                    self._decode_wait += 1
                    return True
                self._decode_wait = 0
                self._store_word(self._target_slot, fcb.data_to_slave.value)
                fcb.ack.pulse(1)
                self._beat_seen = True
                return True
            if not fcb.data_valid.value:
                self._beat_seen = False  # idempotent while the bus is quiet
        else:
            if self._target_slot and not self._beat_seen:
                if self._target_slot == SLOT_RESULT and not self.calc_done:
                    # Hold the co-processor port until the result is ready;
                    # the calculation countdown above keeps us active.
                    return True
                if self._target_slot == SLOT_RESULT:
                    fcb.data_from_slave.next = self.result & 0xFFFFFFFF
                    self.calc_done = False
                    self._clear_inputs()
                else:
                    fcb.data_from_slave.next = 1 if self.calc_done else 0
                fcb.resp_valid.pulse(1)
                self._beat_seen = True
                return True
        return active

    def _store_word(self, slot: int, word: int) -> None:
        if slot not in self.sets:
            return
        if self.expected[slot] < 0:
            self.expected[slot] = word
            self.sets[slot] = []
        else:
            self.sets[slot].append(word)
        if (
            slot == SLOT_SET3
            and all(
                self.expected[s] >= 0 and len(self.sets[s]) >= self.expected[s]
                for s in (SLOT_SET1, SLOT_SET2, SLOT_SET3)
            )
            and self.expected[SLOT_SET3] >= 0
            and len(self.sets[SLOT_SET3]) >= self.expected[SLOT_SET3]
        ):
            self._calculating = True
            self._calc_counter = 0
            self.calc_done = False

    def _clear_inputs(self) -> None:
        for slot in self.sets:
            self.sets[slot] = []
            self.expected[slot] = -1

    def _reset_state(self) -> None:
        self._clear_inputs()
        self.result = 0
        self.calc_done = False
        self._calculating = False
        self._calc_counter = 0
        self._target_slot = 0
        self._beat_seen = True


# -- systems and drivers ------------------------------------------------------------


@dataclass
class BaselineSystem:
    """A hand-coded interpolator attached to its bus, ready to run scenarios."""

    simulator: Simulator
    processor: ProcessorModel
    device: Module
    label: str

    @property
    def cycles(self) -> int:
        return self.simulator.cycle

    def run_scenario(self, sets: Sequence[Sequence[int]]) -> Dict[str, int]:
        raise NotImplementedError


@dataclass
class NaivePLBSystem(BaselineSystem):
    base_address: int = _BASE_ADDRESS

    def run_scenario(self, sets: Sequence[Sequence[int]]) -> Dict[str, int]:
        """The naïve driver: header + singles per set, poll status, read result.

        The whole sequence is scripted onto the master in one submission
        (cycle-exact with per-transaction blocking execution, gaps included).
        """
        start = self.simulator.cycle
        ops = []
        word = self.base_address
        step = 4
        for slot, data in zip((SLOT_SET1, SLOT_SET2, SLOT_SET3), sets):
            address = word + slot * step
            ops.append(TransactionOp(BusTransaction(TransactionKind.WRITE, address, data=[len(data)])))
            for value in data:
                ops.append(
                    TransactionOp(
                        BusTransaction(TransactionKind.WRITE, address, data=[int(value) & 0xFFFFFFFF])
                    )
                )
        # Defensive status polling before collecting the result.
        status_address = word + SLOT_STATUS * step
        for _ in range(3):
            ops.append(TransactionOp(BusTransaction(TransactionKind.READ, status_address)))
        result_txn = BusTransaction(TransactionKind.READ, word + SLOT_RESULT * step)
        ops.append(TransactionOp(result_txn))
        self.processor.execute_script(ops)
        return {
            "result": result_txn.result,
            "cycles": self.simulator.cycle - start,
            "transactions": len(ops),
        }


@dataclass
class OptimizedFCBSystem(BaselineSystem):
    def run_scenario(self, sets: Sequence[Sequence[int]]) -> Dict[str, int]:
        """The hand-tuned driver: header + quad-word bursts, no polling."""
        start = self.simulator.cycle
        ops = []
        for slot, data in zip((SLOT_SET1, SLOT_SET2, SLOT_SET3), sets):
            ops.append(TransactionOp(BusTransaction(TransactionKind.WRITE, slot, data=[len(data)])))
            values = [int(v) & 0xFFFFFFFF for v in data]
            for index in range(0, len(values), 4):
                chunk = values[index:index + 4]
                kind = TransactionKind.BURST_WRITE if len(chunk) > 1 else TransactionKind.WRITE
                ops.append(TransactionOp(BusTransaction(kind, slot, data=chunk)))
        result_txn = BusTransaction(TransactionKind.READ, SLOT_RESULT)
        ops.append(TransactionOp(result_txn))
        self.processor.execute_script(ops)
        return {
            "result": result_txn.result,
            "cycles": self.simulator.cycle - start,
            "transactions": len(ops),
        }


def build_naive_plb_system(
    *,
    inter_op_gap: int = 1,
    simulator_factory: Callable[[], Simulator] = Simulator,
    record_transactions: bool = True,
) -> NaivePLBSystem:
    """Assemble the naïve hand-coded PLB interpolator system."""
    simulator = simulator_factory()
    plb = PLBSlaveBundle("naive.plb", data_width=32, num_slots=_NUM_SLOTS)
    master = PLBMaster("naive.plb_master", plb, base_address=_BASE_ADDRESS)
    master.record_transactions = record_transactions
    device = NaivePLBInterpolator("naive_plb_interp", plb)
    simulator.register_module(master)
    simulator.register_module(device)
    simulator.add_signals(plb.signals())
    simulator.reset()
    processor = ProcessorModel(
        simulator, master, inter_op_gap=inter_op_gap, record_transactions=record_transactions
    )
    return NaivePLBSystem(
        simulator=simulator, processor=processor, device=device, label="simple_plb_handcoded"
    )


def build_optimized_fcb_system(
    *,
    inter_op_gap: int = 1,
    simulator_factory: Callable[[], Simulator] = Simulator,
    record_transactions: bool = True,
) -> OptimizedFCBSystem:
    """Assemble the hand-tuned FCB interpolator system."""
    simulator = simulator_factory()
    fcb = FCBSlaveBundle("optfcb.fcb", data_width=32, func_id_width=4)
    master = FCBMaster("optfcb.fcb_master", fcb)
    master.record_transactions = record_transactions
    device = OptimizedFCBInterpolator("optimized_fcb_interp", fcb)
    simulator.register_module(master)
    simulator.register_module(device)
    simulator.add_signals(fcb.signals())
    simulator.reset()
    processor = ProcessorModel(
        simulator, master, inter_op_gap=inter_op_gap, record_transactions=record_transactions
    )
    return OptimizedFCBSystem(
        simulator=simulator, processor=processor, device=device, label="optimized_fcb_handcoded"
    )


# -- resource descriptions (for the Figure 9.3 comparison) ---------------------------


def naive_plb_resource_ir() -> EntityIR:
    """Structural description of the naïve hand-coded PLB implementation.

    First-attempt designs of this kind typically dedicate a register to every
    input word, decode the full one-hot chip enable in several places, and
    duplicate per-set state machines — all of which shows up as extra LUTs
    and flip-flops compared with the shared datapath Splice generates.
    """
    entity = EntityIR(
        name="naive_plb_interpolator",
        kind=EntityKind.SUPPORT,
        description="hand-coded (naive) PLB interface for the linear interpolator",
    )
    entity.add_port("CLK", 1, PortDirection.IN)
    entity.add_port("RST", 1, PortDirection.IN)
    entity.add_port("PLB_DATA_IN", 32, PortDirection.IN)
    entity.add_port("PLB_DATA_OUT", 32, PortDirection.OUT)
    entity.add_port("PLB_WR_CE", _NUM_SLOTS, PortDirection.IN)
    entity.add_port("PLB_RD_CE", _NUM_SLOTS, PortDirection.IN)
    # A dedicated register bank per input set (sized for the larger sets)
    # plus per-set count registers, fill counters and handshake FSMs — the
    # first-attempt design replicates storage and control per set instead of
    # sharing one datapath the way the generated interface does.
    for index in range(6):
        entity.add_register(f"input_word_{index}", 32, "dedicated input word register")
    for index in range(3):
        entity.add_register(f"count_{index}", 16, "per-set element count")
        entity.add_counter(f"fill_{index}", 16, "per-set fill counter")
        entity.add_comparator(f"full_{index}", 16, "per-set completion compare")
        entity.add_fsm(f"set_fsm_{index}", ["IDLE", "HEADER", "DATA", "DONE"], "per-set handshake FSM")
    entity.add_register("result", 32, "interpolation result")
    entity.add_register("status", 2, "status register")
    entity.add_fsm("bus_fsm", ["IDLE", "DECODE", "STORE", "ACK", "READ", "RESPOND"], "bus handshake FSM")
    entity.add_comparator("address_decode", _NUM_SLOTS, "one-hot chip-enable decode")
    entity.add_mux("readback_mux", _NUM_SLOTS, 32, "read-back selection across all registers")
    entity.add_mux("input_select", 6, 32, "input register write-enable decode")
    entity.overhead_luts = 60  # ad-hoc glue the hand-written RTL accumulates
    return entity


def optimized_fcb_resource_ir() -> EntityIR:
    """Structural description of the hand-tuned FCB implementation."""
    entity = EntityIR(
        name="optimized_fcb_interpolator",
        kind=EntityKind.SUPPORT,
        description="hand-optimized FCB interface for the linear interpolator",
    )
    entity.add_port("CLK", 1, PortDirection.IN)
    entity.add_port("RST", 1, PortDirection.IN)
    entity.add_port("FCB_DATA_IN", 32, PortDirection.IN)
    entity.add_port("FCB_DATA_OUT", 32, PortDirection.OUT)
    entity.add_port("FCB_FUNC_SEL", 4, PortDirection.IN)
    # The hand-tuned design still needs real machinery: operand staging
    # registers deep enough to absorb a quad burst per set, burst sequencing,
    # per-set tracking, and the multi-function decode the FCB's single
    # attachment point forces on it — which is why the paper found Splice's
    # FCB interface only marginally larger than this one.
    entity.add_register("capture", 32, "shared capture register")
    entity.add_register("result", 32, "interpolation result")
    for index in range(3):
        entity.add_register(f"stage_{index}", 32, "burst staging register")
        entity.add_register(f"count_{index}", 16, "per-set element count")
        entity.add_counter(f"fill_{index}", 16, "per-set fill counter")
        entity.add_comparator(f"full_{index}", 16, "per-set completion compare")
    entity.add_fsm("beat_fsm", ["IDLE", "HEADER", "STREAM", "DRAIN", "RESPOND"], "beat handshake FSM")
    entity.add_fsm("burst_fsm", ["B_IDLE", "B1", "B2", "B3", "B4"], "quad-burst sequencing")
    entity.add_comparator("func_decode", 4, "function select decode")
    entity.add_mux("readback_mux", 5, 32, "result/status selection")
    entity.add_mux("operand_mux", 4, 32, "staging register steering")
    entity.add_counter("burst_tracker", 3, "burst beat tracking")
    entity.overhead_luts = 70
    return entity
