"""The Chapter 8 hardware timer, built through Splice.

The timer counts bus clock cycles up to a programmable 64-bit threshold and
raises a trigger flag each time it fires (auto-reloading).  Seven interface
declarations expose it to software (Figure 8.2); the calculation logic filled
into the generated stubs is the command handler of Figure 8.5, and the
free-running counter process of Figure 8.6 is :class:`HardwareTimerCore`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.rtl.module import Module
from repro.rtl.simulator import Simulator
from repro.soc.system import SpliceSystem, build_system

#: The Splice specification of Figure 8.2 (PLB target, 32-bit, 0x8000401C).
TIMER_SPEC = """\
// Target Specification
%device_name hw_timer
%target_hdl vhdl
%bus_type plb
%bus_width 32
%base_address 0x80004000
%dma_support false
%user_type llong, unsigned long long, 64
%user_type ulong, unsigned long, 32

// Interface Directives
void disable();
void enable();
void set_threshold(llong thold);
llong get_threshold();
llong get_snapshot();
ulong get_clock();
ulong get_status();
"""

#: Status word bit assignments (Figure 8.8: bit 0 = enabled, bit 1 = fired).
STATUS_ENABLED_BIT = 0
STATUS_FIRED_BIT = 1


class HardwareTimerCore(Module):
    """The counter process of Figure 8.6, ticking once per bus clock cycle.

    The count is *cycle-derived*: instead of incrementing an attribute once
    per executed clocked run, the core remembers the last cycle it
    synchronised at (``_synced``) and derives ``value``/``fire_count`` from
    the elapsed simulator cycles on demand.  The externally observable
    behaviour is identical on every kernel (the Figure 8.5 command handlers
    synchronise before they read or write), but the clocked process itself
    is a no-op registered with an empty sensitivity list — so the compiled
    kernel can elide it on every cycle and *cycle-leap* over idle countdown
    spans instead of executing them one by one.
    """

    def __init__(self, name: str = "timer_core", clock_rate_hz: int = 100_000_000) -> None:
        super().__init__(name)
        self.clock_rate_hz = clock_rate_hz
        self.enabled = False
        self.threshold = 0
        self.value = 0
        self.fired = False
        self.fire_count = 0
        # Cycle the counter state is valid for; -1 until first attached run.
        self._synced = 0
        # An empty sensitivity list opts into wait-state elision with no
        # wake inputs: on the compiled kernel the process never runs again
        # after its first (quiescent) invocation.  Scan kernels run it every
        # cycle; it must therefore stay cheap and idempotent.
        self.clocked(self._count, sensitive_to=[])

    def _now(self) -> int:
        """The cycle the counter must be synchronised to from inside a run.

        Clocked processes observe the state *before* the current cycle's
        edge: within cycle N (``sim.cycle == N``) the counter has absorbed
        edges 1..N, and the edge of cycle N itself lands when cycle N
        executes — i.e. becomes visible at ``sim.cycle == N+1``.  Command
        handlers run from generated stubs during cycle N, before this
        module's ``_count`` (registered last), and must see exactly N edges.
        """
        simulator = self._simulator
        return simulator.cycle if simulator is not None else self._synced

    def _sync(self, now: int) -> None:
        """Absorb all clock edges up to cycle ``now`` into the counter state."""
        elapsed = now - self._synced
        if elapsed <= 0:
            if elapsed < 0:
                self._synced = now  # cycle counter rewound (reset)
            return
        self._synced = now
        if not self.enabled or self.threshold == 0:
            return
        total = self.value + elapsed
        if total >= self.threshold:
            self.fired = True
            self.fire_count += total // self.threshold
            self.value = total % self.threshold
        else:
            self.value = total

    def _count(self) -> bool:
        self._sync(self._now())
        return False  # nothing to do until software looks at the counter

    # -- the Figure 8.5 command handlers -------------------------------------------

    def op_enable(self) -> None:
        self._sync(self._now())
        self.enabled = True

    def op_disable(self) -> None:
        self._sync(self._now())
        self.enabled = False

    def op_set_threshold(self, threshold: int) -> None:
        self._sync(self._now())
        self.threshold = int(threshold)
        self.value = 0
        self.fired = False

    def op_get_threshold(self) -> int:
        self._sync(self._now())
        return self.threshold

    def op_get_snapshot(self) -> int:
        self._sync(self._now())
        return self.value

    def op_get_clock(self) -> int:
        return self.clock_rate_hz

    def op_get_status(self) -> int:
        self._sync(self._now())
        status = (1 << STATUS_ENABLED_BIT) if self.enabled else 0
        if self.fired:
            status |= 1 << STATUS_FIRED_BIT
            self.fired = False  # reading status clears the internal fired bit
        return status


@dataclass
class TimerSystem:
    """A built timer SoC: the generic system plus the timer core itself."""

    system: SpliceSystem
    core: HardwareTimerCore

    @property
    def drivers(self):
        return self.system.drivers

    @property
    def cycles(self) -> int:
        return self.system.cycles


def timer_behaviors(core: HardwareTimerCore) -> Dict[str, object]:
    """The calculation logic filled into each generated stub (Section 8.3.1)."""
    return {
        "disable": lambda: core.op_disable(),
        "enable": lambda: core.op_enable(),
        "set_threshold": lambda thold: core.op_set_threshold(thold),
        "get_threshold": lambda: core.op_get_threshold(),
        "get_snapshot": lambda: core.op_get_snapshot(),
        "get_clock": lambda: core.op_get_clock(),
        "get_status": lambda: core.op_get_status(),
    }


def build_timer_system(
    *,
    clock_rate_hz: int = 100_000_000,
    spec: str = TIMER_SPEC,
    inter_op_gap: int = 1,
    simulator_factory: Callable[[], Simulator] = Simulator,
) -> TimerSystem:
    """Generate, elaborate and assemble the full Chapter-8 timer system."""
    core = HardwareTimerCore(clock_rate_hz=clock_rate_hz)
    system = build_system(
        spec,
        behaviors=timer_behaviors(core),
        calc_latencies={name: 1 for name in (
            "disable", "enable", "set_threshold", "get_threshold",
            "get_snapshot", "get_clock", "get_status",
        )},
        inter_op_gap=inter_op_gap,
        simulator_factory=simulator_factory,
    )
    system.simulator.register_module(core)
    return TimerSystem(system=system, core=core)
