"""The Chapter 9 evaluation device: the Scan Eagle linear interpolator.

The real device approximates continuous flight-control data from three sets
of time-valued samples; the paper deliberately leaves its internals out of
the evaluation because "the amount of calculation done in each implementation
is constant" (Section 9.2).  This reproduction follows suit: the calculation
is a deterministic fixed-point linear interpolation over the three input
sets, identical across every interface implementation and given the same
fixed calculation latency everywhere.

Three Splice specifications are provided, matching the three generated
interfaces of Section 9.2.1: a simple 32-bit PLB interconnect, an FCB
interconnect (which benefits from double/quad bursts), and a DMA-enabled PLB
interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.rtl.simulator import Simulator
from repro.soc.system import SpliceSystem, build_system

#: Fixed number of cycles the calculation logic takes in every
#: implementation (Section 9.1: "requires the same numbers of clock cycles to
#: produce results each time it is run").
CALCULATION_LATENCY = 24

#: The single Splice user-logic function: implicit pointer declarations move
#: exactly the number of values each scenario requires (Section 9.2.1).
_DECLARATION = (
    "long interpolate(char n1, int*:n1 set1, char n2, int*:n2 set2, char n3, int*:n3 set3);"
)

INTERPOLATOR_SPEC_PLB = f"""\
%device_name interp_plb
%bus_type plb
%bus_width 32
%base_address 0x80010000
%dma_support false
{_DECLARATION}
"""

INTERPOLATOR_SPEC_PLB_DMA = f"""\
%device_name interp_plb_dma
%bus_type plb
%bus_width 32
%base_address 0x80020000
%dma_support true
long interpolate(char n1, int*:n1^ set1, char n2, int*:n2^ set2, char n3, int*:n3^ set3);
"""

INTERPOLATOR_SPEC_FCB = f"""\
%device_name interp_fcb
%bus_type fcb
%bus_width 32
%burst_support true
{_DECLARATION}
"""

#: OPB and APB targets for scenario-diversity testing: the paper's evaluation
#: focuses on PLB/FCB, but the same declaration retargets to the other two
#: built-in buses, exercising the full adapter matrix.
INTERPOLATOR_SPEC_OPB = f"""\
%device_name interp_opb
%bus_type opb
%bus_width 32
%base_address 0x80040000
{_DECLARATION}
"""

INTERPOLATOR_SPEC_APB = f"""\
%device_name interp_apb
%bus_type apb
%bus_width 32
%base_address 0x40050000
{_DECLARATION}
"""


def interpolate_fixed_point(
    set1: Sequence[int], set2: Sequence[int], set3: Sequence[int]
) -> int:
    """Deterministic fixed-point linear interpolation over the three sets.

    ``set1`` holds sample timestamps, ``set2`` holds sampled control values,
    and ``set3`` holds query timestamps; the result is the sum of the
    interpolated control values at each query point, in 16.16 fixed point
    truncated to 32 bits.  The exact maths is unimportant for the evaluation
    — what matters is that it is a pure, deterministic function of its inputs
    shared by every interface implementation.
    """
    times = [int(v) for v in set1] or [0]
    values = [int(v) for v in set2] or [0]
    queries = [int(v) for v in set3] or [0]

    total = 0
    for query in queries:
        # Locate the bracketing samples (clamping at the ends).
        lo = 0
        for index, stamp in enumerate(times):
            if stamp <= query:
                lo = index
        hi = min(lo + 1, len(times) - 1)
        v_lo = values[min(lo, len(values) - 1)]
        v_hi = values[min(hi, len(values) - 1)]
        t_lo, t_hi = times[lo], times[hi]
        if t_hi == t_lo:
            interpolated = v_lo << 16
        else:
            fraction = ((query - t_lo) << 16) // (t_hi - t_lo)
            interpolated = (v_lo << 16) + (v_hi - v_lo) * fraction
        total = (total + interpolated) & 0xFFFFFFFF
    return total


def interpolator_behavior(**inputs) -> int:
    """The behaviour bound into every Splice-generated interpolator stub."""
    return interpolate_fixed_point(
        inputs.get("set1", []), inputs.get("set2", []), inputs.get("set3", [])
    )


@dataclass
class SpliceInterpolator:
    """A built Splice-generated interpolator system."""

    system: SpliceSystem
    label: str
    fault_controller: Optional[object] = None

    def apply_faults(self, schedule) -> None:
        """Attach a fault schedule (token string, ``FaultSchedule``, or
        ``None`` to clear) to this runner's simulator.

        Spec cycles are relative to scenario start: ``run_scenario`` rebases
        the controller every call, so the same schedule faults the same
        relative cycle of every scenario regardless of how many ran before.
        """
        from repro.faults import FaultController, coerce_schedule, sis_targets

        schedule = coerce_schedule(schedule)
        if schedule is None:
            self.fault_controller = None
            self.system.simulator.inject_faults(None)
            return
        self.fault_controller = FaultController(
            schedule, sis_targets(self.system.peripheral.sis)
        )
        self.system.simulator.inject_faults(self.fault_controller)

    def run_scenario(self, sets: Sequence[Sequence[int]]) -> Dict[str, int]:
        """Run one interpolation and report the cycles the call took."""
        set1, set2, set3 = [list(s) for s in sets]
        driver = self.system.drivers["interpolate"]
        start = self.system.cycles
        if self.fault_controller is not None:
            self.fault_controller.rebase(self.system.simulator, start)
        result = driver(len(set1), set1, len(set2), set2, len(set3), set3)
        return {
            "result": int(result),
            "cycles": self.system.cycles - start,
            "transactions": driver.last_call.transactions,
        }


_SPECS = {
    "splice_plb": INTERPOLATOR_SPEC_PLB,
    "splice_plb_dma": INTERPOLATOR_SPEC_PLB_DMA,
    "splice_fcb": INTERPOLATOR_SPEC_FCB,
    "splice_opb": INTERPOLATOR_SPEC_OPB,
    "splice_apb": INTERPOLATOR_SPEC_APB,
}


def build_splice_interpolator(
    kind: str = "splice_plb",
    *,
    inter_op_gap: int = 1,
    simulator_factory: Callable[[], Simulator] = Simulator,
    record_transactions: bool = True,
) -> SpliceInterpolator:
    """Build one of the Splice-generated interpolator systems.

    ``kind`` is one of ``"splice_plb"``, ``"splice_plb_dma"``,
    ``"splice_fcb"``, ``"splice_opb"`` or ``"splice_apb"``.
    ``simulator_factory`` selects the simulation kernel (see
    :func:`repro.soc.system.build_system`); ``record_transactions=False``
    keeps memory flat on campaign-scale runs.
    """
    try:
        spec = _SPECS[kind]
    except KeyError:
        raise KeyError(f"unknown Splice interpolator kind {kind!r} (known: {sorted(_SPECS)})") from None
    system = build_system(
        spec,
        behaviors={"interpolate": interpolator_behavior},
        calc_latencies={"interpolate": CALCULATION_LATENCY},
        inter_op_gap=inter_op_gap,
        simulator_factory=simulator_factory,
        record_transactions=record_transactions,
    )
    return SpliceInterpolator(system=system, label=kind)
