"""Example devices from the paper.

* :mod:`repro.devices.timer` — the Chapter 8 walk-through: a 64-bit hardware
  timer exposed through seven Splice-declared functions.
* :mod:`repro.devices.interpolator` — the Chapter 9 evaluation device: the
  Scan Eagle UAV linear interpolator behind Splice-generated interfaces.
* :mod:`repro.devices.baselines` — the two hand-coded baseline interfaces
  (naïve PLB, optimized FCB) the paper compares against.
* :mod:`repro.devices.registry` — the label → runner-builder registry the
  campaign subsystem uses to rebuild systems inside worker processes.
"""

from repro.devices.timer import TIMER_SPEC, HardwareTimerCore, build_timer_system
from repro.devices.interpolator import (
    INTERPOLATOR_SPEC_PLB,
    INTERPOLATOR_SPEC_PLB_DMA,
    INTERPOLATOR_SPEC_FCB,
    interpolate_fixed_point,
    build_splice_interpolator,
)
from repro.devices.baselines import (
    NaivePLBInterpolator,
    OptimizedFCBInterpolator,
    build_naive_plb_system,
    build_optimized_fcb_system,
)
from repro.devices.registry import build_runner, known_labels, register_runner

__all__ = [
    "build_runner",
    "known_labels",
    "register_runner",
    "TIMER_SPEC",
    "HardwareTimerCore",
    "build_timer_system",
    "INTERPOLATOR_SPEC_PLB",
    "INTERPOLATOR_SPEC_PLB_DMA",
    "INTERPOLATOR_SPEC_FCB",
    "interpolate_fixed_point",
    "build_splice_interpolator",
    "NaivePLBInterpolator",
    "OptimizedFCBInterpolator",
    "build_naive_plb_system",
    "build_optimized_fcb_system",
]
