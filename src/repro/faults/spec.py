"""Deterministic fault schedules for the SIS adapter designs.

A :class:`FaultSpec` names one fault: a *class* (stuck-at-0/1, single-cycle
bit flip, transient pulse, delayed handshake, dropped or duplicated
wire-format beat), a *target* SIS wire (by role name, resolved against the
peripheral's :class:`~repro.sis.signals.SISBundle`), the *relative cycle* at
which it fires (counted from the start of the scenario it is applied to),
and a duration/bit selector.  A :class:`FaultSchedule` is an ordered,
hashable bundle of specs with a canonical string token — the token is what
rides through campaign grids, cache digests, and CSV artifacts, so a
schedule can be round-tripped through any of them without loss.

Every fault class lowers to the same primitive: a masked override applied to
the target signal's committed value once per scheduled cycle, *after* the
cycle's combinational settle and *before* the monitors sample.  The classes
differ only in which mask they apply:

* ``stuck_at_0`` / ``delayed_handshake`` / ``drop_beat`` force bits low,
* ``stuck_at_1`` / ``transient_pulse`` / ``dup_beat`` force bits high,
* ``bit_flip`` inverts a bit.

``delayed_handshake`` (hold a done strobe low so the handshake lands late),
``drop_beat`` (hold a valid strobe low so a wire-format beat is never seen)
and ``dup_beat`` (hold an enable strobe high so a beat is consumed twice)
are protocol-level *placements* of the low/high primitives: the class name
records the intent and drives the default target selection in the
monitor-efficacy matrix (:mod:`repro.faults.matrix`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

#: Every supported fault class, in canonical order.
FAULT_KINDS: Tuple[str, ...] = (
    "stuck_at_0",
    "stuck_at_1",
    "bit_flip",
    "transient_pulse",
    "delayed_handshake",
    "drop_beat",
    "dup_beat",
)

#: Classes that force the selected bits low / high / inverted.
FORCE_LOW_KINDS = frozenset({"stuck_at_0", "delayed_handshake", "drop_beat"})
FORCE_HIGH_KINDS = frozenset({"stuck_at_1", "transient_pulse", "dup_beat"})
FLIP_KINDS = frozenset({"bit_flip"})

#: SIS wire role names a fault may target (see
#: :func:`repro.faults.inject.sis_targets` for the bundle-field mapping).
SIS_TARGET_NAMES: Tuple[str, ...] = (
    "RST",
    "DATA_IN",
    "DATA_IN_VALID",
    "IO_ENABLE",
    "FUNC_ID",
    "DATA_OUT",
    "DATA_OUT_VALID",
    "IO_DONE",
    "CALC_DONE",
)

_BIT_WILDCARD = "*"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault on one SIS wire.

    ``cycle`` is relative to the start of the run the schedule is applied to
    (scenario start for campaign cells); ``duration`` repeats the override on
    that many consecutive cycles; ``bit`` selects a single bit of the target
    (``None`` = the whole signal, which is what e.g. a stuck-at-0 on a
    multi-bit ``FUNC_ID`` wants).
    """

    kind: str
    target: str
    cycle: int
    duration: int = 1
    bit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (choose from {', '.join(FAULT_KINDS)})"
            )
        if self.target not in SIS_TARGET_NAMES:
            raise ValueError(
                f"unknown fault target {self.target!r} "
                f"(choose from {', '.join(SIS_TARGET_NAMES)})"
            )
        if self.cycle < 0:
            raise ValueError(f"fault cycle must be >= 0, got {self.cycle}")
        if self.duration < 1:
            raise ValueError(f"fault duration must be >= 1, got {self.duration}")
        if self.bit is not None and self.bit < 0:
            raise ValueError(f"fault bit must be >= 0, got {self.bit}")

    @property
    def token(self) -> str:
        """Canonical ``kind:target:cycle:duration:bit`` encoding."""
        bit = _BIT_WILDCARD if self.bit is None else str(self.bit)
        return f"{self.kind}:{self.target}:{self.cycle}:{self.duration}:{bit}"

    @classmethod
    def parse(cls, token: str) -> "FaultSpec":
        """Invert :attr:`token` (whitespace-tolerant).

        ``duration`` and ``bit`` may be omitted (``kind:target:cycle``
        defaults to a one-cycle whole-signal fault), so hand-typed CLI
        schedules stay short; :attr:`token` always re-emits the full
        five-field canonical form.
        """
        parts = token.strip().split(":")
        if not 3 <= len(parts) <= 5:
            raise ValueError(
                f"malformed fault token {token!r} "
                "(expected kind:target:cycle[:duration[:bit]])"
            )
        kind, target, cycle = parts[:3]
        duration = parts[3] if len(parts) > 3 else "1"
        bit = parts[4] if len(parts) > 4 else _BIT_WILDCARD
        return cls(
            kind=kind,
            target=target,
            cycle=int(cycle),
            duration=int(duration),
            bit=None if bit == _BIT_WILDCARD else int(bit),
        )

    def masks(self, width: int) -> Tuple[int, int, int]:
        """The ``(and, or, xor)`` override masks for a ``width``-bit target.

        Applied as ``value = ((value & and) | or) ^ xor`` — exactly what
        :meth:`repro.faults.inject.FaultController.fire` executes.
        """
        full = (1 << width) - 1
        select = full if self.bit is None else (1 << self.bit) & full
        if self.kind in FORCE_LOW_KINDS:
            return (full & ~select, 0, 0)
        if self.kind in FORCE_HIGH_KINDS:
            return (full, select, 0)
        # bit_flip: a whole-signal flip inverts bit 0 by convention — a full
        # vector inversion is a different (and less physical) fault model.
        flip = select if self.bit is not None else 1
        return (full, 0, flip)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, hashable set of :class:`FaultSpec` entries.

    The canonical :attr:`token` (specs sorted by cycle, then kind/target)
    is the schedule's identity everywhere outside this module: campaign
    grid axes carry the token string, ``cell_digest`` hashes it via
    ``CampaignCell.describe()``, and the compiled kernel folds
    :attr:`fingerprint` into its program digest.
    """

    specs: Tuple[FaultSpec, ...] = field(default=())

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.specs, key=lambda s: (s.cycle, s.kind, s.target, s.duration))
        )
        object.__setattr__(self, "specs", ordered)
        if not ordered:
            raise ValueError("a fault schedule needs at least one FaultSpec")

    @property
    def token(self) -> str:
        """Canonical ``;``-joined encoding of the sorted specs."""
        return ";".join(spec.token for spec in self.specs)

    @property
    def fingerprint(self) -> str:
        """SHA-256 of the canonical token (folded into cache digests)."""
        return hashlib.sha256(self.token.encode()).hexdigest()

    @classmethod
    def parse(cls, token: str) -> "FaultSchedule":
        """Parse a ``;``-joined token back into a schedule."""
        parts = [part for part in token.strip().split(";") if part.strip()]
        if not parts:
            raise ValueError(f"empty fault schedule token {token!r}")
        return cls(specs=tuple(FaultSpec.parse(part) for part in parts))

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultSchedule":
        return cls(specs=tuple(specs))

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)


def coerce_schedule(value) -> Optional[FaultSchedule]:
    """Accept a schedule, a token string, or ``None`` (used by apply paths)."""
    if value is None:
        return None
    if isinstance(value, FaultSchedule):
        return value
    if isinstance(value, str):
        return FaultSchedule.parse(value)
    if isinstance(value, FaultSpec):
        return FaultSchedule.of(value)
    if isinstance(value, Sequence):
        return FaultSchedule(specs=tuple(value))
    raise TypeError(f"cannot interpret {value!r} as a fault schedule")
