"""Kernel-side fault injection: binding schedules to live simulations.

A :class:`FaultController` compiles a :class:`~repro.faults.spec.FaultSchedule`
against a concrete set of target :class:`~repro.rtl.signal.Signal` objects
(per-cycle masked-override op lists) and attaches to any of the three
kernels through ``Simulator.inject_faults``.  The kernels share one firing
contract:

* the kernel checks ``self._next_fault <= self.cycle`` once per executed
  cycle, *after* the combinational settle and *before* the cycle counter
  increments and the monitors run — the scan kernels inline the check in
  ``step()``, the compiled kernel emits it into the fused ``cycle_body``
  (and clamps its cycle-leap span so a scheduled fault cycle is never
  leaped over);
* :meth:`FaultController.fire` applies every op due at the current cycle
  via ``Signal.drive`` and advances ``_next_fault``;
* after firing, the kernel forces a *full* combinational re-derivation on
  the next cycle (dirty-all on the event kernel, ``_events |= comb_all``
  on the compiled kernel; the reference kernel re-runs everything anyway),
  so a forced value on a comb-driven wire reverts on the same cycle in all
  three kernels and the differential harness stays cycle-exact under
  injection.

Faulted values are therefore visible to the monitors of the cycle they fire
on, and to the clocked processes of the following cycle — the same window a
real single-cycle upset on the wire would have.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from repro.faults.spec import FaultSchedule, coerce_schedule
from repro.rtl.signal import Signal

#: Sentinel cycle meaning "no fault pending" — matches the compiled
#: kernel's timed-wake sentinel so the generated compare never overflows.
NEVER = 1 << 62


def sis_targets(bundle) -> Dict[str, Signal]:
    """Map fault-target role names onto an :class:`SISBundle`'s signals."""
    return {
        "RST": bundle.rst,
        "DATA_IN": bundle.data_in,
        "DATA_IN_VALID": bundle.data_in_valid,
        "IO_ENABLE": bundle.io_enable,
        "FUNC_ID": bundle.func_id,
        "DATA_OUT": bundle.data_out,
        "DATA_OUT_VALID": bundle.data_out_valid,
        "IO_DONE": bundle.io_done,
        "CALC_DONE": bundle.calc_done,
    }


class FaultController:
    """A schedule bound to concrete signals, ready to fire into a kernel.

    ``targets`` maps role names (``"IO_ENABLE"`` ...) to signals; specs are
    expanded into per-relative-cycle op lists at construction, so firing is
    a dict lookup plus a few masked drives.  The controller is stateless
    across runs except for :attr:`injected` (a telemetry counter) — rebasing
    it onto a new start cycle re-arms the whole schedule.
    """

    def __init__(self, schedule, targets: Dict[str, Signal]) -> None:
        self.schedule: FaultSchedule = coerce_schedule(schedule)
        if self.schedule is None:
            raise ValueError("FaultController requires a non-empty schedule")
        self._base = 0
        #: Total ops applied across all runs (diagnostic only).
        self.injected = 0
        by_cycle: Dict[int, List[Tuple[Signal, int, int, int]]] = {}
        for spec in self.schedule:
            signal = targets.get(spec.target)
            if signal is None:
                raise ValueError(
                    f"fault target {spec.target!r} is not available on this "
                    f"design (have: {', '.join(sorted(targets))})"
                )
            and_mask, or_mask, xor_mask = spec.masks(signal.width)
            for offset in range(spec.duration):
                by_cycle.setdefault(spec.cycle + offset, []).append(
                    (signal, and_mask, or_mask, xor_mask)
                )
        self._by_cycle = by_cycle
        self._cycles = sorted(by_cycle)

    @property
    def fingerprint(self) -> str:
        """The schedule's fingerprint (folded into compiled-program digests)."""
        return self.schedule.fingerprint

    @property
    def token(self) -> str:
        return self.schedule.token

    def rebase(self, simulator, base: int) -> None:
        """Re-arm the schedule with relative cycle 0 at absolute ``base``.

        Called when the controller is attached and at the start of every
        scenario run (and on ``reset()``, with ``base=0``), so spec cycles
        always count from the run being faulted, not from simulator birth.
        """
        self._base = base
        rel = simulator.cycle - base
        index = bisect_right(self._cycles, rel - 1)
        if index < len(self._cycles):
            simulator._next_fault = self._cycles[index] + base
        else:
            simulator._next_fault = NEVER

    def fire(self, simulator) -> None:
        """Apply every op due at the simulator's current cycle, then re-arm."""
        rel = simulator.cycle - self._base
        ops = self._by_cycle.get(rel)
        if ops:
            for signal, and_mask, or_mask, xor_mask in ops:
                signal.drive(((signal._value & and_mask) | or_mask) ^ xor_mask)
            self.injected += len(ops)
        index = bisect_right(self._cycles, rel)
        if index < len(self._cycles):
            simulator._next_fault = self._cycles[index] + self._base
        else:
            simulator._next_fault = NEVER
