"""Deterministic fault injection for the three simulation kernels.

See :mod:`repro.faults.spec` for the schedule model,
:mod:`repro.faults.inject` for the kernel binding, and
:mod:`repro.faults.matrix` for the monitor-efficacy matrix behind
``splice faults run``.
"""

from repro.faults.inject import FaultController, sis_targets
from repro.faults.matrix import (
    DEFAULT_MATRIX_BUSES,
    FaultMatrixRow,
    matrix_to_markdown,
    matrix_to_payload,
    plan_fault,
    run_fault_matrix,
)
from repro.faults.spec import (
    FAULT_KINDS,
    SIS_TARGET_NAMES,
    FaultSchedule,
    FaultSpec,
    coerce_schedule,
)

__all__ = [
    "DEFAULT_MATRIX_BUSES",
    "FAULT_KINDS",
    "FaultController",
    "FaultMatrixRow",
    "FaultSchedule",
    "FaultSpec",
    "SIS_TARGET_NAMES",
    "coerce_schedule",
    "matrix_to_markdown",
    "matrix_to_payload",
    "plan_fault",
    "run_fault_matrix",
    "sis_targets",
]
