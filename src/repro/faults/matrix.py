"""Monitor-efficacy matrix: fault class × bus → detected / escape / crash.

This is mutation testing for the SIS protocol monitor
(:mod:`repro.sis.protocol`): each cell of the matrix runs one scenario with
one seeded fault injected and reports whether the monitor caught it.  The
placement is *probe-guided* — a clean run of the scenario first records the
per-cycle SIS strobe activity, and each fault class is then planted at a
deterministically chosen cycle where its target wire is actually in use (a
stuck-at-1 on ``IO_ENABLE`` lands on a real enable strobe, a bit flip on
``DATA_IN`` lands inside a held-valid window, and so on), so a "detected"
verdict reflects monitor efficacy, not placement luck.

Verdicts:

* ``detected`` — the monitor recorded at least one violation; the first
  triggering rule and the detection latency (cycles after the fault's first
  cycle; 0 = caught on the fault cycle itself) are reported.
* ``escape`` — the monitor recorded nothing.  Escapes are findings about
  monitor coverage, not failures: e.g. the strictly synchronous APB variant
  disables the stability/handshake rules, so data faults on APB are
  *expected* escapes.

Either verdict may additionally carry ``crashed`` — the faulted run raised
(typically a held or dropped strobe deadlocking the handshake until a driver
timeout fires).  Structured, not fatal: the error text is recorded and the
sweep continues; any violations the monitor logged before the crash still
count toward detection.

Everything is deterministic: placement draws from ``random.Random`` seeded
with the (bus, class, seed) triple, and the fault schedules are ordinary
:class:`~repro.faults.spec.FaultSchedule` values, so any row can be replayed
bit-exactly from its recorded token.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.evaluation.scenarios import SCENARIOS, Scenario
from repro.faults.spec import FAULT_KINDS, FaultSchedule, FaultSpec

#: The Figure 9.1 bus grid the matrix sweeps by default.
DEFAULT_MATRIX_BUSES: Tuple[str, ...] = (
    "splice_plb",
    "splice_fcb",
    "splice_opb",
    "splice_apb",
)


@dataclass
class FaultMatrixRow:
    """One (bus × fault class) cell of the efficacy matrix."""

    bus: str
    kind: str
    target: str
    schedule: str
    status: str  # "detected" | "escape"
    rules: Tuple[str, ...] = ()
    cycles_to_detection: Optional[int] = None
    violations: int = 0
    crashed: bool = False
    result_match: Optional[bool] = None
    clean_result: Optional[int] = None
    faulted_result: Optional[int] = None
    clean_cycles: Optional[int] = None
    faulted_cycles: Optional[int] = None
    error: Optional[str] = None

    def payload(self) -> Dict[str, object]:
        data = {
            "bus": self.bus,
            "kind": self.kind,
            "target": self.target,
            "schedule": self.schedule,
            "status": self.status,
            "rules": list(self.rules),
            "violations": self.violations,
            "crashed": self.crashed,
        }
        for name in (
            "cycles_to_detection",
            "result_match",
            "clean_result",
            "faulted_result",
            "clean_cycles",
            "faulted_cycles",
            "error",
        ):
            value = getattr(self, name)
            if value is not None:
                data[name] = value
        return data


@dataclass
class _CleanProbe:
    """Clean-run telemetry guiding fault placement for one bus."""

    result: int
    cycles: int
    #: Relative cycles (0 = first scenario cycle) at which each condition
    #: held, as observed post-settle — exactly the values a fault scheduled
    #: at that relative cycle would override.
    write_strobe: List[int] = field(default_factory=list)  # io_enable & valid
    enable: List[int] = field(default_factory=list)  # io_enable high
    held_valid: List[int] = field(default_factory=list)  # valid, not done
    read_strobe: List[int] = field(default_factory=list)  # data_out_valid
    quiet: List[int] = field(default_factory=list)  # all strobes low


def _build_runner(bus: str, kernel: str):
    from repro.devices.registry import build_runner

    return build_runner(bus, kernel=kernel)


def _probe_clean(bus: str, scenario: Scenario, seed: int, kernel: str) -> _CleanProbe:
    runner = _build_runner(bus, kernel)
    sis = runner.system.peripheral.sis
    simulator = runner.system.simulator
    samples: List[Tuple[int, int, int, int, int]] = []

    def record() -> None:
        samples.append(
            (
                simulator.cycle,
                sis.io_enable._value,
                sis.data_in_valid._value,
                sis.data_out_valid._value,
                sis.io_done._value,
            )
        )

    simulator.add_monitor(record)
    start = runner.system.cycles
    outcome = runner.run_scenario(scenario.generate_inputs(seed=seed))
    probe = _CleanProbe(result=outcome["result"], cycles=outcome["cycles"])
    for cycle, io_enable, valid, dov, done in samples:
        # Monitors sample after the cycle counter increments, so the values
        # belong to relative cycle ``cycle - 1 - start``.
        rel = cycle - 1 - start
        if rel < 0:
            continue
        if io_enable and valid:
            probe.write_strobe.append(rel)
        if io_enable:
            probe.enable.append(rel)
        if valid and not done:
            probe.held_valid.append(rel)
        if dov:
            probe.read_strobe.append(rel)
        if not (io_enable or valid or dov):
            probe.quiet.append(rel)
    return probe


def _pick(rng: random.Random, candidates: Sequence[int], fallback: int) -> int:
    if not candidates:
        return fallback
    # Prefer mid-scenario placements: the first/last beats of a transfer sit
    # next to driver setup/teardown, where a fault can only deadlock.
    pool = list(candidates)
    lo, hi = len(pool) // 4, max(len(pool) // 4 + 1, 3 * len(pool) // 4)
    return rng.choice(pool[lo:hi] or pool)


def plan_fault(
    kind: str, probe: _CleanProbe, rng: random.Random, data_width: int = 32
) -> FaultSchedule:
    """Plant one fault of ``kind`` at a probe-guided cycle.

    Returns the single-spec schedule; the placement policy per class is the
    module docstring's table in code form.
    """
    mid = max(probe.cycles // 2, 1)
    if kind == "stuck_at_0":
        # Force FUNC_ID to 0 across a write strobe: writing function id 0
        # (the read-only CALC_DONE register) trips status_register_write on
        # every bus variant.
        cycle = _pick(rng, probe.write_strobe, mid)
        return FaultSchedule.of(FaultSpec(kind, "FUNC_ID", cycle, duration=2))
    if kind == "stuck_at_1":
        # Hold IO_ENABLE high over a real strobe: a >= 2-cycle run trips
        # io_enable_strobe on every bus variant.
        cycle = _pick(rng, probe.enable, mid)
        return FaultSchedule.of(FaultSpec(kind, "IO_ENABLE", cycle, duration=3))
    if kind == "bit_flip":
        # Flip one DATA_IN bit inside a held-valid window: the payload
        # glitches mid-transfer, tripping data_in_stability on
        # pseudo-asynchronous buses (expected escape on APB).
        cycle = _pick(rng, probe.held_valid, mid)
        bit = rng.randrange(data_width)
        return FaultSchedule.of(FaultSpec(kind, "DATA_IN", cycle, duration=1, bit=bit))
    if kind == "transient_pulse":
        # Pulse DATA_OUT_VALID on a quiet cycle: a read completion with no
        # IO_DONE trips read_handshake on pseudo-asynchronous buses.
        cycle = _pick(rng, probe.quiet, mid)
        return FaultSchedule.of(FaultSpec(kind, "DATA_OUT_VALID", cycle, duration=1))
    if kind == "delayed_handshake":
        # Hold IO_DONE low across a read completion: DATA_OUT_VALID without
        # IO_DONE is the late-handshake signature read_handshake watches.
        cycle = _pick(rng, probe.read_strobe, mid)
        return FaultSchedule.of(FaultSpec(kind, "IO_DONE", cycle, duration=2))
    if kind == "drop_beat":
        # Knock DATA_IN_VALID low mid-transfer: one wire-format beat is
        # never seen.  Depending on the adapter this is an escape, a wrong
        # result, or a handshake deadlock (an escape flagged ``crashed``).
        cycle = _pick(rng, probe.held_valid, mid)
        return FaultSchedule.of(FaultSpec(kind, "DATA_IN_VALID", cycle, duration=1))
    if kind == "dup_beat":
        # Stretch IO_ENABLE over the following cycle: the peripheral is
        # enabled twice for one beat — also a >= 2-cycle strobe run.
        cycle = _pick(rng, probe.enable, mid)
        return FaultSchedule.of(FaultSpec(kind, "IO_ENABLE", cycle, duration=2))
    raise ValueError(f"unknown fault kind {kind!r}")


def run_fault_matrix(
    buses: Sequence[str] = DEFAULT_MATRIX_BUSES,
    kinds: Sequence[str] = FAULT_KINDS,
    *,
    scenario: Optional[Scenario] = None,
    seed: int = 0,
    kernel: str = "compiled",
) -> List[FaultMatrixRow]:
    """Run the full (bus × fault class) sweep and return one row per cell.

    Every cell gets a *fresh* system (fault state never leaks between
    cells), and each faulted outcome is compared against the bus's clean
    probe run for the ``result_match`` column.
    """
    scenario = scenario if scenario is not None else SCENARIOS[0]
    rows: List[FaultMatrixRow] = []
    for bus in buses:
        probe = _probe_clean(bus, scenario, seed, kernel)
        for kind in kinds:
            rng = random.Random(f"{bus}:{kind}:{seed}")
            schedule = plan_fault(kind, probe, rng)
            spec = schedule.specs[0]
            runner = _build_runner(bus, kernel)
            runner.apply_faults(schedule)
            monitor = runner.system.monitor
            start = runner.system.cycles
            fault_abs = start + spec.cycle
            row = FaultMatrixRow(
                bus=bus,
                kind=kind,
                target=spec.target,
                schedule=schedule.token,
                status="escape",
                clean_result=probe.result,
                clean_cycles=probe.cycles,
            )
            try:
                outcome = runner.run_scenario(scenario.generate_inputs(seed=seed))
            except Exception as exc:  # deterministic per-cell crash record
                row.crashed = True
                row.error = f"{type(exc).__name__}: {exc}"
            else:
                row.faulted_result = outcome["result"]
                row.faulted_cycles = outcome["cycles"]
                row.result_match = outcome["result"] == probe.result
            violations = list(monitor.violations) if monitor is not None else []
            if violations:
                row.status = "detected"
                row.rules = tuple(sorted({v.rule for v in violations}))
                row.violations = len(violations)
                # Monitors sample post-increment: a violation recorded at
                # simulator cycle c observed the values of executed cycle
                # c - 1, so latency 0 means "caught on the fault cycle".
                row.cycles_to_detection = min(v.cycle for v in violations) - 1 - fault_abs
            rows.append(row)
    return rows


def matrix_to_payload(
    rows: Sequence[FaultMatrixRow], *, seed: int, scenario: Scenario, kernel: str
) -> Dict[str, object]:
    """JSON-ready artifact: meta + rows + a per-status summary."""
    summary: Dict[str, int] = {"detected": 0, "escape": 0, "crashed": 0}
    for row in rows:
        summary[row.status] = summary.get(row.status, 0) + 1
        if row.crashed:
            summary["crashed"] += 1
    return {
        "meta": {
            "scenario": scenario.number,
            "seed": seed,
            "kernel": kernel,
            "buses": sorted({row.bus for row in rows}),
            "kinds": [kind for kind in FAULT_KINDS if any(r.kind == kind for r in rows)],
        },
        "summary": summary,
        "rows": [row.payload() for row in rows],
    }


def matrix_to_markdown(rows: Sequence[FaultMatrixRow]) -> str:
    """Render the matrix as a GitHub-flavoured markdown table."""
    lines = [
        "| bus | fault class | target | status | rule(s) | cycles to detection | result match |",
        "| --- | --- | --- | --- | --- | --- | --- |",
    ]
    for row in rows:
        rules = ", ".join(row.rules) if row.rules else "—"
        latency = str(row.cycles_to_detection) if row.cycles_to_detection is not None else "—"
        status = f"{row.status} (crash)" if row.crashed else row.status
        if row.crashed:
            match = "crash"
        elif row.result_match is None:
            match = "—"
        else:
            match = "yes" if row.result_match else "NO"
        lines.append(
            f"| {row.bus} | {row.kind} | {row.target} | {status} "
            f"| {rules} | {latency} | {match} |"
        )
    return "\n".join(lines)
