"""The shared ``splice_params`` structure (Figure 7.3).

Every generator — built-in or supplied through the extension API — works
from the same view of the user's specification: a :class:`ModuleParams`
holding per-function :class:`FuncParams`, each holding per-I/O
:class:`IOParams`.  :func:`build_params` derives this structure from a parsed
and validated :class:`~repro.core.syntax.ast.SpliceSpec`.

Function identifier zero is reserved by the SIS for the ``CALC_DONE`` status
register (Section 4.2.2); real functions are numbered from one, and each
additional instance of a multi-instance function takes the next consecutive
identifier so that drivers can address instance ``k`` as ``FUNC_ID + k``
(Figure 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.capabilities import BusCapabilities
from repro.core.syntax.ast import Declaration, Parameter, SpliceSpec

#: The function identifier reserved for the CALC_DONE / status register.
STATUS_FUNC_ID = 0


@dataclass
class IOParams:
    """Mirror of ``s_io_params`` — one input or output of a hardware function."""

    io_name: str
    io_type: str
    io_width: int
    io_number: int
    is_pointer: bool = False
    is_packed: bool = False
    is_dma: bool = False
    index_var: Optional[str] = None
    has_index: bool = False
    used_as_index: bool = False
    is_float: bool = False

    def words_per_element(self, bus_width: int) -> int:
        """Bus beats needed to move one element (handles split transfers)."""
        return max(1, -(-self.io_width // bus_width))

    def pack_factor(self, bus_width: int) -> int:
        """Elements moved per beat when packing applies to this I/O."""
        if not self.is_packed or self.io_width == 0:
            return 1
        return max(1, bus_width // self.io_width)

    def beats(self, bus_width: int, element_count: Optional[int] = None) -> int:
        """Total bus beats to move this I/O (excluding handshake overhead).

        ``element_count`` overrides the static ``io_number`` for implicit
        (runtime-bounded) transfers.
        """
        count = element_count if element_count is not None else self.io_number
        if count is None:
            raise ValueError(f"I/O {self.io_name!r} has a runtime bound; supply element_count")
        if self.is_packed and self.io_width < bus_width:
            per_beat = self.pack_factor(bus_width)
            return max(1, -(-count // per_beat))
        return count * self.words_per_element(bus_width)


@dataclass
class FuncParams:
    """Mirror of ``s_func_params`` — one user-declared hardware function."""

    func_name: str
    func_id: int
    nmbr_instances: int = 1
    inputs: List[IOParams] = field(default_factory=list)
    output: Optional[IOParams] = None
    has_output: bool = False
    splitting_f: bool = False
    indexing_f: bool = False
    blocking: bool = True
    uses_dma: bool = False
    uses_packing: bool = False

    @property
    def nmbr_inputs(self) -> int:
        return len(self.inputs)

    def instance_ids(self) -> List[int]:
        """All function identifiers owned by this function's instances."""
        return [self.func_id + k for k in range(self.nmbr_instances)]

    def input(self, name: str) -> IOParams:
        for io in self.inputs:
            if io.io_name == name:
                return io
        raise KeyError(f"function {self.func_name!r} has no input named {name!r}")


@dataclass
class ModuleParams:
    """Mirror of ``s_module_params`` — the whole peripheral."""

    mod_name: str
    bus_type: str
    data_width: int
    base_addr: int = 0
    hdl_type: str = "vhdl"
    func_id_width: int = 4
    packing_f: bool = False
    ld_burst_f: bool = False
    st_burst_f: bool = False
    dma_support_f: bool = False
    dma_width: int = 0
    dma_max_bits: int = 0
    funcs: List[FuncParams] = field(default_factory=list)

    @property
    def nmbr_funcs(self) -> int:
        return len(self.funcs)

    @property
    def total_instances(self) -> int:
        return sum(f.nmbr_instances for f in self.funcs)

    def func(self, name: str) -> FuncParams:
        for func in self.funcs:
            if func.func_name == name:
                return func
        raise KeyError(f"module {self.mod_name!r} has no function named {name!r}")

    def func_by_id(self, func_id: int) -> FuncParams:
        for func in self.funcs:
            if func_id in func.instance_ids():
                return func
        raise KeyError(f"module {self.mod_name!r} has no function with id {func_id}")

    def address_of(self, func_id: int) -> int:
        """Memory address assigned to ``func_id`` on a memory-mapped bus.

        Each function identifier owns one bus-word-aligned slot above the
        peripheral's base address, matching the ``SET_ADDRESS`` macro.
        """
        return self.base_addr + func_id * (self.data_width // 8)


# -- construction --------------------------------------------------------------


def _io_from_parameter(param: Parameter, decl: Declaration) -> IOParams:
    used_as_index = any(
        other.bound is not None and other.bound.is_implicit and other.bound.index == param.name
        for other in decl.params
        if other is not param
    )
    if decl.return_bound is not None and decl.return_bound.is_implicit:
        used_as_index = used_as_index or decl.return_bound.index == param.name
    bound = param.bound
    return IOParams(
        io_name=param.name,
        io_type=param.ctype.name + ("*" if param.is_pointer else ""),
        io_width=param.ctype.width,
        io_number=(bound.count if bound is not None and bound.is_explicit else (1 if not param.is_pointer else None)),
        is_pointer=param.is_pointer,
        is_packed=param.packed,
        is_dma=param.dma,
        index_var=(bound.index if bound is not None and bound.is_implicit else None),
        has_index=bound is not None and bound.is_implicit,
        used_as_index=used_as_index,
        is_float=param.ctype.is_float,
    )


def _output_from_declaration(decl: Declaration) -> Optional[IOParams]:
    output = decl.output_parameter()
    if output is None:
        return None
    io = _io_from_parameter(output, decl)
    io.used_as_index = False
    return io


def build_params(spec: SpliceSpec, bus: BusCapabilities) -> ModuleParams:
    """Build the shared parameter structure from a validated specification."""
    target = spec.target
    bus_width = target.bus_width or bus.widths[0]

    funcs: List[FuncParams] = []
    next_id = STATUS_FUNC_ID + 1
    for decl in spec.declarations:
        inputs = [_io_from_parameter(p, decl) for p in decl.params]
        output = _output_from_declaration(decl)
        widths = [io.io_width for io in inputs] + ([output.io_width] if output else [])
        func = FuncParams(
            func_name=decl.name,
            func_id=next_id,
            nmbr_instances=decl.instances,
            inputs=inputs,
            output=output,
            has_output=output is not None,
            splitting_f=any(width > bus_width for width in widths),
            indexing_f=decl.uses_implicit_bounds,
            blocking=decl.blocking,
            uses_dma=decl.uses_dma,
            uses_packing=decl.uses_packing,
        )
        funcs.append(func)
        next_id += decl.instances

    highest_id = max((f.func_id + f.nmbr_instances - 1 for f in funcs), default=0)
    func_id_width = max(1, highest_id.bit_length())

    return ModuleParams(
        mod_name=target.device_name or "splice_device",
        bus_type=(target.bus_type or bus.name).lower(),
        data_width=bus_width,
        base_addr=target.base_address or 0,
        hdl_type=target.target_hdl,
        func_id_width=func_id_width,
        packing_f=target.packing_support,
        ld_burst_f=target.burst_support and bus.supports_burst,
        st_burst_f=target.burst_support and bus.supports_burst,
        dma_support_f=target.dma_support and bus.supports_dma,
        dma_width=bus_width if (target.dma_support and bus.supports_dma) else 0,
        dma_max_bits=bus.max_dma_bytes * 8,
        funcs=funcs,
    )
