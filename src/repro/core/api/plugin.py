"""Bus adapter plugins — the extension API of Chapter 7.

A plugin supplies everything Splice needs to target a bus it has never seen:

* ``capabilities`` — the :class:`~repro.core.capabilities.BusCapabilities`
  sheet used by validation (the *parameter checking routine* of §7.1.2 is
  expressed declaratively through it, plus an optional ``parameter_checker``
  hook for bus-specific rules),
* ``marker_loader`` — extra ``%SYMBOL%`` replacements for the adapter
  template (§7.1.2),
* ``template`` — the annotated HDL adapter template itself,
* ``interface_builder`` — a callable producing the adapter's structural IR,
* ``macro_library`` — the software macro set of §7.1.3, and
* optionally ``adapter_class`` / ``slave_bundle`` / ``master`` factories so
  the simulated SoC can also run designs targeted at the new bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.capabilities import BusCapabilities
from repro.core.drivers.macro_lib import SoftwareMacroLibrary
from repro.core.params import ModuleParams
from repro.core.syntax.errors import SplicePluginError

ParameterChecker = Callable[[ModuleParams, BusCapabilities], None]
InterfaceBuilder = Callable[[ModuleParams, BusCapabilities], object]


@dataclass
class BusAdapterPlugin:
    """Everything required to add one bus interface to Splice."""

    name: str
    capabilities: BusCapabilities
    macro_library: SoftwareMacroLibrary
    template: str = ""
    markers: Dict[str, str] = field(default_factory=dict)
    interface_builder: Optional[InterfaceBuilder] = None
    parameter_checker: Optional[ParameterChecker] = None
    adapter_class: Optional[Callable] = None
    slave_bundle_factory: Optional[Callable] = None
    master_factory: Optional[Callable] = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SplicePluginError(f"plugin bus name {self.name!r} must be a valid identifier")
        if self.capabilities.name.lower() != self.name.lower():
            raise SplicePluginError(
                f"plugin name {self.name!r} does not match its capability sheet "
                f"({self.capabilities.name!r})"
            )

    @property
    def library_file_name(self) -> str:
        """The ``lib<x>_interface.so`` name this plugin would ship as (§7.2)."""
        return f"lib{self.name.lower()}_interface.so"

    def check_parameters(self, module: ModuleParams) -> None:
        """Run the plugin's bus-specific parameter checking routine, if any."""
        if self.parameter_checker is not None:
            self.parameter_checker(module, self.capabilities)


class PluginRegistry:
    """Plugins indexed by the name used in ``%bus_type`` directives."""

    def __init__(self) -> None:
        self._plugins: Dict[str, BusAdapterPlugin] = {}

    def register(self, plugin: BusAdapterPlugin, *, replace: bool = False) -> BusAdapterPlugin:
        key = plugin.name.lower()
        if key in self._plugins and not replace:
            raise SplicePluginError(f"a plugin for bus {key!r} is already registered")
        self._plugins[key] = plugin
        return plugin

    def get(self, name: str) -> Optional[BusAdapterPlugin]:
        return self._plugins.get(name.lower())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._plugins

    def names(self):
        return sorted(self._plugins)

    def capabilities(self) -> Dict[str, BusCapabilities]:
        return {name: plugin.capabilities for name, plugin in self._plugins.items()}


def load_plugin(module_like) -> BusAdapterPlugin:
    """Build a plugin from a module-like object exposing ``SPLICE_PLUGIN``.

    This mirrors loading ``lib<x>_interface.so`` at run time: the object (a
    Python module, class or namespace) must expose a ``SPLICE_PLUGIN``
    attribute holding a :class:`BusAdapterPlugin`.
    """
    plugin = getattr(module_like, "SPLICE_PLUGIN", None)
    if plugin is None:
        raise SplicePluginError(
            "external bus library does not expose a SPLICE_PLUGIN attribute"
        )
    if not isinstance(plugin, BusAdapterPlugin):
        raise SplicePluginError("SPLICE_PLUGIN must be a BusAdapterPlugin instance")
    return plugin
