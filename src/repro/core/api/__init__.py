"""The Splice extension API (Chapter 7).

External bus libraries plug new interfaces into the tool by providing the
three required routines of Section 7.1.2 — a parameter checker, a marker
loader and a bus interface generator — plus a software macro library
(Section 7.1.3).  :class:`BusAdapterPlugin` bundles those pieces;
:class:`PluginRegistry` stores them under the name used by ``%bus_type``,
mirroring the ``lib<x>_interface.so`` naming convention of Section 7.2.
"""

from repro.core.api.plugin import BusAdapterPlugin, PluginRegistry, load_plugin

__all__ = ["BusAdapterPlugin", "PluginRegistry", "load_plugin"]
