"""Bus capability descriptions used by validation and generation.

Each supported system interface advertises what it can physically do — the
widths it supports, whether it is memory mapped, whether DMA / burst
transactions exist, and whether its transfer protocol is pseudo-asynchronous
or strictly synchronous (Chapter 4).  The parameter-checking routine of every
bus adapter (Section 7.1.2) compares the user's target specification against
these capabilities before any hardware is generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class BusCapabilities:
    """What a target system interface can physically support."""

    name: str
    #: Data widths (bits) the interface can be configured for.
    widths: Tuple[int, ...] = (32,)
    #: Whether peripherals are addressed through memory mappings.
    memory_mapped: bool = True
    #: Whether the native protocol can pause transactions (pseudo-async) or
    #: must complete every beat in a single cycle (strictly synchronous).
    pseudo_asynchronous: bool = True
    #: Whether the physical bus provides DMA channels.
    supports_dma: bool = False
    #: Whether the physical bus provides burst (double/quad word) transfers.
    supports_burst: bool = False
    #: Maximum bytes a single DMA transaction may move (0 when DMA is absent).
    max_dma_bytes: int = 0
    #: Fixed number of bus transactions needed to set up / tear down a DMA
    #: transfer (Section 9.2.1 notes the PLB needs four).
    dma_setup_transactions: int = 0
    #: Nominal clock rate in Hz, used only for reporting.
    clock_hz: int = 100_000_000

    def supports_width(self, width: int) -> bool:
        return width in self.widths

    @property
    def strictly_synchronous(self) -> bool:
        return not self.pseudo_asynchronous


#: Capability sheet for the interfaces the paper discusses (Sections 2.3, 4.3, 9.2).
_DEFAULT_CAPABILITIES: Dict[str, BusCapabilities] = {
    # IBM CoreConnect Processor Local Bus: 32/64-bit, memory mapped,
    # pseudo-asynchronous, DMA up to 256 bytes with 4 setup transactions.
    "plb": BusCapabilities(
        name="plb",
        widths=(32, 64),
        memory_mapped=True,
        pseudo_asynchronous=True,
        supports_dma=True,
        supports_burst=True,
        max_dma_bytes=256,
        dma_setup_transactions=4,
    ),
    # IBM CoreConnect On-chip Peripheral Bus: 32-bit, memory mapped,
    # pseudo-asynchronous; Splice only generates simple read/write support.
    "opb": BusCapabilities(
        name="opb",
        widths=(32,),
        memory_mapped=True,
        pseudo_asynchronous=True,
        supports_dma=False,
        supports_burst=False,
    ),
    # Xilinx Fabric Co-processor Bus: 32-bit, opcode-driven (not memory
    # mapped), pseudo-asynchronous, double/quad bursts, no DMA.
    "fcb": BusCapabilities(
        name="fcb",
        widths=(32,),
        memory_mapped=False,
        pseudo_asynchronous=True,
        supports_dma=False,
        supports_burst=True,
    ),
    # AMBA Peripheral Bus: 32-bit, memory mapped, strictly synchronous.
    "apb": BusCapabilities(
        name="apb",
        widths=(32,),
        memory_mapped=True,
        pseudo_asynchronous=False,
        supports_dma=False,
        supports_burst=False,
    ),
    # AMBA High-speed Bus: listed as future work in the paper; provided here
    # through the extension API example (32/64-bit, DMA-capable).
    "ahb": BusCapabilities(
        name="ahb",
        widths=(32, 64),
        memory_mapped=True,
        pseudo_asynchronous=True,
        supports_dma=True,
        supports_burst=True,
        max_dma_bytes=1024,
        dma_setup_transactions=2,
    ),
}


def default_capabilities() -> Dict[str, BusCapabilities]:
    """A fresh copy of the built-in capability registry."""
    return dict(_DEFAULT_CAPABILITIES)


def capabilities_for(bus_type: str) -> BusCapabilities:
    """Look up capabilities for ``bus_type`` (case-insensitive)."""
    try:
        return _DEFAULT_CAPABILITIES[bus_type.lower()]
    except KeyError:
        raise KeyError(
            f"no built-in capability sheet for bus {bus_type!r}; register one via the extension API"
        ) from None
