"""Splice syntax front-end (Chapter 3 of the paper).

The public entry point is :func:`parse_spec`, which turns the text of a
Splice specification file (target directives + interface declarations) into a
:class:`repro.core.syntax.ast.SpliceSpec`.
"""

from repro.core.syntax.errors import (
    SpliceError,
    SpliceSyntaxError,
    SpliceValidationError,
)
from repro.core.syntax.ctypes import CType, TypeTable
from repro.core.syntax.ast import (
    Bound,
    BoundKind,
    Declaration,
    Parameter,
    SpliceSpec,
    TargetSpec,
)
from repro.core.syntax.parser import parse_spec, parse_declaration, parse_directive
from repro.core.syntax.validation import validate_spec

__all__ = [
    "SpliceError",
    "SpliceSyntaxError",
    "SpliceValidationError",
    "CType",
    "TypeTable",
    "Bound",
    "BoundKind",
    "Declaration",
    "Parameter",
    "SpliceSpec",
    "TargetSpec",
    "parse_spec",
    "parse_declaration",
    "parse_directive",
    "validate_spec",
]
