"""Top-level parser turning a Splice specification file into a :class:`SpliceSpec`.

A specification file interleaves (in any order):

* ``//`` comments and blank lines (ignored),
* ``%`` target-specification directives (Section 3.2), and
* interface declarations, one per statement (Section 3.1).

Directives are processed before declarations so that ``%user_type``
definitions are available regardless of where they appear in the file, which
matches the paper's statement that "at run time, Splice simply collects all
the definitions".
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.syntax.ast import Declaration, SpliceSpec, TargetSpec
from repro.core.syntax.ctypes import TypeTable
from repro.core.syntax.declarations import parse_declaration
from repro.core.syntax.directives import DirectiveProcessor, parse_directive
from repro.core.syntax.errors import SpliceSyntaxError

__all__ = ["parse_spec", "parse_declaration", "parse_directive", "split_source"]


def _strip_comment(line: str) -> str:
    """Remove a trailing ``//`` comment (the only comment form in the examples)."""
    index = line.find("//")
    return line if index < 0 else line[:index]


def split_source(source: str) -> Tuple[List[Tuple[int, str]], List[Tuple[int, str]]]:
    """Split source text into ``(directive_lines, declaration_statements)``.

    Declarations may span multiple physical lines; a statement ends at a
    ``;`` (or at the end of a line that closes its parameter list, for the
    semicolon-free spelling tolerated by the declaration parser).
    """
    directives: List[Tuple[int, str]] = []
    declarations: List[Tuple[int, str]] = []
    pending: List[str] = []
    pending_line = 0

    for number, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if line.startswith("%"):
            if pending:
                raise SpliceSyntaxError(
                    "directive found in the middle of an unterminated declaration",
                    line=number,
                    text=raw,
                )
            directives.append((number, line))
            continue
        if not pending:
            pending_line = number
        pending.append(line)
        joined = " ".join(pending)
        if joined.rstrip().endswith(";") or _balanced_and_closed(joined):
            declarations.append((pending_line, joined))
            pending = []
    if pending:
        declarations.append((pending_line, " ".join(pending)))
    return directives, declarations


def _balanced_and_closed(text: str) -> bool:
    """Heuristic: a statement is complete when its bracket pairs are closed."""
    opens = text.count("(") + text.count("{")
    closes = text.count(")") + text.count("}")
    return opens > 0 and opens == closes and not text.rstrip().endswith(",")


def parse_spec(
    source: str,
    *,
    types: Optional[TypeTable] = None,
    target: Optional[TargetSpec] = None,
) -> SpliceSpec:
    """Parse a full specification file.

    Parameters
    ----------
    source:
        Text of the specification (directives + declarations).
    types / target:
        Optional pre-populated type table / target specification, used by the
        extension API when a host application injects definitions
        programmatically before parsing.
    """
    directive_lines, declaration_lines = split_source(source)

    processor = DirectiveProcessor(target=target, types=types)
    for line, text in directive_lines:
        try:
            processor.apply_line(text, line)
        except SpliceSyntaxError:
            raise
        except Exception as exc:  # directive handlers raise validation errors
            raise type(exc)(f"{exc} (line {line})") from exc

    declarations: List[Declaration] = []
    for line, text in declaration_lines:
        try:
            declarations.append(parse_declaration(text, processor.types))
        except SpliceSyntaxError as exc:
            raise SpliceSyntaxError(str(exc), line=line) from exc

    names = [d.name for d in declarations]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise SpliceSyntaxError(
            f"duplicate interface declaration name(s): {', '.join(sorted(duplicates))}"
        )

    return SpliceSpec(
        target=processor.target,
        declarations=declarations,
        types=processor.types,
        source=source,
    )
