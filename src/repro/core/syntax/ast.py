"""Abstract syntax for Splice interface declarations and target specifications.

These dataclasses are the output of the parser and the input to validation,
the shared-parameter builder (Figure 7.3), and the generators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.syntax.ctypes import CType, TypeTable


class BoundKind(enum.Enum):
    """How many elements a pointer parameter transfers (Sections 3.1.2)."""

    EXPLICIT = "explicit"  #: a literal count, e.g. ``int*:5 x``
    IMPLICIT = "implicit"  #: the value of another parameter, e.g. ``int*:x y``


@dataclass(frozen=True)
class Bound:
    """The element count attached to a pointer transfer."""

    kind: BoundKind
    count: Optional[int] = None
    index: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind is BoundKind.EXPLICIT and (self.count is None or self.count <= 0):
            raise ValueError("explicit bounds require a positive element count")
        if self.kind is BoundKind.IMPLICIT and not self.index:
            raise ValueError("implicit bounds require the name of the indexing parameter")

    @property
    def is_explicit(self) -> bool:
        return self.kind is BoundKind.EXPLICIT

    @property
    def is_implicit(self) -> bool:
        return self.kind is BoundKind.IMPLICIT

    def describe(self) -> str:
        return str(self.count) if self.is_explicit else str(self.index)


@dataclass
class Parameter:
    """One input (or the output) of an interface declaration."""

    name: str
    ctype: CType
    is_pointer: bool = False
    bound: Optional[Bound] = None
    packed: bool = False
    dma: bool = False

    @property
    def is_array(self) -> bool:
        """True for pointer transfers with a bound (explicit or implicit)."""
        return self.is_pointer and self.bound is not None

    @property
    def element_count(self) -> Optional[int]:
        """Static element count, or ``None`` for implicit (runtime) bounds."""
        if not self.is_pointer or self.bound is None:
            return 1 if not self.is_pointer else None
        return self.bound.count if self.bound.is_explicit else None

    def words_per_element(self, bus_width: int) -> int:
        """Bus beats required per element (handles "split" transfers, §3.1.4)."""
        return self.ctype.words(bus_width)

    def pack_factor(self, bus_width: int) -> int:
        """Values per beat when packing applies (1 when it does not)."""
        if not self.packed:
            return 1
        return max(1, self.ctype.pack_factor(bus_width))

    def describe(self) -> str:
        """Render the parameter back in (canonical) Splice syntax."""
        text = self.ctype.name
        if self.is_pointer:
            text += "*"
        if self.bound is not None:
            text += f":{self.bound.describe()}"
        if self.packed:
            text += "+"
        if self.dma:
            text += "^"
        return f"{text} {self.name}"


@dataclass
class Declaration:
    """A single interface declaration (one hardware function)."""

    name: str
    return_type: CType
    params: List[Parameter] = field(default_factory=list)
    returns_pointer: bool = False
    return_bound: Optional[Bound] = None
    return_packed: bool = False
    return_dma: bool = False
    instances: int = 1
    blocking: bool = True
    source: Optional[str] = None

    @property
    def has_output(self) -> bool:
        """Whether the hardware passes a value back to software."""
        return not self.return_type.is_void

    @property
    def uses_dma(self) -> bool:
        return self.return_dma or any(p.dma for p in self.params)

    @property
    def uses_packing(self) -> bool:
        return self.return_packed or any(p.packed for p in self.params)

    @property
    def uses_implicit_bounds(self) -> bool:
        bounds = [p.bound for p in self.params if p.bound is not None]
        if self.return_bound is not None:
            bounds.append(self.return_bound)
        return any(b.is_implicit for b in bounds)

    def output_parameter(self) -> Optional[Parameter]:
        """The return value expressed as a :class:`Parameter`, or ``None``."""
        if not self.has_output:
            return None
        return Parameter(
            name="result",
            ctype=self.return_type,
            is_pointer=self.returns_pointer,
            bound=self.return_bound,
            packed=self.return_packed,
            dma=self.return_dma,
        )

    def parameter(self, name: str) -> Parameter:
        for param in self.params:
            if param.name == name:
                return param
        raise KeyError(f"declaration {self.name!r} has no parameter {name!r}")

    def describe(self) -> str:
        """Render the declaration back in canonical Splice syntax."""
        ret = "nowait" if not self.blocking else self.return_type.name
        if self.blocking and self.returns_pointer:
            ret += "*"
            if self.return_bound is not None:
                ret += f":{self.return_bound.describe()}"
        args = ", ".join(p.describe() for p in self.params)
        suffix = f":{self.instances}" if self.instances > 1 else ""
        return f"{ret} {self.name}({args}){suffix};"


@dataclass
class TargetSpec:
    """The ``%``-directive block binding declarations to a physical bus."""

    device_name: Optional[str] = None
    bus_type: Optional[str] = None
    bus_width: Optional[int] = None
    base_address: Optional[int] = None
    burst_support: bool = False
    dma_support: bool = False
    packing_support: bool = False
    target_hdl: str = "vhdl"
    user_types: List[Tuple[str, str, int]] = field(default_factory=list)
    extra: Dict[str, str] = field(default_factory=dict)

    def directive_summary(self) -> Dict[str, object]:
        """A flat dictionary view used by reports and tests."""
        return {
            "device_name": self.device_name,
            "bus_type": self.bus_type,
            "bus_width": self.bus_width,
            "base_address": self.base_address,
            "burst_support": self.burst_support,
            "dma_support": self.dma_support,
            "packing_support": self.packing_support,
            "target_hdl": self.target_hdl,
            "user_types": list(self.user_types),
            **self.extra,
        }


@dataclass
class SpliceSpec:
    """A fully parsed specification: target directives plus declarations."""

    target: TargetSpec
    declarations: List[Declaration] = field(default_factory=list)
    types: TypeTable = field(default_factory=TypeTable)
    source: Optional[str] = None

    def declaration(self, name: str) -> Declaration:
        for decl in self.declarations:
            if decl.name == name:
                return decl
        raise KeyError(f"specification has no declaration named {name!r}")

    @property
    def total_instances(self) -> int:
        """Total hardware function instances, counting multi-instance copies."""
        return sum(decl.instances for decl in self.declarations)
