"""Parser for Splice interface declarations (Section 3.1).

Grammar, informally (Figure 3.8)::

    splice_proto := splice_type extensions? name '(' splice_decl_list? ')' multiple? ';'
    splice_decl  := c_type extensions? identifier
    extensions   := '*'  (':' (digits | identifier))?  '+'?  '^'?
    multiple     := ':' digits
    splice_type  := c_type | 'nowait'

The real tool (and the worked examples) allow the extension operators in
either order and allow the bound to appear after the parameter name
(``char* x:8+``); this parser accepts the same freedom while rejecting
ambiguous or contradictory combinations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.syntax.ast import Bound, BoundKind, Declaration, Parameter
from repro.core.syntax.ctypes import NOWAIT_KEYWORD, TYPE_KEYWORDS, CType, TypeTable
from repro.core.syntax.errors import SpliceSyntaxError
from repro.core.syntax.lexer import TokenKind, TokenStream


def _parse_number(text: str) -> int:
    return int(text, 16) if text.lower().startswith("0x") else int(text, 10)


class _ExtensionSet:
    """Accumulates ``* : + ^`` extensions attached to one type or parameter."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pointer = False
        self.packed = False
        self.dma = False
        self.bound: Optional[Bound] = None

    def add_pointer(self) -> None:
        if self.pointer:
            raise SpliceSyntaxError("multiple '*' markers on a single parameter", text=self.source)
        self.pointer = True

    def add_packed(self) -> None:
        if self.packed:
            raise SpliceSyntaxError("duplicate '+' (packing) marker", text=self.source)
        self.packed = True

    def add_dma(self) -> None:
        if self.dma:
            raise SpliceSyntaxError("duplicate '^' (DMA) marker", text=self.source)
        self.dma = True

    def add_bound(self, bound: Bound) -> None:
        if self.bound is not None:
            raise SpliceSyntaxError("duplicate ':' bound on a single parameter", text=self.source)
        self.bound = bound


def _parse_type(stream: TokenStream, types: TypeTable) -> CType:
    """Parse a (possibly multi-word) type name at the current position."""
    words: List[str] = []
    while stream.current.kind is TokenKind.IDENT:
        candidate = words + [stream.current.text]
        joined = " ".join(candidate)
        lookahead_is_type_word = stream.current.text in TYPE_KEYWORDS
        if types.knows(joined) or (lookahead_is_type_word and not types.knows(" ".join(words))):
            words.append(stream.advance().text)
            continue
        if not words and types.knows(stream.current.text):
            words.append(stream.advance().text)
            continue
        break
    if not words:
        raise SpliceSyntaxError(
            f"expected a type name, found {stream.current.text!r}", text=stream.source
        )
    joined = " ".join(words)
    # A greedy scan may swallow the parameter name when the type is a user
    # typedef followed by an identifier; back off one word if needed.
    while not types.knows(joined) and len(words) > 1:
        words.pop()
        joined = " ".join(words)
    return types.lookup(joined)


def _parse_bound(stream: TokenStream) -> Bound:
    """Parse the element count following a ':' operator."""
    if stream.current.kind is TokenKind.NUMBER:
        count = _parse_number(stream.advance().text)
        return Bound(BoundKind.EXPLICIT, count=count)
    if stream.current.kind is TokenKind.IDENT:
        return Bound(BoundKind.IMPLICIT, index=stream.advance().text)
    raise SpliceSyntaxError(
        "expected an element count or parameter name after ':'", text=stream.source
    )


def _parse_parameter(stream: TokenStream, types: TypeTable) -> Parameter:
    """Parse one ``splice_decl`` (type, extensions, name in flexible order)."""
    ctype = _parse_type(stream, types)
    extensions = _ExtensionSet(stream.source)
    name: Optional[str] = None

    while stream.current.kind not in (TokenKind.COMMA, TokenKind.RPAREN, TokenKind.END):
        token = stream.current
        if token.kind is TokenKind.STAR:
            stream.advance()
            extensions.add_pointer()
        elif token.kind is TokenKind.PLUS:
            stream.advance()
            extensions.add_packed()
        elif token.kind is TokenKind.CARET:
            stream.advance()
            extensions.add_dma()
        elif token.kind is TokenKind.COLON:
            stream.advance()
            extensions.add_bound(_parse_bound(stream))
        elif token.kind is TokenKind.IDENT:
            if name is not None:
                raise SpliceSyntaxError(
                    f"unexpected identifier {token.text!r}; parameter already named {name!r}",
                    text=stream.source,
                )
            name = stream.advance().text
        else:
            raise SpliceSyntaxError(
                f"unexpected token {token.text!r} in parameter list", text=stream.source
            )

    if name is None:
        raise SpliceSyntaxError(
            f"parameter of type {ctype.name!r} is missing a name", text=stream.source
        )
    if ctype.is_void:
        raise SpliceSyntaxError("'void' cannot be used as a parameter type", text=stream.source)
    if (extensions.bound or extensions.packed or extensions.dma) and not extensions.pointer:
        raise SpliceSyntaxError(
            f"parameter {name!r} uses ':'/'+'/'^' extensions without a pointer '*'",
            text=stream.source,
        )
    return Parameter(
        name=name,
        ctype=ctype,
        is_pointer=extensions.pointer,
        bound=extensions.bound,
        packed=extensions.packed,
        dma=extensions.dma,
    )


def _parse_return(stream: TokenStream, types: TypeTable) -> Tuple[CType, bool, _ExtensionSet]:
    """Parse the return type, handling the ``nowait`` pseudo type."""
    blocking = True
    if stream.current.kind is TokenKind.IDENT and stream.current.text == NOWAIT_KEYWORD:
        stream.advance()
        return types.lookup("void"), False, _ExtensionSet(stream.source)
    ctype = _parse_type(stream, types)
    extensions = _ExtensionSet(stream.source)
    while stream.current.kind in (TokenKind.STAR, TokenKind.PLUS, TokenKind.CARET, TokenKind.COLON):
        token = stream.advance()
        if token.kind is TokenKind.STAR:
            extensions.add_pointer()
        elif token.kind is TokenKind.PLUS:
            extensions.add_packed()
        elif token.kind is TokenKind.CARET:
            extensions.add_dma()
        else:
            extensions.add_bound(_parse_bound(stream))
    return ctype, blocking, extensions


def parse_declaration(text: str, types: Optional[TypeTable] = None) -> Declaration:
    """Parse a single interface declaration string into a :class:`Declaration`."""
    types = types or TypeTable()
    stream = TokenStream.from_text(text)

    blocking = True
    if stream.current.kind is TokenKind.IDENT and stream.current.text == NOWAIT_KEYWORD:
        stream.advance()
        return_type = types.lookup("void")
        return_ext = _ExtensionSet(text)
        blocking = False
    else:
        return_type, blocking, return_ext = _parse_return(stream, types)

    name_token = stream.expect(TokenKind.IDENT, "a function name")
    func_name = name_token.text

    stream.expect(TokenKind.LPAREN, "'(' to open the parameter list")
    params: List[Parameter] = []
    if stream.current.kind is not TokenKind.RPAREN:
        while True:
            params.append(_parse_parameter(stream, types))
            if stream.accept(TokenKind.COMMA):
                continue
            break
    stream.expect(TokenKind.RPAREN, "')' to close the parameter list")

    instances = 1
    if stream.accept(TokenKind.COLON):
        count_token = stream.expect(TokenKind.NUMBER, "an instance count after ':'")
        instances = _parse_number(count_token.text)
        if instances < 1:
            raise SpliceSyntaxError("instance count must be at least 1", text=text)

    stream.accept(TokenKind.SEMICOLON)
    if not stream.at_end():
        raise SpliceSyntaxError(
            f"unexpected trailing text {stream.current.text!r} after declaration", text=text
        )

    seen = set()
    for param in params:
        if param.name in seen:
            raise SpliceSyntaxError(
                f"duplicate parameter name {param.name!r} in declaration {func_name!r}", text=text
            )
        seen.add(param.name)

    if (return_ext.bound or return_ext.packed or return_ext.dma) and not return_ext.pointer:
        raise SpliceSyntaxError(
            "return value uses ':'/'+'/'^' extensions without a pointer '*'", text=text
        )

    return Declaration(
        name=func_name,
        return_type=return_type,
        params=params,
        returns_pointer=return_ext.pointer,
        return_bound=return_ext.bound,
        return_packed=return_ext.packed,
        return_dma=return_ext.dma,
        instances=instances,
        blocking=blocking,
        source=text.strip(),
    )
