"""Tokenizer for Splice interface declarations.

The declaration syntax (Figures 3.1–3.8) is small: identifiers, integers, the
extension operators ``* : + ^``, parentheses/braces, commas and semicolons.
The worked example in Figure 8.2 uses braces instead of parentheses around
the argument list, so both spellings are accepted.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.core.syntax.errors import SpliceSyntaxError


class TokenKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STAR = "*"
    COLON = ":"
    PLUS = "+"
    CARET = "^"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    SEMICOLON = ";"
    END = "end"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    text: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r})"


_TOKEN_RE = re.compile(
    r"""
    (?P<space>\s+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>0[xX][0-9A-Fa-f]+|\d+)
  | (?P<punct>[*:+^(),;{}])
    """,
    re.VERBOSE,
)

_PUNCT_KINDS = {
    "*": TokenKind.STAR,
    ":": TokenKind.COLON,
    "+": TokenKind.PLUS,
    "^": TokenKind.CARET,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LPAREN,
    "}": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
}


def tokenize(text: str) -> List[Token]:
    """Tokenize one declaration; raises :class:`SpliceSyntaxError` on junk."""
    tokens: List[Token] = []
    position = 0
    length = len(text)
    while position < length:
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SpliceSyntaxError(
                f"unexpected character {text[position]!r} in declaration", text=text
            )
        position = match.end()
        if match.lastgroup == "space":
            continue
        if match.lastgroup == "ident":
            tokens.append(Token(TokenKind.IDENT, match.group("ident"), match.start()))
        elif match.lastgroup == "number":
            tokens.append(Token(TokenKind.NUMBER, match.group("number"), match.start()))
        else:
            punct = match.group("punct")
            tokens.append(Token(_PUNCT_KINDS[punct], punct, match.start()))
    tokens.append(Token(TokenKind.END, "", length))
    return tokens


class TokenStream:
    """Cursor over a token list with small lookahead helpers."""

    def __init__(self, tokens: List[Token], source: str) -> None:
        self._tokens = tokens
        self._index = 0
        self.source = source

    @classmethod
    def from_text(cls, text: str) -> "TokenStream":
        return cls(tokenize(text), text)

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def peek(self, offset: int = 1) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.END:
            self._index += 1
        return token

    def accept(self, kind: TokenKind) -> Token | None:
        if self.current.kind is kind:
            return self.advance()
        return None

    def expect(self, kind: TokenKind, what: str) -> Token:
        if self.current.kind is not kind:
            raise SpliceSyntaxError(
                f"expected {what}, found {self.current.text or 'end of declaration'!r}",
                text=self.source,
            )
        return self.advance()

    def at_end(self) -> bool:
        return self.current.kind is TokenKind.END

    def remaining(self) -> Iterator[Token]:
        return iter(self._tokens[self._index:])
