"""Error types raised by the Splice front-end and generators.

The paper repeatedly specifies that the tool "will generate an error message
and refuse to proceed further until the issue has been addressed" — these
exception classes are that refusal.
"""

from __future__ import annotations

from typing import Optional


class SpliceError(Exception):
    """Base class for every error raised by the Splice reproduction."""


class SpliceSyntaxError(SpliceError):
    """A declaration or directive could not be parsed.

    Parameters
    ----------
    message:
        Human-readable description of the problem.
    line:
        1-based line number in the specification source, when known.
    text:
        The offending source text, when known.
    """

    def __init__(self, message: str, line: Optional[int] = None, text: Optional[str] = None) -> None:
        self.line = line
        self.text = text
        location = f" (line {line})" if line is not None else ""
        snippet = f": {text.strip()!r}" if text else ""
        super().__init__(f"{message}{location}{snippet}")


class SpliceValidationError(SpliceError):
    """A parsed specification violates a semantic rule (Section 3.3).

    Examples: an implicit pointer bound referencing a later parameter, a DMA
    declaration without ``%dma_support``, or a bus that cannot provide a
    requested feature.
    """


class SpliceGenerationError(SpliceError):
    """Hardware or software generation failed (missing template, bad macro, ...)."""


class SplicePluginError(SpliceError):
    """An external bus-adapter library violates the extension API contract."""
