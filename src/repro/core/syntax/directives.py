"""Parser for Splice target-specification directives (Section 3.2).

Each directive starts with ``%`` followed by a keyword and one or more
modifiers.  The worked example (Figure 8.2) spells some directives with a
space in the keyword (``% bus type plb``) and some with shortened names
(``% name``, ``% hdl type``); both spellings are accepted and normalised to
the canonical keywords used throughout the paper's prose.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.syntax.ast import TargetSpec
from repro.core.syntax.ctypes import TypeTable
from repro.core.syntax.errors import SpliceSyntaxError, SpliceValidationError

#: Canonical directive names (Figures 3.9–3.17).
CANONICAL_DIRECTIVES = (
    "bus_type",
    "bus_width",
    "base_address",
    "burst_support",
    "dma_support",
    "packing_support",
    "device_name",
    "target_hdl",
    "user_type",
)

#: Accepted aliases (mostly from the Figure 8.2 worked example).
DIRECTIVE_ALIASES: Dict[str, str] = {
    "name": "device_name",
    "device": "device_name",
    "hdl_type": "target_hdl",
    "hdl": "target_hdl",
    "data_packing": "packing_support",
    "packing": "packing_support",
    "burst": "burst_support",
    "dma": "dma_support",
    "address": "base_address",
}

_HDL_CHOICES = ("vhdl", "verilog")


@dataclass(frozen=True)
class Directive:
    """A parsed directive: canonical keyword plus raw argument text."""

    keyword: str
    argument: str
    line: Optional[int] = None


def _parse_bool(value: str, keyword: str, line: Optional[int]) -> bool:
    lowered = value.strip().lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    raise SpliceSyntaxError(
        f"%{keyword} expects 'true' or 'false', got {value.strip()!r}", line=line
    )


def _parse_int(value: str, keyword: str, line: Optional[int]) -> int:
    text = value.strip()
    try:
        return int(text, 16) if text.lower().startswith("0x") else int(text, 10)
    except ValueError:
        raise SpliceSyntaxError(f"%{keyword} expects an integer, got {text!r}", line=line) from None


def _parse_hex(value: str, keyword: str, line: Optional[int]) -> int:
    text = value.strip()
    if not re.fullmatch(r"0[xX][0-9A-Fa-f]+", text):
        raise SpliceSyntaxError(
            f"%{keyword} expects a hexadecimal address such as 0x80000000, got {text!r}",
            line=line,
        )
    return int(text, 16)


def _parse_identifier(value: str, keyword: str, line: Optional[int]) -> str:
    text = value.strip()
    if not re.fullmatch(r"[A-Za-z][A-Za-z0-9_]*", text):
        raise SpliceSyntaxError(
            f"%{keyword} expects an alphanumeric identifier, got {text!r}", line=line
        )
    return text


def split_directive(line_text: str, line: Optional[int] = None) -> Directive:
    """Split a raw ``%...`` line into a canonical :class:`Directive`."""
    body = line_text.strip()
    if not body.startswith("%"):
        raise SpliceSyntaxError("directives must start with '%'", line=line, text=line_text)
    body = body[1:].strip()
    if not body:
        raise SpliceSyntaxError("empty directive", line=line, text=line_text)

    words = body.split()
    # Greedily match the longest keyword formed by joining leading words with
    # underscores; this accepts both "%bus_type plb" and "% bus type plb".
    keyword = None
    consumed = 0
    for count in range(min(3, len(words)), 0, -1):
        candidate = "_".join(words[:count]).lower()
        canonical = DIRECTIVE_ALIASES.get(candidate, candidate)
        if canonical in CANONICAL_DIRECTIVES:
            keyword = canonical
            consumed = count
            break
    if keyword is None:
        raise SpliceSyntaxError(
            f"unknown directive %{words[0]}", line=line, text=line_text
        )
    argument = " ".join(words[consumed:])
    return Directive(keyword=keyword, argument=argument, line=line)


class DirectiveProcessor:
    """Applies parsed directives to a :class:`TargetSpec` and a type table."""

    def __init__(self, target: Optional[TargetSpec] = None, types: Optional[TypeTable] = None) -> None:
        self.target = target or TargetSpec()
        self.types = types or TypeTable()
        self._seen: Dict[str, int] = {}
        self._handlers: Dict[str, Callable[[Directive], None]] = {
            "bus_type": self._handle_bus_type,
            "bus_width": self._handle_bus_width,
            "base_address": self._handle_base_address,
            "burst_support": self._handle_burst,
            "dma_support": self._handle_dma,
            "packing_support": self._handle_packing,
            "device_name": self._handle_device_name,
            "target_hdl": self._handle_target_hdl,
            "user_type": self._handle_user_type,
        }

    def apply(self, directive: Directive) -> None:
        """Apply one directive, rejecting contradictory redefinitions."""
        if directive.keyword != "user_type" and directive.keyword in self._seen:
            raise SpliceValidationError(
                f"directive %{directive.keyword} specified more than once "
                f"(lines {self._seen[directive.keyword]} and {directive.line})"
            )
        self._seen[directive.keyword] = directive.line or -1
        self._handlers[directive.keyword](directive)

    def apply_line(self, text: str, line: Optional[int] = None) -> None:
        self.apply(split_directive(text, line))

    # -- individual handlers --------------------------------------------------

    def _require_argument(self, directive: Directive) -> str:
        if not directive.argument.strip():
            raise SpliceSyntaxError(
                f"%{directive.keyword} requires an argument", line=directive.line
            )
        return directive.argument.strip()

    def _handle_bus_type(self, directive: Directive) -> None:
        self.target.bus_type = _parse_identifier(
            self._require_argument(directive), directive.keyword, directive.line
        ).lower()

    def _handle_bus_width(self, directive: Directive) -> None:
        width = _parse_int(self._require_argument(directive), directive.keyword, directive.line)
        if width <= 0 or width % 8 != 0:
            raise SpliceValidationError(
                f"%bus_width must be a positive multiple of 8 bits, got {width}"
            )
        self.target.bus_width = width

    def _handle_base_address(self, directive: Directive) -> None:
        self.target.base_address = _parse_hex(
            self._require_argument(directive), directive.keyword, directive.line
        )

    def _handle_burst(self, directive: Directive) -> None:
        self.target.burst_support = _parse_bool(
            self._require_argument(directive), directive.keyword, directive.line
        )

    def _handle_dma(self, directive: Directive) -> None:
        self.target.dma_support = _parse_bool(
            self._require_argument(directive), directive.keyword, directive.line
        )

    def _handle_packing(self, directive: Directive) -> None:
        self.target.packing_support = _parse_bool(
            self._require_argument(directive), directive.keyword, directive.line
        )

    def _handle_device_name(self, directive: Directive) -> None:
        self.target.device_name = _parse_identifier(
            self._require_argument(directive), directive.keyword, directive.line
        )

    def _handle_target_hdl(self, directive: Directive) -> None:
        value = self._require_argument(directive).lower()
        if value not in _HDL_CHOICES:
            raise SpliceValidationError(
                f"%target_hdl must be one of {', '.join(_HDL_CHOICES)}, got {value!r}"
            )
        self.target.target_hdl = value

    def _handle_user_type(self, directive: Directive) -> None:
        argument = self._require_argument(directive)
        parts = [part.strip() for part in argument.split(",")]
        if len(parts) != 3:
            raise SpliceSyntaxError(
                "%user_type expects 'name, underlying type, bit width'",
                line=directive.line,
                text=argument,
            )
        name, underlying, width_text = parts
        width = _parse_int(width_text, directive.keyword, directive.line)
        self.types.define_user_type(name, underlying, width)
        self.target.user_types.append((name, underlying, width))


def parse_directive(text: str, line: Optional[int] = None) -> Directive:
    """Parse one ``%`` directive line into a canonical :class:`Directive`."""
    return split_directive(text, line)


def parse_directives(lines: List[Tuple[int, str]]) -> Tuple[TargetSpec, TypeTable]:
    """Parse a list of ``(line_number, text)`` directive lines."""
    processor = DirectiveProcessor()
    for line, text in lines:
        processor.apply_line(text, line)
    return processor.target, processor.types
