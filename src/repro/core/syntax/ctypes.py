"""The ANSI-C-derived type system used by Splice declarations.

Splice leans on ANSI C types so that interface declarations stay
source-compatible with existing software prototypes (Section 3.1).  Custom
types are added with the ``%user_type`` directive, which must state the bit
width explicitly because the tool "implements only a rudimentary parser and
thus cannot directly infer the size of the type" (Section 3.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.syntax.errors import SpliceValidationError


@dataclass(frozen=True)
class CType:
    """A named data type with a fixed bit width.

    Attributes
    ----------
    name:
        Canonical spelling used in declarations (e.g. ``"unsigned long"``).
    width:
        Size in bits; ``0`` is reserved for ``void``.
    signed:
        Whether values are interpreted as two's-complement.
    is_float:
        Whether the type carries IEEE-754 floating-point data.
    alias_of:
        For ``%user_type`` definitions, the underlying C spelling.
    """

    name: str
    width: int
    signed: bool = True
    is_float: bool = False
    alias_of: Optional[str] = None

    @property
    def is_void(self) -> bool:
        return self.width == 0

    def words(self, bus_width: int) -> int:
        """Number of ``bus_width``-bit transfers needed to move one value."""
        if self.is_void:
            return 0
        if bus_width <= 0:
            raise ValueError("bus width must be positive")
        return max(1, -(-self.width // bus_width))

    def pack_factor(self, bus_width: int) -> int:
        """How many values of this type fit into one ``bus_width``-bit beat."""
        if self.is_void or self.width == 0:
            return 0
        return max(1, bus_width // self.width)


#: Built-in types from Figure 3.1 plus the standard C integer spellings the
#: worked examples rely on (``long``, ``long long``, unsigned combinations).
_BUILTIN_TYPES: Tuple[CType, ...] = (
    CType("void", 0),
    CType("bool", 1, signed=False),
    CType("char", 8),
    CType("unsigned char", 8, signed=False),
    CType("short", 16),
    CType("unsigned short", 16, signed=False),
    CType("int", 32),
    CType("unsigned", 32, signed=False),
    CType("unsigned int", 32, signed=False),
    CType("long", 32),
    CType("unsigned long", 32, signed=False),
    CType("long long", 64),
    CType("unsigned long long", 64, signed=False),
    CType("float", 32, is_float=True),
    CType("single", 32, is_float=True),
    CType("double", 64, is_float=True),
)

#: Keywords that may begin or continue a multi-word type spelling.
TYPE_KEYWORDS = frozenset(
    {"void", "bool", "char", "short", "int", "long", "float", "single", "double", "unsigned", "signed"}
)

#: The pseudo return type that marks a non-blocking call (Section 3.1.7).
NOWAIT_KEYWORD = "nowait"


class TypeTable:
    """Registry of built-in and user-defined (``%user_type``) types."""

    def __init__(self) -> None:
        self._types: Dict[str, CType] = {t.name: t for t in _BUILTIN_TYPES}

    # -- lookup -----------------------------------------------------------

    def lookup(self, name: str) -> CType:
        """Return the type named ``name`` (normalised whitespace)."""
        key = " ".join(name.split())
        if key.startswith("signed "):
            key = key[len("signed "):]
        try:
            return self._types[key]
        except KeyError:
            raise SpliceValidationError(
                f"unknown data type {name!r}; define it with %user_type before use"
            ) from None

    def knows(self, name: str) -> bool:
        key = " ".join(name.split())
        if key.startswith("signed "):
            key = key[len("signed "):]
        return key in self._types

    def names(self) -> List[str]:
        return sorted(self._types)

    # -- user types ----------------------------------------------------------

    def define_user_type(self, name: str, underlying: str, width: int) -> CType:
        """Register a ``%user_type`` definition.

        The paper places no limit on the number of user types; redefining a
        built-in type, however, is rejected because it would silently change
        the meaning of existing declarations.
        """
        name = name.strip()
        if not name:
            raise SpliceValidationError("%user_type requires a non-empty type name")
        if width <= 0:
            raise SpliceValidationError(
                f"%user_type {name!r} must declare a positive bit width, got {width}"
            )
        if name in {t.name for t in _BUILTIN_TYPES}:
            raise SpliceValidationError(f"%user_type may not redefine built-in type {name!r}")
        underlying_norm = " ".join(underlying.split())
        signed = not underlying_norm.startswith("unsigned")
        is_float = any(word in underlying_norm.split() for word in ("float", "double", "single"))
        ctype = CType(name, width, signed=signed, is_float=is_float, alias_of=underlying_norm)
        self._types[name] = ctype
        return ctype

    def user_types(self) -> List[CType]:
        """Only the types added through ``%user_type``."""
        return [t for t in self._types.values() if t.alias_of is not None]

    # -- parsing helpers -------------------------------------------------------

    def match_prefix(self, words: Iterable[str]) -> Optional[Tuple[str, int]]:
        """Greedily match the longest known type spelling at the start of ``words``.

        Returns ``(canonical_name, words_consumed)`` or ``None`` when the
        first word does not begin a known type.
        """
        words = list(words)
        best: Optional[Tuple[str, int]] = None
        for count in range(1, min(3, len(words)) + 1):
            candidate = " ".join(words[:count])
            if self.knows(candidate):
                best = (" ".join(self.lookup(candidate).name.split()), count)
        if best is None and words and words[0] in self._types:
            best = (words[0], 1)
        return best
