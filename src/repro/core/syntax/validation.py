"""Semantic validation of parsed Splice specifications.

This module enforces the rules scattered through Sections 3.1–3.3:

* required directives (``%bus_type``, ``%bus_width``, ``%device_name``, and
  ``%base_address`` for memory-mapped interfaces),
* feature/capability agreement (DMA or burst requested on a bus that cannot
  provide it, unsupported bus widths),
* pointer discipline (pointers must carry a bound; ``+`` and ``^`` require a
  bound; implicit bounds must reference an *earlier*, scalar, integer
  parameter),
* instance counts and the ``nowait`` restriction.

Validation is a separate pass so that the extension API's "parameter
checking routine" (Section 7.1.2) can reuse the same machinery for
user-supplied buses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.capabilities import BusCapabilities, default_capabilities
from repro.core.syntax.ast import Declaration, Parameter, SpliceSpec
from repro.core.syntax.errors import SpliceValidationError


def validate_spec(
    spec: SpliceSpec,
    capabilities: Optional[Dict[str, BusCapabilities]] = None,
) -> BusCapabilities:
    """Validate ``spec``; return the capabilities of the targeted bus.

    Raises :class:`SpliceValidationError` describing the first problem found,
    matching the paper's behaviour of refusing to proceed until the user
    addresses the issue.
    """
    capabilities = capabilities if capabilities is not None else default_capabilities()
    target = spec.target

    _require_directives(spec)

    bus_name = target.bus_type.lower()
    if bus_name not in capabilities:
        known = ", ".join(sorted(capabilities))
        raise SpliceValidationError(
            f"%bus_type {bus_name!r} is not a supported interface (known: {known})"
        )
    bus = capabilities[bus_name]

    _check_bus_features(spec, bus)
    for declaration in spec.declarations:
        _check_declaration(declaration, spec, bus)
    return bus


# -- directive-level checks ----------------------------------------------------


def _require_directives(spec: SpliceSpec) -> None:
    target = spec.target
    if not target.device_name:
        raise SpliceValidationError("%device_name is required but was not specified")
    if not target.bus_type:
        raise SpliceValidationError("%bus_type is required but was not specified")
    if target.bus_width is None:
        raise SpliceValidationError("%bus_width is required but was not specified")
    if not spec.declarations:
        raise SpliceValidationError("the specification declares no interfaces")


def _check_bus_features(spec: SpliceSpec, bus: BusCapabilities) -> None:
    target = spec.target
    if not bus.supports_width(target.bus_width):
        widths = ", ".join(str(w) for w in bus.widths)
        raise SpliceValidationError(
            f"bus {bus.name!r} does not support a {target.bus_width}-bit data path "
            f"(supported widths: {widths})"
        )
    if bus.memory_mapped and target.base_address is None:
        raise SpliceValidationError(
            f"bus {bus.name!r} is memory mapped; %base_address is required"
        )
    if bus.memory_mapped and target.base_address is not None:
        if target.base_address % (target.bus_width // 8) != 0:
            raise SpliceValidationError(
                f"%base_address 0x{target.base_address:x} is not aligned to the "
                f"{target.bus_width}-bit bus width"
            )
    if target.dma_support and not bus.supports_dma:
        raise SpliceValidationError(
            f"%dma_support is enabled but bus {bus.name!r} has no physical DMA support"
        )
    if target.burst_support and not bus.supports_burst:
        raise SpliceValidationError(
            f"%burst_support is enabled but bus {bus.name!r} cannot execute burst transactions"
        )


# -- declaration-level checks ----------------------------------------------------


_INTEGER_INDEX_MAX_WIDTH = 32


def _check_declaration(decl: Declaration, spec: SpliceSpec, bus: BusCapabilities) -> None:
    if decl.instances < 1:
        raise SpliceValidationError(
            f"declaration {decl.name!r} requests {decl.instances} instances; at least 1 required"
        )
    if not decl.blocking and decl.has_output:
        raise SpliceValidationError(
            f"declaration {decl.name!r} is marked 'nowait' but declares a return value"
        )

    seen: List[Parameter] = []
    for param in decl.params:
        _check_parameter(decl, param, seen, spec, bus)
        seen.append(param)

    output = decl.output_parameter()
    if output is not None:
        _check_output(decl, output, seen, spec, bus)


def _check_parameter(
    decl: Declaration,
    param: Parameter,
    earlier: List[Parameter],
    spec: SpliceSpec,
    bus: BusCapabilities,
) -> None:
    prefix = f"declaration {decl.name!r}, parameter {param.name!r}"

    if param.is_pointer and param.bound is None:
        raise SpliceValidationError(
            f"{prefix}: pointer transfers must state how many items to move "
            "(use an explicit ':N' or implicit ':other_param' bound)"
        )
    if param.packed and not param.is_array:
        raise SpliceValidationError(
            f"{prefix}: the '+' packing extension requires an explicit or implicit pointer bound"
        )
    if param.dma and not param.is_array:
        raise SpliceValidationError(
            f"{prefix}: the '^' DMA extension requires an explicit or implicit pointer bound"
        )
    if param.dma:
        _check_dma_allowed(prefix, spec, bus)
    if param.packed and param.ctype.width > spec.target.bus_width:
        raise SpliceValidationError(
            f"{prefix}: packing a {param.ctype.width}-bit type across a "
            f"{spec.target.bus_width}-bit bus cannot reduce transfer count"
        )
    if param.bound is not None and param.bound.is_implicit:
        _check_implicit_reference(prefix, param, earlier)


def _check_output(
    decl: Declaration,
    output: Parameter,
    params: List[Parameter],
    spec: SpliceSpec,
    bus: BusCapabilities,
) -> None:
    prefix = f"declaration {decl.name!r}, return value"
    if output.is_pointer and output.bound is None:
        raise SpliceValidationError(
            f"{prefix}: pointer returns must state how many items to move"
        )
    if output.packed and not output.is_array:
        raise SpliceValidationError(f"{prefix}: '+' requires a bounded pointer return")
    if output.dma and not output.is_array:
        raise SpliceValidationError(f"{prefix}: '^' requires a bounded pointer return")
    if output.dma:
        _check_dma_allowed(prefix, spec, bus)
    if output.bound is not None and output.bound.is_implicit:
        # All inputs are transferred before the output, so the output may
        # reference any input parameter.
        _check_implicit_reference(prefix, output, params)


def _check_dma_allowed(prefix: str, spec: SpliceSpec, bus: BusCapabilities) -> None:
    if not spec.target.dma_support:
        raise SpliceValidationError(
            f"{prefix}: '^' requests a DMA transfer but %dma_support is not enabled"
        )
    if not bus.supports_dma:
        raise SpliceValidationError(
            f"{prefix}: '^' requests a DMA transfer but bus {bus.name!r} has no DMA support"
        )


def _check_implicit_reference(prefix: str, param: Parameter, earlier: List[Parameter]) -> None:
    index_name = param.bound.index
    matches = [p for p in earlier if p.name == index_name]
    if not matches:
        raise SpliceValidationError(
            f"{prefix}: implicit bound references {index_name!r}, which is not an "
            "earlier parameter (implicit transfers may only reference inputs that are "
            "transmitted before them)"
        )
    index_param = matches[0]
    if index_param.is_pointer:
        raise SpliceValidationError(
            f"{prefix}: implicit bound references pointer parameter {index_name!r}; "
            "the index must be a scalar integer input"
        )
    if index_param.ctype.is_float or index_param.ctype.width > _INTEGER_INDEX_MAX_WIDTH:
        raise SpliceValidationError(
            f"{prefix}: implicit bound index {index_name!r} must be an integer of at most "
            f"{_INTEGER_INDEX_MAX_WIDTH} bits, got {index_param.ctype.name!r}"
        )
