"""Per-bus software macro libraries (Figure 7.2).

Every supported bus provides the same set of transaction macros —
``WRITE_SINGLE/DOUBLE/QUAD``, ``READ_SINGLE/DOUBLE/QUAD``, ``SET_ADDRESS``,
``WAIT_FOR_RESULTS`` and optionally ``WRITE_DMA`` / ``READ_DMA`` — but maps
them onto whatever its native protocol can actually do: the FCB turns double
and quad macros into genuine bursts, the PLB (whose CPU-side bursts are not
reachable from the PowerPC) expands them into sequential singles, the OPB
supports only simple transfers, and the strictly synchronous APB implements
``WAIT_FOR_RESULTS`` as a poll of the ``CALC_DONE`` status register.

Each library also carries the in-line assembly / C text for its macros so the
C driver generator can emit a faithful ``splice_lib.h``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.buses.base import BusTransaction, TransactionKind
from repro.core.params import FuncParams, ModuleParams, STATUS_FUNC_ID
from repro.core.syntax.errors import SpliceGenerationError


class SoftwareMacroLibrary:
    """Base class: maps macro-level operations onto bus transactions."""

    name = "generic"
    #: Largest number of words a single native transaction may carry.
    max_burst_words = 1
    #: Whether WRITE_DMA / READ_DMA are available.
    supports_dma = False
    #: Whether WAIT_FOR_RESULTS must poll the status register (strictly
    #: synchronous buses) or can simply rely on bus handshaking.
    requires_polling = False

    # -- addressing -----------------------------------------------------------

    def set_address(self, module: ModuleParams, func_id: int) -> int:
        """The ``SET_ADDRESS`` macro: bus address for ``func_id``."""
        return module.address_of(func_id)

    def status_address(self, module: ModuleParams) -> int:
        return self.set_address(module, STATUS_FUNC_ID)

    # -- transaction construction ------------------------------------------------

    def _chunks(self, words: List[int], chunk: int) -> List[List[int]]:
        return [words[i:i + chunk] for i in range(0, len(words), chunk)]

    def write_transactions(
        self,
        module: ModuleParams,
        func_id: int,
        words: List[int],
        *,
        use_dma: bool = False,
        use_burst: bool = False,
    ) -> List[BusTransaction]:
        """Transactions implementing a store of ``words`` to ``func_id``."""
        address = self.set_address(module, func_id)
        if use_dma:
            if not self.supports_dma:
                raise SpliceGenerationError(
                    f"bus {self.name!r} has no WRITE_DMA macro but a DMA transfer was requested"
                )
            return [BusTransaction(TransactionKind.DMA_WRITE, address, data=list(words))]
        chunk = self.max_burst_words if use_burst else 1
        chunk = max(1, chunk)
        transactions = []
        for piece in self._chunks(words, chunk):
            kind = TransactionKind.BURST_WRITE if len(piece) > 1 else TransactionKind.WRITE
            transactions.append(BusTransaction(kind, address, data=list(piece)))
        return transactions

    def read_transactions(
        self,
        module: ModuleParams,
        func_id: int,
        count: int,
        *,
        use_dma: bool = False,
        use_burst: bool = False,
    ) -> List[BusTransaction]:
        """Transactions implementing a load of ``count`` words from ``func_id``."""
        address = self.set_address(module, func_id)
        if use_dma:
            if not self.supports_dma:
                raise SpliceGenerationError(
                    f"bus {self.name!r} has no READ_DMA macro but a DMA transfer was requested"
                )
            return [BusTransaction(TransactionKind.DMA_READ, address, word_count=count)]
        chunk = self.max_burst_words if use_burst else 1
        chunk = max(1, chunk)
        transactions = []
        remaining = count
        while remaining > 0:
            piece = min(chunk, remaining)
            kind = TransactionKind.BURST_READ if piece > 1 else TransactionKind.READ
            transactions.append(BusTransaction(kind, address, word_count=piece))
            remaining -= piece
        return transactions

    def poll_transaction(self, module: ModuleParams) -> BusTransaction:
        """One status-register read used by the polling WAIT_FOR_RESULTS."""
        return BusTransaction(TransactionKind.READ, self.status_address(module), word_count=1)

    # -- C text ------------------------------------------------------------------

    def c_macro_definitions(self) -> Dict[str, str]:
        """C text for each required macro (Figure 7.2), for ``splice_lib.h``."""
        wait = (
            "while (!(READ_SINGLE(STATUS_ADDR) & (1u << ((id) - 1)))) { /* poll CALC_DONE */ }"
            if self.requires_polling
            else "/* pseudo-asynchronous bus: handshaking orders transactions */ (void)(id)"
        )
        return {
            "SET_ADDRESS(id)": f"(BASE_ADDR + (id) * (BUS_WIDTH / 8))  /* {self.name} slot address */",
            "WRITE_SINGLE(addr, ptr)": f"splice_{self.name}_store32((addr), (ptr))",
            "WRITE_DOUBLE(addr, ptr)": self._c_multi_write(2),
            "WRITE_QUAD(addr, ptr)": self._c_multi_write(4),
            "READ_SINGLE(addr)": f"splice_{self.name}_load32((addr))",
            "READ_DOUBLE(addr, ptr)": self._c_multi_read(2),
            "READ_QUAD(addr, ptr)": self._c_multi_read(4),
            "WAIT_FOR_RESULTS(id)": wait,
            **(
                {
                    "WRITE_DMA(addr, ptr, n)": f"splice_{self.name}_dma_store((addr), (ptr), (n))",
                    "READ_DMA(addr, ptr, n)": f"splice_{self.name}_dma_load((addr), (ptr), (n))",
                }
                if self.supports_dma
                else {}
            ),
        }

    def _c_multi_write(self, words: int) -> str:
        if self.max_burst_words >= words:
            return f"splice_{self.name}_store_burst{words}((addr), (ptr))"
        calls = "; ".join(
            f"splice_{self.name}_store32((addr), (ptr) + {i})" for i in range(words)
        )
        return f"do {{ {calls}; }} while (0)  /* no native burst: sequential singles */"

    def _c_multi_read(self, words: int) -> str:
        if self.max_burst_words >= words:
            return f"splice_{self.name}_load_burst{words}((addr), (ptr))"
        calls = "; ".join(
            f"(ptr)[{i}] = splice_{self.name}_load32((addr))" for i in range(words)
        )
        return f"do {{ {calls}; }} while (0)  /* no native burst: sequential singles */"


class PLBMacroLibrary(SoftwareMacroLibrary):
    """PLB: memory mapped, pseudo-asynchronous, DMA capable, no CPU bursts."""

    name = "plb"
    max_burst_words = 1
    supports_dma = True
    requires_polling = False


class OPBMacroLibrary(SoftwareMacroLibrary):
    """OPB: simple single-word reads and writes only."""

    name = "opb"
    max_burst_words = 1
    supports_dma = False
    requires_polling = False


class FCBMacroLibrary(SoftwareMacroLibrary):
    """FCB: opcode addressed, native double/quad bursts, no DMA."""

    name = "fcb"
    max_burst_words = 4
    supports_dma = False
    requires_polling = False

    def set_address(self, module: ModuleParams, func_id: int) -> int:
        # The FCB is not memory mapped: the "address" is the raw identifier.
        return func_id


class APBMacroLibrary(SoftwareMacroLibrary):
    """APB: strictly synchronous, so completion is detected by polling."""

    name = "apb"
    max_burst_words = 1
    supports_dma = False
    requires_polling = True


_LIBRARIES = {
    "plb": PLBMacroLibrary,
    "opb": OPBMacroLibrary,
    "fcb": FCBMacroLibrary,
    "apb": APBMacroLibrary,
}


def macro_library_for(bus_name: str) -> SoftwareMacroLibrary:
    """The built-in macro library for ``bus_name``."""
    try:
        return _LIBRARIES[bus_name.lower()]()
    except KeyError:
        raise SpliceGenerationError(
            f"no software macro library for bus {bus_name!r}; register one via the extension API"
        ) from None


def register_macro_library(bus_name: str, library_class) -> None:
    """Register a macro library for a user-supplied bus (extension API)."""
    _LIBRARIES[bus_name.lower()] = library_class
