"""Software driver generation (Chapter 6).

Splice produces drivers in two equivalent forms here:

* **C source text** (:mod:`repro.core.drivers.cgen`) — the ``splice_lib.h``
  macro header plus per-device driver/header files shaped like Figures 6.1,
  6.2 and 8.7, kept for fidelity with the paper; and
* **runtime drivers** (:mod:`repro.core.drivers.runtime`) — Python callables
  that issue the *same* macro sequence as the C drivers against the simulated
  bus, which is what the evaluation harness executes to measure cycle counts.

Both are built on the per-bus software macro libraries of Figure 7.2
(:mod:`repro.core.drivers.macro_lib`).
"""

from repro.core.drivers.macro_lib import (
    SoftwareMacroLibrary,
    PLBMacroLibrary,
    OPBMacroLibrary,
    FCBMacroLibrary,
    APBMacroLibrary,
    macro_library_for,
)
from repro.core.drivers.runtime import GeneratedDriver, DriverSet
from repro.core.drivers.cgen import generate_driver_sources

__all__ = [
    "SoftwareMacroLibrary",
    "PLBMacroLibrary",
    "OPBMacroLibrary",
    "FCBMacroLibrary",
    "APBMacroLibrary",
    "macro_library_for",
    "GeneratedDriver",
    "DriverSet",
    "generate_driver_sources",
]
