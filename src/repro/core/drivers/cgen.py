"""C source generation for Splice drivers (Chapter 6, Figures 6.1/6.2/8.7).

Three files are produced per device, matching the Figure 8.7 listing:

* ``splice_lib.h`` — the per-bus transaction macros (Figure 7.2),
* ``<device>_driver.h`` — prototypes for every generated driver, and
* ``<device>_driver.c`` — the driver bodies, shaped like Figure 6.1 (simple
  functions) and Figure 6.2 (multi-instance functions).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.drivers.macro_lib import SoftwareMacroLibrary, macro_library_for
from repro.core.drivers.wire_format import beat_count
from repro.core.params import FuncParams, IOParams, ModuleParams

_C_TYPE_FOR_WIDTH = {8: "unsigned char", 16: "unsigned short", 32: "unsigned int", 64: "unsigned long long"}


def _c_type(io: IOParams) -> str:
    base = io.io_type.rstrip("*").strip()
    return base + ("*" if io.is_pointer else "")


def _return_type(func: FuncParams) -> str:
    if not func.has_output or func.output is None:
        return "void"
    base = func.output.io_type.rstrip("*").strip()
    return base + ("*" if func.output.is_pointer else "")


def _prototype(func: FuncParams) -> str:
    params = [f"{_c_type(io)} {io.io_name}" for io in func.inputs]
    if func.nmbr_instances > 1:
        params.append("int inst_index")
    joined = ", ".join(params) if params else "void"
    return f"{_return_type(func)} {func.func_name}({joined})"


def _write_macro_for(beats: int) -> str:
    if beats >= 4:
        return "WRITE_QUAD"
    if beats >= 2:
        return "WRITE_DOUBLE"
    return "WRITE_SINGLE"


def _input_transfer_lines(func: FuncParams, io: IOParams, module: ModuleParams) -> List[str]:
    lines: List[str] = []
    if io.has_index:
        lines.append(f"    // Transfer '{io.io_name}' ({io.index_var} elements, implicit bound)")
        lines.append(f"    for (i = 0; i < {io.index_var}; i++)")
        macro = "WRITE_DMA" if io.is_dma else "WRITE_SINGLE"
        ref = f"&{io.io_name}[i]" if io.is_pointer else f"&{io.io_name}"
        extra = f", {io.index_var}" if io.is_dma else ""
        lines.append(f"        {macro}(func_addr, {ref}{extra});")
        return lines
    beats = beat_count(io, module.data_width, io.io_number if io.io_number is not None else 1)
    descriptor = "packed " if io.is_packed else ("DMA " if io.is_dma else "")
    lines.append(f"    // Transfer {beats} bus word(s) of '{io.io_name}' ({descriptor}transfer)")
    if io.is_dma:
        lines.append(f"    WRITE_DMA(func_addr, {io.io_name}, {beats});")
        return lines
    ref = io.io_name if io.is_pointer else f"&{io.io_name}"
    remaining = beats
    while remaining > 0:
        if remaining >= 4:
            lines.append(f"    WRITE_QUAD(func_addr, {ref});")
            remaining -= 4
        elif remaining >= 2:
            lines.append(f"    WRITE_DOUBLE(func_addr, {ref});")
            remaining -= 2
        else:
            lines.append(f"    WRITE_SINGLE(func_addr, {ref});")
            remaining -= 1
    return lines


def _driver_body(func: FuncParams, module: ModuleParams) -> str:
    lines: List[str] = []
    lines.append(f"// ID Used to Target {func.func_name}")
    lines.append(f"#define {func.func_name.upper()}_ID {func.func_id}")
    lines.append("")
    suffix = " (w/ Multiple Instances)" if func.nmbr_instances > 1 else ""
    lines.append(f"// Driver Used to Activate {func.func_name} in HW{suffix}")
    lines.append(_prototype(func))
    lines.append("{")
    lines.append("    unsigned func_addr;")
    if any(io.has_index for io in func.inputs):
        lines.append("    int i;")
    if func.has_output and func.output is not None:
        output = func.output
        if output.is_pointer:
            lines.append(f"    {output.io_type.rstrip('*').strip()}* result = malloc(sizeof(*result) * RESULT_COUNT);")
        else:
            lines.append(f"    {output.io_type} result;")
    lines.append("")
    if func.nmbr_instances > 1:
        lines.append(f"    // Determine the Address of the Specific Function Instance")
        lines.append(f"    func_addr = SET_ADDRESS({func.func_name.upper()}_ID + inst_index);")
    else:
        lines.append(f"    // Determine the Address of the Function")
        lines.append(f"    func_addr = SET_ADDRESS({func.func_name.upper()}_ID);")
    for io in func.inputs:
        lines.append("")
        lines.extend(_input_transfer_lines(func, io, module))
    if func.blocking:
        lines.append("")
        lines.append("    // Wait for Calculations to Complete")
        inst = " + inst_index" if func.nmbr_instances > 1 else ""
        lines.append(f"    WAIT_FOR_RESULTS({func.func_name.upper()}_ID{inst});")
        if func.has_output and func.output is not None:
            output = func.output
            count = output.io_number if output.io_number is not None else 1
            beats = beat_count(output, module.data_width, count)
            lines.append("")
            lines.append(f"    // Grab Result from Hardware ({beats} bus word(s))")
            target = "result" if output.is_pointer else "&result"
            remaining = beats
            while remaining > 0:
                if remaining >= 4:
                    lines.append(f"    READ_QUAD(func_addr, {target});")
                    remaining -= 4
                elif remaining >= 2:
                    lines.append(f"    READ_DOUBLE(func_addr, {target});")
                    remaining -= 2
                else:
                    lines.append(f"    (void)READ_SINGLE(func_addr); /* into {target} */")
                    remaining -= 1
            lines.append("")
            lines.append("    // Return Results to Calling Function")
            lines.append("    return result;")
        else:
            lines.append("")
            lines.append("    // Synchronous wait: read the pseudo output state to confirm completion")
            lines.append("    (void)READ_SINGLE(func_addr);")
    else:
        lines.append("")
        lines.append("    // Non-blocking (nowait) call: return immediately")
    lines.append("}")
    return "\n".join(lines)


def _splice_lib(module: ModuleParams, library: SoftwareMacroLibrary) -> str:
    lines = [
        f"/* splice_lib.h : {library.name.upper()} transaction macros for {module.mod_name} */",
        f"/* Generated by Splice - bus width {module.data_width} bits, base address 0x{module.base_addr:08X} */",
        "#ifndef SPLICE_LIB_H",
        "#define SPLICE_LIB_H",
        "",
        f"#define BASE_ADDR 0x{module.base_addr:08X}u",
        f"#define BUS_WIDTH {module.data_width}",
        f"#define STATUS_ADDR 0x{module.base_addr:08X}u  /* function id 0: CALC_DONE vector */",
        "",
    ]
    for macro, definition in library.c_macro_definitions().items():
        lines.append(f"#define {macro} \\")
        lines.append(f"    {definition}")
        lines.append("")
    lines.append("#endif /* SPLICE_LIB_H */")
    return "\n".join(lines)


def generate_driver_sources(module: ModuleParams, library: SoftwareMacroLibrary = None) -> Dict[str, str]:
    """Generate the Figure 8.7 file set: macro header, driver header, driver body."""
    library = library or macro_library_for(module.bus_type)
    header_lines = [
        f"/* {module.mod_name}_driver.h : prototypes for Splice-generated drivers */",
        "#ifndef %s_DRIVER_H" % module.mod_name.upper(),
        "#define %s_DRIVER_H" % module.mod_name.upper(),
        "",
    ]
    for func in module.funcs:
        header_lines.append(_prototype(func) + ";")
    header_lines.append("")
    header_lines.append("#endif")

    body_lines = [
        f"/* {module.mod_name}_driver.c : Splice-generated software drivers */",
        '#include "splice_lib.h"',
        f'#include "{module.mod_name}_driver.h"',
        "#include <stdlib.h>",
        "",
    ]
    for func in module.funcs:
        body_lines.append(_driver_body(func, module))
        body_lines.append("")

    return {
        "splice_lib.h": _splice_lib(module, library),
        f"{module.mod_name}_driver.h": "\n".join(header_lines),
        f"{module.mod_name}_driver.c": "\n".join(body_lines),
    }
