"""Runtime drivers: Python callables mirroring the generated C drivers.

A :class:`GeneratedDriver` reproduces, step for step, the structure of the C
drivers in Figures 6.1 and 6.2:

1. ``SET_ADDRESS`` — compute the target function's slot (plus the instance
   index for multi-instance functions),
2. one write macro per declared input, in declaration order, splitting or
   packing values exactly as the hardware stub expects,
3. ``WAIT_FOR_RESULTS`` — a no-op on pseudo-asynchronous buses, a
   ``CALC_DONE`` poll loop on strictly synchronous ones,
4. read macros for the return value (or the single pseudo-output status word
   of a blocking ``void`` function), and
5. reassembly of the read beats into the value the caller expects.

The driver issues its transactions through a *processor* object (usually
:class:`repro.soc.cpu.ProcessorModel`), so calling a driver advances the
simulation and its cost is measured in real bus clock cycles.  The whole
call — every write beat, the ``CALC_DONE`` poll loop, every read beat and
the inter-operation gaps between them — is submitted as one
:class:`~repro.buses.base.TransactionScript` that the bus master consumes
inside the simulation, so a driver call costs one kernel wait instead of one
Python round trip per transaction (cycle-exact with the per-transaction
path; see ``tests/test_harness_scripting.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.buses.base import PollOp, TransactionOp
from repro.core.drivers.macro_lib import SoftwareMacroLibrary
from repro.core.drivers.wire_format import beat_count, deserialize_io, serialize_io
from repro.core.params import FuncParams, IOParams, ModuleParams
from repro.core.syntax.errors import SpliceGenerationError

Value = Union[int, Sequence[int]]


@dataclass
class DriverCallRecord:
    """Bookkeeping for one driver invocation (used by the benchmarks)."""

    func_name: str
    instance: int
    start_cycle: int
    end_cycle: int
    transactions: int
    polls: int = 0

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle


class GeneratedDriver:
    """The runtime driver for one interface declaration."""

    def __init__(
        self,
        func: FuncParams,
        module: ModuleParams,
        library: SoftwareMacroLibrary,
        processor,
        *,
        poll_limit: int = 10_000,
    ) -> None:
        self.func = func
        self.module = module
        self.library = library
        self.processor = processor
        self.poll_limit = poll_limit
        self.calls: List[DriverCallRecord] = []

    # -- public API -------------------------------------------------------------

    def __call__(self, *args: Value, inst_index: int = 0, **kwargs: Value):
        """Invoke the hardware function exactly as the C driver would.

        The full beat sequence is known before the bus is touched (the beat
        counts depend only on the declaration and the bound argument sizes),
        so the whole call is scripted onto the master and executed with a
        single blocking wait.
        """
        func = self.func
        if not 0 <= inst_index < func.nmbr_instances:
            raise SpliceGenerationError(
                f"{func.func_name} has {func.nmbr_instances} instance(s); "
                f"inst_index {inst_index} is out of range"
            )
        bound = self._bind_arguments(args, kwargs)
        func_id = func.func_id + inst_index
        start_cycle = self.processor.cycles
        ops: List[object] = []
        transactions = 0

        # 1-2: transfer every input in declaration order.
        for io in func.inputs:
            count = self._element_count(io, bound)
            words = serialize_io(io, bound[io.io_name], self.module.data_width, count)
            if not words:
                continue
            use_burst = self.module.ld_burst_f or self.library.max_burst_words > 1
            txns = self.library.write_transactions(
                self.module, func_id, words, use_dma=io.is_dma, use_burst=use_burst and not io.is_dma
            )
            ops.extend(TransactionOp(txn) for txn in txns)
            transactions += len(txns)

        output_plan = None
        read_txns: List = []
        if func.blocking:
            if self.library.requires_polling and not func.inputs:
                # Strictly synchronous buses cannot pause a read until the
                # function wakes up, so parameterless functions are started
                # with an explicit trigger write before polling CALC_DONE.
                trigger = self.library.write_transactions(self.module, func_id, [0])[0]
                ops.append(TransactionOp(trigger))
                transactions += 1
            if self.library.requires_polling:
                # 3: WAIT_FOR_RESULTS — the poll loop runs inside the master.
                template = self.library.poll_transaction(self.module)
                ops.append(
                    PollOp(template.kind, template.address, 1 << (func_id - 1), self.poll_limit)
                )
            # 4-5: read back the result (or the pseudo-output status word).
            if func.has_output and func.output is not None:
                output = func.output
                count = self._element_count(output, bound)
                beats = beat_count(output, self.module.data_width, count)
                read_txns = self._read_transactions(func_id, beats, output)
                ops.extend(TransactionOp(txn) for txn in read_txns)
                transactions += beats
                output_plan = (output, count, beats)
            else:
                read_txns = self._read_transactions(func_id, 1, None)
                ops.extend(TransactionOp(txn) for txn in read_txns)
                transactions += 1
        elif not func.inputs:
            # A nowait function with no inputs still needs a trigger write.
            txn = self.library.write_transactions(self.module, func_id, [0])[0]
            ops.append(TransactionOp(txn))
            transactions += 1

        script = self.processor.execute_script(ops)
        polls = script.polls
        transactions += polls
        if script.poll_failed:
            raise SpliceGenerationError(
                f"WAIT_FOR_RESULTS for function id {func_id} did not complete within "
                f"{self.poll_limit} status polls"
            )

        result = None
        if output_plan is not None:
            output, count, beats = output_plan
            words: List[int] = []
            for txn in read_txns:
                words.extend(txn.results)
            result = deserialize_io(output, words[:beats], self.module.data_width, count)

        record = DriverCallRecord(
            func_name=func.func_name,
            instance=inst_index,
            start_cycle=start_cycle,
            end_cycle=self.processor.cycles,
            transactions=transactions,
            polls=polls,
        )
        self.calls.append(record)
        return result

    @property
    def last_call(self) -> Optional[DriverCallRecord]:
        return self.calls[-1] if self.calls else None

    def total_cycles(self) -> int:
        return sum(call.cycles for call in self.calls)

    # -- internals ---------------------------------------------------------------

    def _bind_arguments(self, args: Sequence[Value], kwargs: Dict[str, Value]) -> Dict[str, Value]:
        names = [io.io_name for io in self.func.inputs]
        if len(args) > len(names):
            raise SpliceGenerationError(
                f"{self.func.func_name} takes {len(names)} argument(s), got {len(args)}"
            )
        bound: Dict[str, Value] = dict(zip(names, args))
        for name, value in kwargs.items():
            if name not in names:
                raise SpliceGenerationError(
                    f"{self.func.func_name} has no parameter named {name!r}"
                )
            if name in bound:
                raise SpliceGenerationError(f"parameter {name!r} supplied twice")
            bound[name] = value
        missing = [name for name in names if name not in bound]
        if missing:
            raise SpliceGenerationError(
                f"{self.func.func_name} is missing argument(s): {', '.join(missing)}"
            )
        return bound

    def _element_count(self, io: IOParams, bound: Dict[str, Value]) -> int:
        if io.has_index:
            return int(bound[io.index_var])
        if io.io_number is not None:
            return io.io_number
        return 1

    def _read_transactions(self, func_id: int, beats: int, output: Optional[IOParams]) -> List:
        """The read-macro transactions moving ``beats`` result words."""
        if beats <= 0:
            return []
        use_dma = bool(output is not None and output.is_dma)
        use_burst = self.library.max_burst_words > 1
        return self.library.read_transactions(
            self.module, func_id, beats, use_dma=use_dma, use_burst=use_burst and not use_dma
        )


@dataclass
class DriverSet:
    """All runtime drivers generated for one peripheral."""

    module: ModuleParams
    drivers: Dict[str, GeneratedDriver] = field(default_factory=dict)

    def __getitem__(self, func_name: str) -> GeneratedDriver:
        return self.drivers[func_name]

    def __contains__(self, func_name: str) -> bool:
        return func_name in self.drivers

    def names(self) -> List[str]:
        return list(self.drivers)

    @classmethod
    def build(
        cls,
        module: ModuleParams,
        library: SoftwareMacroLibrary,
        processor,
    ) -> "DriverSet":
        drivers = {
            func.func_name: GeneratedDriver(func, module, library, processor)
            for func in module.funcs
        }
        return cls(module=module, drivers=drivers)
