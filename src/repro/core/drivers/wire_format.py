"""Serialisation of C-level values into bus beats (and back).

Drivers and the generated user-logic stubs must agree exactly on how values
cross the bus:

* values wider than the bus are **split** into least-significant-word-first
  beats (Section 3.1.4),
* **packed** transfers place ``bus_width // element_width`` elements per
  beat, lowest-numbered element in the least significant bits
  (Section 3.1.3), and the trailing beat may carry don't-care bits,
* everything else moves one element per beat.

These helpers are shared by the driver runtime, the C generator (for
computing transfer counts in comments) and the test-suite round-trip checks.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.core.params import IOParams
from repro.rtl.signal import mask_for_width

Value = Union[int, Sequence[int]]


def words_for_scalar(value: int, width: int, bus_width: int) -> List[int]:
    """Split one ``width``-bit value into bus beats, least significant first."""
    value = int(value) & mask_for_width(max(width, 1))
    beats = max(1, -(-width // bus_width))
    bus_mask = mask_for_width(bus_width)
    return [(value >> (i * bus_width)) & bus_mask for i in range(beats)]


def scalar_from_words(words: Sequence[int], width: int, bus_width: int) -> int:
    """Inverse of :func:`words_for_scalar`."""
    value = 0
    for index, word in enumerate(words):
        value |= (int(word) & mask_for_width(bus_width)) << (index * bus_width)
    return value & mask_for_width(max(width, 1))


def serialize_io(io: IOParams, value: Value, bus_width: int, element_count: int) -> List[int]:
    """Serialise one declared input/output into the beats the bus will carry."""
    if not io.is_pointer:
        return words_for_scalar(int(value), io.io_width, bus_width)

    values = list(value) if isinstance(value, (list, tuple)) else [int(value)]
    if len(values) < element_count:
        raise ValueError(
            f"I/O {io.io_name!r} needs {element_count} elements but only {len(values)} were supplied"
        )
    values = values[:element_count]
    if not values:
        # A zero-count pointer transfers no beats at all: the hardware stub
        # skips the corresponding input state entirely, so emitting a padding
        # word here would desynchronise the ICOB state machine.
        return []

    if io.is_packed and io.io_width < bus_width:
        per_beat = max(1, bus_width // io.io_width)
        element_mask = mask_for_width(io.io_width)
        words: List[int] = []
        for index in range(0, len(values), per_beat):
            word = 0
            for slot, element in enumerate(values[index:index + per_beat]):
                word |= (int(element) & element_mask) << (slot * io.io_width)
            words.append(word)
        return words or [0]

    words = []
    for element in values:
        words.extend(words_for_scalar(int(element), io.io_width, bus_width))
    return words or [0]


def deserialize_io(io: IOParams, words: Sequence[int], bus_width: int, element_count: int) -> Value:
    """Reassemble bus beats into the value(s) the C caller expects."""
    if not io.is_pointer:
        return scalar_from_words(words, io.io_width, bus_width)

    if io.is_packed and io.io_width < bus_width:
        per_beat = max(1, bus_width // io.io_width)
        element_mask = mask_for_width(io.io_width)
        elements: List[int] = []
        for word in words:
            for slot in range(per_beat):
                elements.append((int(word) >> (slot * io.io_width)) & element_mask)
        return elements[:element_count]

    words_per_element = max(1, -(-io.io_width // bus_width))
    elements = []
    for index in range(0, len(words), words_per_element):
        elements.append(scalar_from_words(words[index:index + words_per_element], io.io_width, bus_width))
    return elements[:element_count]


def beat_count(io: IOParams, bus_width: int, element_count: int) -> int:
    """Number of bus beats :func:`serialize_io` will produce."""
    if not io.is_pointer:
        return max(1, -(-io.io_width // bus_width))
    if element_count <= 0:
        return 0
    if io.is_packed and io.io_width < bus_width:
        per_beat = max(1, bus_width // io.io_width)
        return -(-element_count // per_beat)
    return element_count * max(1, -(-io.io_width // bus_width))
