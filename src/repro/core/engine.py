"""The Splice engine: parse, validate, and generate (Figure 1.1).

:class:`Splice` is the top-level object a user interacts with.  Given the
text of a specification file it produces a :class:`GenerationResult` holding

* the parsed specification and the shared parameter structure,
* the generated hardware (IR + HDL text for every file in the Figure 8.3
  listing),
* the generated software driver sources (Figure 8.7 listing), and
* helpers to elaborate the design into simulatable RTL and runtime drivers.

Plugins registered through the extension API (Chapter 7) add new target
buses; the built-in PLB, OPB, FCB and APB targets are always available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from repro.core.api.plugin import BusAdapterPlugin, PluginRegistry
from repro.core.capabilities import BusCapabilities, default_capabilities
from repro.core.drivers.cgen import generate_driver_sources
from repro.core.drivers.macro_lib import SoftwareMacroLibrary, macro_library_for
from repro.core.generation.generator import HardwareOutput, generate_hardware
from repro.core.generation.macros import standard_registry
from repro.core.params import ModuleParams, build_params
from repro.core.syntax.ast import SpliceSpec
from repro.core.syntax.errors import SpliceError
from repro.core.syntax.parser import parse_spec
from repro.core.syntax.validation import validate_spec


@dataclass
class GenerationResult:
    """Everything Splice produces for one specification."""

    spec: SpliceSpec
    module: ModuleParams
    bus: BusCapabilities
    hardware: HardwareOutput
    driver_sources: Dict[str, str] = field(default_factory=dict)
    macro_library: Optional[SoftwareMacroLibrary] = None

    # -- convenience views ------------------------------------------------------

    @property
    def hardware_files(self) -> Dict[str, str]:
        return self.hardware.files

    @property
    def device_name(self) -> str:
        return self.module.mod_name

    def hardware_file_listing(self):
        """Primary generated HDL files (Figure 8.3 style, without the
        structural duplicates)."""
        return [name for name in self.hardware.files if ".structural." not in name]

    def software_file_listing(self):
        """Generated software files (Figure 8.7 style)."""
        return list(self.driver_sources)

    def write_to(self, directory) -> Dict[str, str]:
        """Write every generated file under ``directory/<device_name>/``.

        Mirrors the %device_name behaviour of Section 3.2.3: the tool creates
        a subdirectory named after the device and places everything there.
        Returns a mapping of file name -> absolute path written.
        """
        root = Path(directory) / self.device_name
        root.mkdir(parents=True, exist_ok=True)
        written: Dict[str, str] = {}
        for name, text in {**self.hardware.files, **self.driver_sources}.items():
            path = root / name
            path.write_text(text)
            written[name] = str(path)
        return written

    # -- elaboration --------------------------------------------------------------

    def elaborate(self, slave_bundle, *, behaviors=None, calc_latencies=None, adapter_class=None):
        """Build the simulatable RTL for this design (see :mod:`repro.soc`)."""
        from repro.core.generation.peripheral import GeneratedPeripheral

        return GeneratedPeripheral(
            self.module,
            self.bus,
            slave_bundle,
            behaviors=behaviors,
            calc_latencies=calc_latencies,
            adapter_class=adapter_class,
        )


class Splice:
    """The standardized peripheral logic and interface creation engine."""

    def __init__(self) -> None:
        self._capabilities = default_capabilities()
        self._plugins = PluginRegistry()

    # -- extension API ---------------------------------------------------------

    def register_plugin(self, plugin: BusAdapterPlugin, *, replace: bool = False) -> None:
        """Import an external bus library (Section 7.2)."""
        self._plugins.register(plugin, replace=replace)
        self._capabilities[plugin.name.lower()] = plugin.capabilities

    @property
    def supported_buses(self):
        """Names accepted by ``%bus_type`` in this engine instance."""
        return sorted(self._capabilities)

    def capabilities_for(self, bus_name: str) -> BusCapabilities:
        return self._capabilities[bus_name.lower()]

    # -- the main entry points -----------------------------------------------------

    def parse(self, source: str) -> SpliceSpec:
        """Parse a specification without generating anything."""
        return parse_spec(source)

    def generate(self, source: str) -> GenerationResult:
        """Parse, validate and generate hardware + software for ``source``."""
        spec = parse_spec(source)
        bus = validate_spec(spec, self._capabilities)
        module = build_params(spec, bus)

        plugin = self._plugins.get(bus.name)
        registry = standard_registry()
        extra_markers = {}
        interface_builder = None
        interface_template = None
        macro_library: SoftwareMacroLibrary
        if plugin is not None:
            from repro.core.generation.interface import generic_interface_ir

            plugin.check_parameters(module)
            extra_markers = dict(plugin.markers)
            macro_library = plugin.macro_library
            interface_builder = plugin.interface_builder or generic_interface_ir
            interface_template = plugin.template or None
        else:
            macro_library = macro_library_for(bus.name)

        hardware = generate_hardware(
            module,
            bus,
            registry=registry,
            extra_markers=extra_markers,
            interface_builder=interface_builder,
            interface_template=interface_template,
        )
        drivers = generate_driver_sources(module, macro_library)
        return GenerationResult(
            spec=spec,
            module=module,
            bus=bus,
            hardware=hardware,
            driver_sources=drivers,
            macro_library=macro_library,
        )

    def generate_file(self, path) -> GenerationResult:
        """Generate from a specification file on disk."""
        text = Path(path).read_text()
        try:
            return self.generate(text)
        except SpliceError as exc:
            raise type(exc)(f"{path}: {exc}") from exc
