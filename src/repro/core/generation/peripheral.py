"""Elaboration of a generated peripheral into simulatable RTL.

:class:`GeneratedPeripheral` wires together everything Figure 5.1 shows: the
native bus interface adapter, the SIS arbitration unit, and one
:class:`~repro.core.generation.stub_rtl.FunctionStub` per function instance.
The user supplies *behaviours* — Python callables standing in for the
calculation logic they would write into the generated VHDL stubs — and
optional per-function calculation latencies.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.buses.base import SlaveBundle
from repro.core.capabilities import BusCapabilities
from repro.core.generation.adapters_rtl import ADAPTER_CLASSES, APBToSIS
from repro.core.generation.arbiter_rtl import SISArbiter
from repro.core.generation.stub_rtl import Behavior, FunctionStub
from repro.core.params import ModuleParams
from repro.core.syntax.errors import SpliceGenerationError
from repro.rtl.module import Module
from repro.sis.signals import SISBundle, SISFunctionPort

#: Behaviours may be supplied per function, or per instance as a list.
BehaviorSpec = Union[Behavior, List[Behavior]]


class GeneratedPeripheral(Module):
    """The complete elaborated hardware for one Splice-generated peripheral."""

    def __init__(
        self,
        module_params: ModuleParams,
        bus: BusCapabilities,
        slave: SlaveBundle,
        *,
        behaviors: Optional[Dict[str, BehaviorSpec]] = None,
        calc_latencies: Optional[Dict[str, int]] = None,
        adapter_class: Optional[Callable] = None,
    ) -> None:
        super().__init__(f"{module_params.mod_name}_peripheral")
        self.module_params = module_params
        self.bus = bus
        self.slave = slave
        behaviors = behaviors or {}
        calc_latencies = calc_latencies or {}

        self.sis = SISBundle(
            data_width=module_params.data_width,
            func_id_width=module_params.func_id_width,
            name=f"{module_params.mod_name}.sis",
        )

        strictly_synchronous = bus.strictly_synchronous

        # Per-instance stubs and their SIS ports.
        self.stubs: Dict[str, List[FunctionStub]] = {}
        self.ports: Dict[int, SISFunctionPort] = {}
        for func in module_params.funcs:
            spec = behaviors.get(func.func_name)
            latency = calc_latencies.get(func.func_name, 1)
            instances: List[FunctionStub] = []
            for instance in range(func.nmbr_instances):
                behavior = self._behavior_for(spec, instance)
                func_id = func.func_id + instance
                port = self.sis.new_function_port(
                    f"{module_params.mod_name}.{func.func_name}[{instance}]", func_id
                )
                stub = FunctionStub(
                    func,
                    module_params,
                    self.sis,
                    port,
                    behavior=behavior,
                    calc_latency=latency,
                    strictly_synchronous=strictly_synchronous,
                    instance_index=instance,
                )
                self.ports[func_id] = port
                instances.append(stub)
                self.submodule(stub)
            self.stubs[func.func_name] = instances

        # Arbitration unit.
        self.arbiter = SISArbiter(
            f"user_{module_params.mod_name}", self.sis, list(self.ports.values())
        )
        self.submodule(self.arbiter)

        # Native bus interface adapter.
        bus_name = bus.name.lower()
        adapter_factory = adapter_class or ADAPTER_CLASSES.get(bus_name)
        if adapter_factory is None:
            raise SpliceGenerationError(
                f"no RTL adapter available for bus {bus_name!r}; supply adapter_class"
            )
        if adapter_factory is APBToSIS or (
            adapter_class is None and bus_name == "apb"
        ):
            self.adapter = APBToSIS(
                f"{bus_name}_interface", slave, self.sis, self.ports, module_params.base_addr
            )
        else:
            self.adapter = adapter_factory(f"{bus_name}_interface", slave, self.sis)
        self.submodule(self.adapter)

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _behavior_for(spec: Optional[BehaviorSpec], instance: int) -> Optional[Behavior]:
        if spec is None:
            return None
        if isinstance(spec, list):
            if instance >= len(spec):
                raise SpliceGenerationError(
                    f"behaviour list has {len(spec)} entries but instance {instance} was requested"
                )
            return spec[instance]
        return spec

    def stub(self, func_name: str, instance: int = 0) -> FunctionStub:
        """The elaborated stub for ``func_name`` (instance ``instance``)."""
        return self.stubs[func_name][instance]

    def attach(self, simulator) -> None:
        """Register child modules plus the externally-created signal bundles."""
        super().attach(simulator)
        simulator.add_signals(self.sis.signals())
        for port in self.ports.values():
            simulator.add_signals(port.signals())
        simulator.add_signals(self.slave.signals())
