"""Intermediate representation of generated hardware.

The generators do not emit HDL text directly.  They first build a small
structural IR — entities with ports, registers, state machines, counters,
comparators and multiplexers — which is then

* rendered to VHDL or Verilog by the text back-ends,
* charged LUT/FF costs by :mod:`repro.resources`, and
* elaborated into simulatable RTL modules.

Keeping the IR structural (rather than behavioural) matches what matters for
the paper's evaluation: Figure 9.3 compares *resource usage*, which is a
function of exactly these structural elements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class PortDirection(enum.Enum):
    IN = "in"
    OUT = "out"
    INOUT = "inout"


class EntityKind(enum.Enum):
    """What role a generated entity plays in Figure 5.1."""

    BUS_INTERFACE = "bus_interface"
    ARBITER = "arbiter"
    USER_LOGIC = "user_logic"
    SUPPORT = "support"


@dataclass
class PortIR:
    """One port of a generated entity."""

    name: str
    width: int
    direction: PortDirection
    description: str = ""


@dataclass
class RegisterIR:
    """A flip-flop register inferred by the generator."""

    name: str
    width: int
    purpose: str = ""


@dataclass
class CounterIR:
    """An up-counter with a terminal-count comparator (array/packing tracking)."""

    name: str
    width: int
    purpose: str = ""


@dataclass
class ComparatorIR:
    """An equality/magnitude comparator (e.g. FUNC_ID match, index compare)."""

    name: str
    width: int
    purpose: str = ""


@dataclass
class MuxIR:
    """A multiplexer with ``inputs`` alternatives of ``width`` bits each."""

    name: str
    inputs: int
    width: int
    purpose: str = ""


@dataclass
class FSMIR:
    """A finite state machine with named states."""

    name: str
    states: List[str]
    purpose: str = ""

    @property
    def state_bits(self) -> int:
        return max(1, (len(self.states) - 1).bit_length())


@dataclass
class EntityIR:
    """One generated hardware entity (one output HDL file)."""

    name: str
    kind: EntityKind
    description: str = ""
    ports: List[PortIR] = field(default_factory=list)
    registers: List[RegisterIR] = field(default_factory=list)
    counters: List[CounterIR] = field(default_factory=list)
    comparators: List[ComparatorIR] = field(default_factory=list)
    muxes: List[MuxIR] = field(default_factory=list)
    fsms: List[FSMIR] = field(default_factory=list)
    attributes: Dict[str, object] = field(default_factory=dict)
    #: Extra resource overhead (in equivalent LUTs) for logic the structural
    #: elements above do not capture, e.g. a DMA engine inside a bus adapter.
    overhead_luts: int = 0

    # -- builder helpers -----------------------------------------------------

    def add_port(self, name: str, width: int, direction: PortDirection, description: str = "") -> PortIR:
        port = PortIR(name, width, direction, description)
        self.ports.append(port)
        return port

    def add_register(self, name: str, width: int, purpose: str = "") -> RegisterIR:
        register = RegisterIR(name, width, purpose)
        self.registers.append(register)
        return register

    def add_counter(self, name: str, width: int, purpose: str = "") -> CounterIR:
        counter = CounterIR(name, width, purpose)
        self.counters.append(counter)
        return counter

    def add_comparator(self, name: str, width: int, purpose: str = "") -> ComparatorIR:
        comparator = ComparatorIR(name, width, purpose)
        self.comparators.append(comparator)
        return comparator

    def add_mux(self, name: str, inputs: int, width: int, purpose: str = "") -> MuxIR:
        mux = MuxIR(name, inputs, width, purpose)
        self.muxes.append(mux)
        return mux

    def add_fsm(self, name: str, states: List[str], purpose: str = "") -> FSMIR:
        fsm = FSMIR(name, list(states), purpose)
        self.fsms.append(fsm)
        return fsm

    # -- summary ------------------------------------------------------------

    @property
    def register_bits(self) -> int:
        """Total flip-flop bits implied by registers, counters and FSMs."""
        bits = sum(r.width for r in self.registers)
        bits += sum(c.width for c in self.counters)
        bits += sum(f.state_bits for f in self.fsms)
        return bits

    def port(self, name: str) -> PortIR:
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"entity {self.name!r} has no port {name!r}")


@dataclass
class HardwareIR:
    """The complete set of entities generated for one peripheral."""

    device_name: str
    bus_type: str
    data_width: int
    entities: List[EntityIR] = field(default_factory=list)
    #: Mapping of output file name -> entity name (Figure 8.3 style listing).
    files: Dict[str, str] = field(default_factory=dict)

    def add_entity(self, entity: EntityIR, filename: Optional[str] = None) -> EntityIR:
        self.entities.append(entity)
        if filename is not None:
            self.files[filename] = entity.name
        return entity

    def entity(self, name: str) -> EntityIR:
        for entity in self.entities:
            if entity.name == name:
                return entity
        raise KeyError(f"no generated entity named {name!r}")

    def entities_of_kind(self, kind: EntityKind) -> List[EntityIR]:
        return [e for e in self.entities if e.kind is kind]

    def file_listing(self) -> List[str]:
        """File names in generation order (interface, arbiter, then stubs)."""
        return list(self.files)
