"""The standard hardware macro set (Figure 7.1).

These handlers fill the ``%SYMBOL%`` markers that every native interface
adapter template may reference.  Bus-specific markers are added on top of
this set by each adapter's *marker loader* routine.
"""

from __future__ import annotations

from typing import Dict

from repro.core.generation.template import MacroContext, MacroHandler, MacroRegistry
from repro.core.params import FuncParams, ModuleParams
from repro.core.syntax.errors import SpliceGenerationError

#: Fixed timestamp used when the caller does not supply one; generation is
#: deterministic so tests and resource reports are reproducible.
DEFAULT_GEN_DATE = "1970-01-01 00:00:00 (deterministic build)"


def _require_func(context: MacroContext, macro: str) -> FuncParams:
    if context.func is None:
        raise SpliceGenerationError(
            f"macro %{macro}% is only valid inside a per-function template region"
        )
    return context.func


# -- module-level macros -----------------------------------------------------------


def _comp_name(context: MacroContext) -> str:
    return context.module.mod_name


def _bus_width(context: MacroContext) -> str:
    return str(context.module.data_width)


def _func_id_width(context: MacroContext) -> str:
    return str(context.module.func_id_width)


def _base_addr(context: MacroContext) -> str:
    return f"0x{context.module.base_addr:08X}"


def _gen_date(context: MacroContext) -> str:
    return str(context.extra.get("gen_date", DEFAULT_GEN_DATE))


def _dma_enabled(context: MacroContext) -> str:
    return "true" if context.module.dma_support_f else "false"


# -- per-function macros -----------------------------------------------------------


def _func_name(context: MacroContext) -> str:
    return _require_func(context, "FUNC_NAME").func_name


def _my_func_id(context: MacroContext) -> str:
    return str(_require_func(context, "MY_FUNC_ID").func_id)


def _func_insts(context: MacroContext) -> str:
    return str(_require_func(context, "FUNC_INSTS").nmbr_instances)


def _func_consts(context: MacroContext) -> str:
    func = _require_func(context, "FUNC_CONSTS")
    module = context.module
    lines = [
        f"constant MY_FUNC_ID : integer := {func.func_id};",
        f"constant MY_INSTANCES : integer := {func.nmbr_instances};",
    ]
    for io in func.inputs:
        if io.io_number is not None:
            lines.append(
                f"constant {io.io_name}_max_value : integer := "
                f"{max(0, io.beats(module.data_width) - 1)};"
            )
    return "\n".join(lines)


def _func_signals(context: MacroContext) -> str:
    func = _require_func(context, "FUNC_SIGNALS")
    module = context.module
    lines = []
    for io in func.inputs:
        width = min(io.io_width, module.data_width) if not io.is_packed else module.data_width
        lines.append(f"signal {io.io_name}_reg : std_logic_vector({max(width,1)-1} downto 0);")
        if io.is_pointer or io.io_width > module.data_width:
            lines.append(f"signal {io.io_name}_counter : unsigned(15 downto 0);")
        if io.has_index:
            lines.append(f"signal {io.io_name}_limit : unsigned(15 downto 0);")
    if func.has_output and func.output is not None:
        lines.append(
            f"signal result_reg : std_logic_vector({max(func.output.io_width,1)-1} downto 0);"
        )
        lines.append("signal result_counter : unsigned(15 downto 0);")
    return "\n".join(lines)


def _func_fsm(context: MacroContext) -> str:
    func = _require_func(context, "FUNC_FSM")
    states = [f"IN_{io.io_name}" for io in func.inputs] or ["TRIGGER"]
    states.append("CALC")
    states.append("OUT_RESULT" if func.has_output or func.blocking else "IDLE_RETURN")
    declared = ", ".join(states)
    return (
        f"type state_type is ({declared});\n"
        "signal cur_state, next_state : state_type;\n"
        "smb : process (CLK) begin\n"
        "  if rising_edge(CLK) then\n"
        "    if (RST = '1') then cur_state <= "
        f"{states[0]};\n"
        "    else cur_state <= next_state; end if;\n"
        "  end if;\n"
        "end process;"
    )


def _func_stub(context: MacroContext) -> str:
    func = _require_func(context, "FUNC_STUB")
    return f"-- I/O handler stub process for {func.func_name} (fill in calculation states)"


# -- arbitration macros -----------------------------------------------------------


def _mux(context: MacroContext, signal: str) -> str:
    module = context.module
    lines = [f"with FUNC_ID select {signal} <="]
    for func in module.funcs:
        for inst, func_id in enumerate(func.instance_ids()):
            suffix = f"_{inst}" if func.nmbr_instances > 1 else ""
            lines.append(f"  {func.func_name}{suffix}_{signal} when \"{func_id:0{module.func_id_width}b}\",")
    lines.append("  (others => '0') when others;")
    return "\n".join(lines)


def _data_out_mux(context: MacroContext) -> str:
    return _mux(context, "DATA_OUT")


def _data_out_v_mux(context: MacroContext) -> str:
    return _mux(context, "DATA_OUT_VALID")


def _io_done_mux(context: MacroContext) -> str:
    return _mux(context, "IO_DONE")


def _calc_done_encode(context: MacroContext) -> str:
    module = context.module
    lines = []
    for func in module.funcs:
        for inst, func_id in enumerate(func.instance_ids()):
            suffix = f"_{inst}" if func.nmbr_instances > 1 else ""
            lines.append(
                f"CALC_DONE_VECTOR({func_id - 1}) <= {func.func_name}{suffix}_CALC_DONE;"
            )
    return "\n".join(lines)


#: The built-in macro table (Figure 7.1), name -> handler.
STANDARD_MACROS: Dict[str, MacroHandler] = {
    "COMP_NAME": _comp_name,
    "BUS_WIDTH": _bus_width,
    "FUNC_ID_WIDTH": _func_id_width,
    "BASE_ADDR": _base_addr,
    "GEN_DATE": _gen_date,
    "DMA_ENABLED": _dma_enabled,
    "FUNC_NAME": _func_name,
    "MY_FUNC_ID": _my_func_id,
    "FUNC_INSTS": _func_insts,
    "FUNC_CONSTS": _func_consts,
    "FUNC_SIGNALS": _func_signals,
    "FUNC_FSM": _func_fsm,
    "FUNC_STUB": _func_stub,
    "DATA_OUT_MUX": _data_out_mux,
    "DATA_OUT_V_MUX": _data_out_v_mux,
    "IO_DONE_MUX": _io_done_mux,
    "CALC_DONE_ENCODE": _calc_done_encode,
}


def standard_registry() -> MacroRegistry:
    """A fresh registry pre-loaded with the Figure 7.1 macro set."""
    registry = MacroRegistry()
    registry.register_many(STANDARD_MACROS)
    return registry


def build_context(module: ModuleParams, **extra) -> MacroContext:
    """Convenience constructor for a module-level macro context."""
    return MacroContext(module, extra=extra)
