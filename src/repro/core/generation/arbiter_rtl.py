"""Simulatable arbitration unit — the elaborated form of Section 5.2.

The arbiter is purely combinational: based on the shared ``FUNC_ID`` it
multiplexes the selected function's ``DATA_OUT`` / ``DATA_OUT_VALID`` /
``IO_DONE`` onto the shared SIS bundle and continuously concatenates every
function's ``CALC_DONE`` flag into the status vector.  Function identifier
zero selects the status vector itself and always reports ready, which is how
generated drivers poll for completion on strictly synchronous buses.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.core.params import STATUS_FUNC_ID
from repro.rtl.module import Module
from repro.sis.signals import SISBundle, SISFunctionPort


class SISArbiter(Module):
    """Multiplexes per-function SIS ports onto the shared bundle."""

    def __init__(self, name: str, sis: SISBundle, ports: Iterable[SISFunctionPort]) -> None:
        super().__init__(name)
        self.sis = sis
        self.ports: Dict[int, SISFunctionPort] = {}
        for port in ports:
            if port.func_id in self.ports:
                raise ValueError(f"duplicate function id {port.func_id} attached to arbiter {name!r}")
            if port.func_id == STATUS_FUNC_ID:
                raise ValueError("function id 0 is reserved for the CALC_DONE status register")
            self.ports[port.func_id] = port
        # The mux reads FUNC_ID plus every per-function output; declaring the
        # full input set lets the event-driven kernel skip it otherwise, and
        # the output set lets the compiled kernel levelize it.
        sensitivity = [sis.func_id]
        for port in self.ports.values():
            sensitivity += [port.data_out, port.data_out_valid, port.io_done, port.calc_done]
        self.comb(
            self._mux,
            sensitive_to=sensitivity,
            drives=[sis.calc_done, sis.data_out, sis.data_out_valid, sis.io_done],
        )

    # -- combinational multiplexing ------------------------------------------------

    def status_vector(self) -> int:
        """The amalgamated CALC_DONE vector (bit ``func_id - 1`` per function)."""
        vector = 0
        for func_id, port in self.ports.items():
            if port.calc_done.value:
                vector |= 1 << (func_id - 1)
        return vector

    def _mux(self) -> None:
        sis = self.sis
        vector = self.status_vector()
        sis.calc_done.drive(vector)

        selected = sis.func_id.value
        if selected == STATUS_FUNC_ID:
            # The status register is always readable and never busy.
            sis.data_out.drive(vector)
            sis.data_out_valid.drive(1)
            sis.io_done.drive(1)
            return

        port = self.ports.get(selected)
        if port is None:
            sis.data_out.drive(0)
            sis.data_out_valid.drive(0)
            sis.io_done.drive(0)
            return
        sis.data_out.drive(port.data_out.value)
        sis.data_out_valid.drive(port.data_out_valid.value)
        sis.io_done.drive(port.io_done.value)
