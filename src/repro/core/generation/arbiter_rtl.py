"""Simulatable arbitration unit — the elaborated form of Section 5.2.

The arbiter is purely combinational: based on the shared ``FUNC_ID`` it
multiplexes the selected function's ``DATA_OUT`` / ``DATA_OUT_VALID`` /
``IO_DONE`` onto the shared SIS bundle and continuously concatenates every
function's ``CALC_DONE`` flag into the status vector.  Function identifier
zero selects the status vector itself and always reports ready, which is how
generated drivers poll for completion on strictly synchronous buses.
"""

from __future__ import annotations

import functools
from typing import Dict, Iterable, Optional

from repro.core.params import STATUS_FUNC_ID
from repro.rtl.fsm import BoundFsm, Drive, Exec, FsmSpec, If, resolve_backend
from repro.rtl.module import Module
from repro.sis.signals import SISBundle, SISFunctionPort


def status_vector_ops(func_ids, temp: str = "v"):
    """IR ops accumulating the amalgamated CALC_DONE vector into ``temp``.

    Bit ``func_id - 1`` per function, reading the per-port ``p<id>_cd``
    bindings — the single authority on the status-register encoding, shared
    by the arbiter mux and the APB read mux so they cannot drift apart.
    """
    ops = [Exec(f"{temp} = 0")]
    for func_id in func_ids:
        ops.append(
            If(f"p{func_id}_cd._value", (Exec(f"{temp} |= {1 << (func_id - 1)}"),))
        )
    return ops


class SISArbiter(Module):
    """Multiplexes per-function SIS ports onto the shared bundle."""

    def __init__(
        self,
        name: str,
        sis: SISBundle,
        ports: Iterable[SISFunctionPort],
        fsm_backend: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.sis = sis
        self.ports: Dict[int, SISFunctionPort] = {}
        for port in ports:
            if port.func_id in self.ports:
                raise ValueError(f"duplicate function id {port.func_id} attached to arbiter {name!r}")
            if port.func_id == STATUS_FUNC_ID:
                raise ValueError("function id 0 is reserved for the CALC_DONE status register")
            self.ports[port.func_id] = port
        # The mux reads FUNC_ID plus every per-function output; declaring the
        # full input set lets the event-driven kernel skip it otherwise, and
        # the output set lets the compiled kernel levelize it.
        sensitivity = [sis.func_id]
        for port in self.ports.values():
            sensitivity += [port.data_out, port.data_out_valid, port.io_done, port.calc_done]
        drives = [sis.calc_done, sis.data_out, sis.data_out_valid, sis.io_done]
        if resolve_backend(fsm_backend) == "ir":
            signals = {
                "s_fid": sis.func_id, "s_cd": sis.calc_done,
                "s_dout": sis.data_out, "s_dov": sis.data_out_valid,
                "s_iod": sis.io_done,
            }
            for func_id, port in self.ports.items():
                signals[f"p{func_id}_do"] = port.data_out
                signals[f"p{func_id}_dov"] = port.data_out_valid
                signals[f"p{func_id}_iod"] = port.io_done
                signals[f"p{func_id}_cd"] = port.calc_done
            self.fsm = BoundFsm(
                self._fsm_spec(tuple(self.ports)), self, signals=signals
            )
            self.comb(self.fsm.tick, sensitive_to=sensitivity, drives=drives)
        else:
            self.comb(self._mux, sensitive_to=sensitivity, drives=drives)

    @staticmethod
    @functools.lru_cache(maxsize=None)
    def _fsm_spec(func_ids) -> FsmSpec:
        """The arbitration mux as comb FSM IR, functions unrolled at build.

        The status-vector concatenation becomes straight-line per-function
        bit ORs and the selection becomes a compare chain — no dict lookups
        or Python iteration remain once lowered into the settle sweep.
        """
        select: tuple = (
            Drive("s_dout", "0"),
            Drive("s_dov", "0"),
            Drive("s_iod", "0"),
        )
        for func_id in reversed(func_ids):
            select = (
                If(
                    f"sel == {func_id}",
                    (
                        Drive("s_dout", f"p{func_id}_do._value"),
                        Drive("s_dov", f"p{func_id}_dov._value"),
                        Drive("s_iod", f"p{func_id}_iod._value"),
                    ),
                    orelse=select,
                ),
            )
        entry = status_vector_ops(func_ids)
        entry.append(Drive("s_cd", "v"))
        entry.append(Exec("sel = s_fid._value"))
        entry.append(
            If(
                f"sel == {STATUS_FUNC_ID}",
                (
                    Drive("s_dout", "v"),
                    Drive("s_dov", "1"),
                    Drive("s_iod", "1"),
                ),
                orelse=select,
            )
        )
        signals = ["s_fid", "s_cd", "s_dout", "s_dov", "s_iod"]
        for func_id in func_ids:
            signals += [
                f"p{func_id}_do", f"p{func_id}_dov", f"p{func_id}_iod", f"p{func_id}_cd"
            ]
        return FsmSpec(
            name="sis_arbiter_mux",
            kind="comb",
            entry=tuple(entry),
            signals=tuple(signals),
            temps=("v", "sel"),
        )

    # -- combinational multiplexing ------------------------------------------------

    def status_vector(self) -> int:
        """The amalgamated CALC_DONE vector (bit ``func_id - 1`` per function)."""
        vector = 0
        for func_id, port in self.ports.items():
            if port.calc_done.value:
                vector |= 1 << (func_id - 1)
        return vector

    def _mux(self) -> None:
        sis = self.sis
        vector = self.status_vector()
        sis.calc_done.drive(vector)

        selected = sis.func_id.value
        if selected == STATUS_FUNC_ID:
            # The status register is always readable and never busy.
            sis.data_out.drive(vector)
            sis.data_out_valid.drive(1)
            sis.io_done.drive(1)
            return

        port = self.ports.get(selected)
        if port is None:
            sis.data_out.drive(0)
            sis.data_out_valid.drive(0)
            sis.io_done.drive(0)
            return
        sis.data_out.drive(port.data_out.value)
        sis.data_out_valid.drive(port.data_out_valid.value)
        sis.io_done.drive(port.io_done.value)
