"""Simulatable user-logic stub (ICOB + SMB) — the elaborated form of Section 5.3.

:class:`FunctionStub` implements, cycle by cycle, exactly the behaviour the
generated VHDL stubs describe: input states that capture one bus beat at a
time (with split, packed and implicit-bound tracking), a calculation stage
whose body is the user-supplied ``behavior`` callable (the "filled-in"
calculation logic), and an output / pseudo-output stage that answers read
requests and drives ``CALC_DONE``.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List, Optional, Union

from repro.core.params import FuncParams, IOParams, ModuleParams
from repro.rtl.fsm import (
    Active,
    BoundFsm,
    Call,
    Exec,
    FsmSpec,
    If,
    Pulse,
    Schedule,
    Sleep,
    StateDispatch,
    resolve_backend,
)
from repro.rtl.module import Module
from repro.rtl.signal import mask_for_width
from repro.sis.signals import SISBundle, SISFunctionPort

#: Signature of user calculation logic: keyword arguments named after the
#: declaration's inputs (ints for scalars, lists of ints for arrays); the
#: return value is an int, a list of ints, or ``None`` for void functions.
Behavior = Callable[..., Union[int, List[int], None]]


def _default_behavior(**_inputs) -> int:
    """The empty calculation state Splice generates by default."""
    return 0


class FunctionStub(Module):
    """One user-logic function instance attached to the SIS."""

    def __init__(
        self,
        func: FuncParams,
        module_params: ModuleParams,
        sis: SISBundle,
        port: SISFunctionPort,
        *,
        behavior: Optional[Behavior] = None,
        calc_latency: int = 1,
        strictly_synchronous: bool = False,
        instance_index: int = 0,
        fsm_backend: Optional[str] = None,
    ) -> None:
        suffix = f"_{instance_index}" if func.nmbr_instances > 1 else ""
        super().__init__(f"func_{func.func_name}{suffix}")
        self.func = func
        self.module_params = module_params
        self.sis = sis
        self.port = port
        self.behavior: Behavior = behavior or _default_behavior
        self.calc_latency = max(1, calc_latency)
        self.strictly_synchronous = strictly_synchronous
        self.instance_index = instance_index
        self.my_func_id = func.func_id + instance_index

        self._states = self._build_states()
        self._state = self._states[0]
        # Per-state caches (current input descriptor, its expected beat
        # count, and the state's position): recomputing these on every bus
        # beat was measurable per-transaction overhead on every kernel.
        self._state_io: Optional[IOParams] = None
        self._state_beats = 0
        self._state_pos = 0
        self._beat_buffer: List[int] = []
        self._captured: Dict[str, Union[int, List[int]]] = {}
        self._output_words: List[int] = []
        self._out_index = 0
        self._calc_until = 0
        self._pending_read = False

        self._enter_state(self._states[0])

        #: Number of completed activations (useful for tests and examples).
        self.activations = 0
        #: History of captured input dictionaries, most recent last.
        self.call_log: List[Dict[str, Union[int, List[int]]]] = []

        # Declaring the ICOB's complete SIS-side input set opts it into the
        # compiled kernel's wait-state elision: an idle stub (sitting in an
        # input/trigger/output wait state with stable inputs) is skipped
        # entirely, and the machine's return value reports when it must keep
        # running regardless (mid-calculation, strobes to deassert, ...).
        sensitivity = [sis.rst, sis.io_enable, sis.func_id, sis.data_in, sis.data_in_valid]
        if resolve_backend(fsm_backend) == "ir":
            self.fsm = BoundFsm(
                self._fsm_spec(),
                self,
                signals={
                    "s_rst": sis.rst, "s_ioe": sis.io_enable,
                    "s_fid": sis.func_id, "s_din": sis.data_in,
                    "s_div": sis.data_in_valid,
                    "p_cd": port.calc_done, "p_do": port.data_out,
                    "p_dov": port.data_out_valid, "p_iod": port.io_done,
                },
                helpers={
                    "h_reset_full": self._reset_full,
                    "h_reset_soft": self._reset_soft,
                    "h_finish_input": self._finish_input,
                    "h_enter_calc": self._enter_calc,
                    "h_run_calc": self._run_calc,
                },
                consts={"MYID": self.my_func_id},
            )
            self.clocked(self.fsm.tick, sensitive_to=sensitivity)
        else:
            self.clocked(self._icob, sensitive_to=sensitivity)

    # -- the ICOB as FSM IR ---------------------------------------------------

    def _fsm_spec(self) -> FsmSpec:
        """The ICOB as FSM IR: this stub's declared states, transliterated."""
        return self._fsm_spec_for(tuple(self._states), self.strictly_synchronous)

    @staticmethod
    @functools.lru_cache(maxsize=None)
    def _fsm_spec_for(state_names: tuple, strict: bool) -> FsmSpec:
        """Build (and cache, per state-list shape) the ICOB machine.

        Every ``IN_<io>`` state shares one body (the per-state beat count is
        cached in ``_state_beats`` by ``_enter_state``); the calculation
        countdown is a :class:`Sleep` park expressed against the simulator
        cycle; the boundary work — beat reassembly, the user behaviour call,
        activation resets — stays in the retained helpers.  States are
        entered both by IR transitions and by the helpers
        (``_enter_state``/``_enter_calc``), so all are declared external.
        """
        entry: List[object] = []
        if strict:
            # The strictly synchronous *held* DATA_OUT_VALID must drop when
            # the ICOB leaves its output state abnormally (reset mid-read).
            entry.append(
                If(
                    "m._state != 'OUT_RESULT' and m._state != 'OUT_STATUS'",
                    (
                        If(
                            "p_dov._value or p_dov._next is not None",
                            (Schedule("p_dov", "0"), Active("True")),
                        ),
                    ),
                )
            )
        entry.append(
            If(
                "s_rst._value",
                (
                    Call("h_reset_full"),
                    Schedule("p_cd", "0", capture=True),
                ),
                orelse=(
                    If(
                        "s_ioe._value and s_fid._value == MYID",
                        (
                            Exec("nreq = 1; wbeat = s_div._value"),
                            If("not wbeat", (Exec("m._pending_read = True"),)),
                            Active("True"),
                        ),
                        orelse=(Exec("nreq = 0; wbeat = 0"),),
                    ),
                    StateDispatch(),
                ),
            )
        )

        input_body = (
            If(
                "wbeat",
                (
                    Exec("m._beat_buffer.append(s_din._value)"),
                    Pulse("p_iod"),
                    If(
                        "len(m._beat_buffer) >= m._state_beats",
                        (Call("h_finish_input"),),
                    ),
                    Active("True"),
                ),
            ),
        )
        serve_tail: tuple = (
            (Schedule("p_cd", "0"), Schedule("p_dov", "0"), Call("h_reset_soft"))
            if strict
            else (Schedule("p_cd", "0"), Call("h_reset_soft"))
        )
        output_body = (
            # Steady wait-for-read state: re-asserting through schedule()
            # keeps quiescent cycles quiescent (nothing pending, no report).
            Schedule("p_cd", "1", capture=True),
            *(
                (
                    Schedule("p_do", "m._output_words[m._out_index]", capture=True),
                    Schedule("p_dov", "1", capture=True),
                )
                if strict
                else ()
            ),
            If(
                "m._pending_read",
                (
                    Exec("m._pending_read = False"),
                    Schedule("p_do", "m._output_words[m._out_index]"),
                    *(
                        (Schedule("p_dov", "1"),)
                        if strict
                        # Pseudo-asynchronous read: DATA_OUT_VALID rises with
                        # IO_DONE for exactly one cycle (Figure 4.3).
                        else (Pulse("p_dov"),)
                    ),
                    Pulse("p_iod"),
                    Exec("m._out_index += 1"),
                    If(
                        "m._out_index >= len(m._output_words)",
                        serve_tail,
                    ),
                    Active("True"),
                ),
            ),
        )
        states: Dict[str, tuple] = {}
        for state in state_names:
            if state.startswith("IN_"):
                states[state] = input_body
            elif state == "TRIGGER":
                states[state] = (
                    If(
                        "nreq",
                        (
                            If("wbeat", (Pulse("p_iod"),)),
                            Call("h_enter_calc"),
                            Active("True"),
                        ),
                    ),
                )
            elif state == "CALC":
                states[state] = (
                    If(
                        "CYCLE < m._calc_until",
                        (Sleep("m._calc_until - CYCLE"),),
                        orelse=(Call("h_run_calc"), Active("True")),
                    ),
                )
            else:  # OUT_RESULT / OUT_STATUS
                states[state] = output_body
        return FsmSpec(
            name="icob",
            entry=tuple(entry),
            states=states,
            initial=state_names[0],
            state_attr="_state",
            external_states=state_names,
            signals=(
                "s_rst", "s_ioe", "s_fid", "s_din", "s_div",
                "p_cd", "p_do", "p_dov", "p_iod",
            ),
            helpers=(
                "h_reset_full", "h_reset_soft", "h_finish_input",
                "h_enter_calc", "h_run_calc",
            ),
            consts=("MYID",),
            temps=("nreq", "wbeat"),
        )

    # -- state construction ----------------------------------------------------

    def _build_states(self) -> List[str]:
        states = [f"IN_{io.io_name}" for io in self.func.inputs]
        if not states:
            states.append("TRIGGER")
        states.append("CALC")
        if self.func.has_output:
            states.append("OUT_RESULT")
        elif self.func.blocking:
            states.append("OUT_STATUS")
        return states

    @property
    def state(self) -> str:
        """Name of the ICOB's current state (for tests and tracing)."""
        return self._state

    # -- helpers -----------------------------------------------------------------

    def _current_input(self) -> Optional[IOParams]:
        if self._state.startswith("IN_"):
            return self.func.input(self._state[3:])
        return None

    def _enter_state(self, state: str) -> None:
        """Transition to ``state``, refreshing the per-state caches."""
        self._state = state
        self._state_pos = self._states.index(state)
        if state.startswith("IN_"):
            io = self.func.input(state[3:])
            self._state_io = io
            # The beat count is fixed for the whole state: any implicit
            # bound it depends on was captured in an earlier input state.
            self._state_beats = self._expected_beats(io)
        else:
            self._state_io = None

    def _expected_beats(self, io: IOParams) -> int:
        bus_width = self.module_params.data_width
        if io.has_index:
            count = int(self._captured.get(io.index_var, 0))
        elif io.io_number is not None:
            count = io.io_number
        else:
            count = 1
        count = max(0, count)
        if count == 0:
            return 0
        if io.is_packed and io.io_width < bus_width:
            per_beat = max(1, bus_width // io.io_width)
            return -(-count // per_beat)
        return count * max(1, -(-io.io_width // bus_width))

    def _element_count(self, io: IOParams) -> int:
        if io.has_index:
            return max(0, int(self._captured.get(io.index_var, 0)))
        return io.io_number if io.io_number is not None else 1

    def _assemble_input(self, io: IOParams, beats: List[int]) -> Union[int, List[int]]:
        """Reassemble captured bus beats into the declared value(s)."""
        bus_width = self.module_params.data_width
        count = self._element_count(io)
        if io.is_packed and io.io_width < bus_width:
            per_beat = max(1, bus_width // io.io_width)
            element_mask = mask_for_width(io.io_width)
            elements: List[int] = []
            for beat in beats:
                for slot in range(per_beat):
                    elements.append((beat >> (slot * io.io_width)) & element_mask)
            elements = elements[:count]
            return elements if io.is_pointer else (elements[0] if elements else 0)
        words_per_element = max(1, -(-io.io_width // bus_width))
        elements = []
        for index in range(0, len(beats), words_per_element):
            value = 0
            for offset, word in enumerate(beats[index:index + words_per_element]):
                value |= word << (offset * bus_width)
            elements.append(value & mask_for_width(max(io.io_width, 1)))
        if io.is_pointer:
            return elements[:count]
        return elements[0] if elements else 0

    def _build_output_words(self, result: Union[int, List[int], None]) -> List[int]:
        """Serialise the calculation result into bus beats (LSW first)."""
        bus_width = self.module_params.data_width
        bus_mask = mask_for_width(bus_width)
        output = self.func.output
        if output is None:
            return [1]  # pseudo output / completion status word
        values: List[int]
        if isinstance(result, (list, tuple)):
            values = [int(v) for v in result]
        else:
            values = [int(result or 0)]
        if output.is_packed and output.io_width < bus_width:
            per_beat = max(1, bus_width // output.io_width)
            element_mask = mask_for_width(output.io_width)
            words = []
            for index in range(0, len(values), per_beat):
                word = 0
                for slot, value in enumerate(values[index:index + per_beat]):
                    word |= (value & element_mask) << (slot * output.io_width)
                words.append(word)
            return words or [0]
        words_per_element = max(1, -(-output.io_width // bus_width))
        words = []
        for value in values:
            value &= mask_for_width(max(output.io_width, 1))
            for offset in range(words_per_element):
                words.append((value >> (offset * bus_width)) & bus_mask)
        return words or [0]

    # -- the ICOB process ----------------------------------------------------------

    def _icob(self) -> bool:
        # This process runs for every stub on every cycle (unless elided by
        # the compiled kernel), so the idle path reads signal slots directly
        # (``_value``/``_next``) instead of going through property dispatch,
        # and only deasserts strobes that are actually high or pending —
        # semantically identical, much cheaper.  The return value is the
        # wait-state-elision activity flag: truthy whenever re-running next
        # cycle with unchanged inputs would *not* be a no-op.
        sis = self.sis
        port = self.port
        state = self._state
        active = False

        # IO_DONE (and pseudo-asynchronous DATA_OUT_VALID) strobes are
        # kernel-cleared pulses, so no deassert pass is needed here.  The one
        # remaining case is the strictly synchronous *held* DATA_OUT_VALID,
        # which must drop when the ICOB leaves its output state abnormally
        # (reset mid-read) — the output state itself clears it on completion.
        if self.strictly_synchronous and state not in ("OUT_RESULT", "OUT_STATUS"):
            data_out_valid = port.data_out_valid
            if data_out_valid._value or data_out_valid._next is not None:
                data_out_valid.next = 0
                active = True

        if sis.rst._value:
            self._reset_activation(full=True)
            active |= port.calc_done.schedule(0)
            return active

        if sis.io_enable._value and sis.func_id._value == self.my_func_id:
            new_request = True
            write_beat = bool(sis.data_in_valid._value)
            if not write_beat:
                self._pending_read = True
            active = True
        else:
            new_request = False
            write_beat = False

        if self._state_io is not None:
            if self._handle_input_state(write_beat):
                active = True
        elif state == "TRIGGER":
            if self._handle_trigger_state(new_request, write_beat):
                active = True
        elif state == "CALC":
            if self._handle_calc_state():
                active = True
        elif state in ("OUT_RESULT", "OUT_STATUS"):
            if self._handle_output_state():
                active = True
        return active

    # -- per-state handlers -------------------------------------------------------

    def _handle_input_state(self, write_beat: bool) -> bool:
        if not write_beat:
            return False
        self._beat_buffer.append(self.sis.data_in._value)
        self.port.io_done.pulse(1)
        if len(self._beat_buffer) >= self._state_beats:
            self._finish_input()
        return True

    def _finish_input(self) -> None:
        """Reassemble the completed input and advance (shared IR helper)."""
        io = self._state_io
        self._captured[io.io_name] = self._assemble_input(io, self._beat_buffer)
        self._beat_buffer = []
        self._advance_after_input(io)

    def _advance_after_input(self, io: IOParams) -> None:
        next_state = self._states[self._state_pos + 1]
        if next_state == "CALC":
            self._enter_calc()
            return
        self._enter_state(next_state)
        # A following implicit-bound input with a zero count is skipped
        # entirely (nothing will ever be transferred for it).
        following = self._state_io
        while following is not None and self._state_beats == 0:
            self._captured[following.io_name] = [] if following.is_pointer else 0
            nxt = self._states[self._state_pos + 1]
            if nxt == "CALC":
                self._enter_calc()
                return
            self._enter_state(nxt)
            following = self._state_io

    def _handle_trigger_state(self, new_request: bool, write_beat: bool) -> bool:
        if not new_request:
            return False
        if write_beat:
            self.port.io_done.pulse(1)
        self._enter_calc()
        return True

    def _enter_calc(self) -> None:
        self._state = "CALC"
        self._state_io = None
        # The calculation is a pure countdown: express it against the
        # simulator cycle so the stub can sleep through it on kernels with
        # timed wakes (being run more often is harmless — it just re-checks).
        sim = self._simulator
        self._calc_until = (sim.cycle if sim is not None else 0) + self.calc_latency

    def _handle_calc_state(self) -> bool:
        sim = self._simulator
        now = sim.cycle if sim is not None else self._calc_until
        if now < self._calc_until:
            remaining = self._calc_until - now
            if remaining > 1 and sim is not None and sim.timed_wakes:
                sim.wake_after(self._icob, remaining)
                return False
            return True
        self._run_calc()
        return True

    def _run_calc(self) -> None:
        """Invoke the user behaviour and enter the output stage (shared
        between the retained Python path and the FSM IR, whose CALC state
        expresses only the countdown)."""
        result = self.behavior(**{name: value for name, value in self._captured.items()})
        self.call_log.append(dict(self._captured))
        self.activations += 1
        self._output_words = self._build_output_words(result)
        self._out_index = 0
        if self.func.has_output or self.func.blocking:
            self._state = "OUT_RESULT" if self.func.has_output else "OUT_STATUS"
            self.port.calc_done.next = 1
            if self.strictly_synchronous:
                self.port.data_out.next = self._output_words[0]
                self.port.data_out_valid.next = 1
        else:
            # Non-blocking (nowait) functions simply strobe CALC_DONE and
            # return to their first input state.
            self.port.calc_done.next = 1
            self._reset_activation(full=False)

    def _handle_output_state(self) -> bool:
        # The steady wait-for-read state re-asserts its outputs through
        # Signal.schedule so a cycle that schedules nothing reports quiescence.
        port = self.port
        active = port.calc_done.schedule(1)
        if self.strictly_synchronous:
            active |= port.data_out.schedule(self._output_words[self._out_index])
            active |= port.data_out_valid.schedule(1)
        if not self._pending_read:
            return active
        self._pending_read = False
        word = self._output_words[self._out_index]
        port.data_out.next = word
        if self.strictly_synchronous:
            port.data_out_valid.next = 1
        else:
            # Pseudo-asynchronous read: DATA_OUT_VALID rises with IO_DONE for
            # exactly one cycle (Figure 4.3) — both kernel-cleared pulses.
            port.data_out_valid.pulse(1)
        port.io_done.pulse(1)
        self._out_index += 1
        if self._out_index >= len(self._output_words):
            port.calc_done.next = 0
            if self.strictly_synchronous:
                port.data_out_valid.next = 0
            self._reset_activation(full=False)
        return True

    # -- lifecycle -----------------------------------------------------------------

    def _reset_full(self) -> None:
        """IR helper: full reset (SIS reset asserted)."""
        self._reset_activation(full=True)

    def _reset_soft(self) -> None:
        """IR helper: return to the first input state after an activation."""
        self._reset_activation(full=False)

    def _reset_activation(self, *, full: bool) -> None:
        if full:
            # A reset may arrive with stale captures; clear them before the
            # first input state recomputes its expected beat count from them.
            self._captured = {}
        self._enter_state(self._states[0])
        self._beat_buffer = []
        self._output_words = []
        self._out_index = 0
        self._calc_until = 0
        self._pending_read = False
        if full:
            self.call_log = []
            self.activations = 0
