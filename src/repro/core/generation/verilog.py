"""Verilog text back-end.

The paper lists Verilog output as future work (Section 10.2); the shared IR
makes it nearly free here, so ``%target_hdl verilog`` produces structurally
equivalent Verilog sketches for every generated entity.
"""

from __future__ import annotations

from typing import List

from repro.core.generation.ir import EntityIR, PortDirection


def _verilog_range(width: int) -> str:
    return "" if width <= 1 else f"[{width - 1}:0] "


def render_entity_verilog(entity: EntityIR) -> str:
    """Render a structural Verilog sketch of ``entity`` from its IR."""
    lines: List[str] = []
    lines.append(f"// {entity.description}" if entity.description else f"// module {entity.name}")
    port_names = ", ".join(p.name for p in entity.ports)
    lines.append(f"module {entity.name} ({port_names});")
    for port in entity.ports:
        direction = "input" if port.direction is PortDirection.IN else "output"
        if port.direction is PortDirection.INOUT:
            direction = "inout"
        comment = f"  // {port.description}" if port.description else ""
        lines.append(f"  {direction:<6} {_verilog_range(port.width)}{port.name};{comment}")
    lines.append("")
    for fsm in entity.fsms:
        lines.append(f"  // FSM {fsm.name}: states {', '.join(fsm.states)}")
        lines.append(f"  reg [{max(0, fsm.state_bits - 1)}:0] {fsm.name}_cur, {fsm.name}_next;")
    for register in entity.registers:
        lines.append(f"  reg {_verilog_range(register.width)}{register.name};  // {register.purpose}")
    for counter in entity.counters:
        lines.append(f"  reg {_verilog_range(counter.width)}{counter.name};  // {counter.purpose}")
    for mux in entity.muxes:
        lines.append(f"  // {mux.inputs}-way, {mux.width}-bit multiplexer: {mux.purpose or mux.name}")
    for comparator in entity.comparators:
        lines.append(f"  // {comparator.width}-bit comparator: {comparator.purpose or comparator.name}")
    for fsm in entity.fsms:
        lines.append(f"  always @(posedge CLK) begin")
        lines.append(f"    if (RST) {fsm.name}_cur <= 0;")
        lines.append(f"    else {fsm.name}_cur <= {fsm.name}_next;")
        lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def file_name(entity: EntityIR, suffix: str = "v") -> str:
    """Conventional output file name for ``entity``."""
    return f"{entity.name}.{suffix}"
