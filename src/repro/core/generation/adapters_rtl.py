"""Simulatable native bus interface adapters — the elaborated form of Section 5.1.

One adapter class per built-in bus translates the slave-side native protocol
into SIS transactions following the signal adaptations of Section 4.3:

* :class:`PLBToSIS` / :class:`OPBToSIS` — request/acknowledge handshake, the
  one-hot chip enables re-encoded onto ``FUNC_ID`` (Figures 4.7 / 4.8),
* :class:`FCBToSIS` — opcode-style requests with burst unrolling, and
* :class:`APBToSIS` — strictly synchronous accesses with combinational read
  data selection and ``CALC_DONE`` polling at slot zero.
"""

from __future__ import annotations

import functools
from typing import Dict, Optional

from repro.buses.apb import APBSlaveBundle
from repro.buses.fcb import FCBSlaveBundle
from repro.buses.plb import PLBSlaveBundle
from repro.core.generation.arbiter_rtl import status_vector_ops
from repro.core.params import STATUS_FUNC_ID
from repro.rtl.fsm import (
    Active,
    BoundFsm,
    Drive,
    Exec,
    FsmSpec,
    Goto,
    If,
    Pulse,
    Schedule,
    StateDispatch,
    resolve_backend,
)
from repro.rtl.module import Module
from repro.sis.signals import SISBundle, SISFunctionPort

#: Shared entry prologue of every adapter machine: native reset propagates
#: onto the SIS (clearing the handshake strobes) and a previously asserted
#: SIS reset is cleared one cycle after the native reset drops.  The state
#: dispatch only runs outside reset — exactly the early return of the
#: hand-written ticks.
def _adapter_entry(reset_ops) -> tuple:
    return (
        If(
            "prst._value",
            tuple(reset_ops),
            orelse=(
                If(
                    "s_rst._value or s_rst._next is not None",
                    (Schedule("s_rst", "0", capture=True),),
                ),
                StateDispatch(),
            ),
        ),
    )


class PLBToSIS(Module):
    """PLB (and OPB) slave-side adapter onto the SIS."""

    def __init__(
        self,
        name: str,
        plb: PLBSlaveBundle,
        sis: SISBundle,
        fsm_backend: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.plb = plb
        self.sis = sis
        self._state = "idle"
        # The full input set (native request side + the SIS completion side)
        # opts the adapter into compiled-kernel wait-state elision; the
        # machine reports activity through its return value.
        sensitivity = [
            plb.rst, plb.wr_req, plb.wr_ce, plb.rd_req, plb.rd_ce,
            plb.data_to_slave, sis.io_done, sis.data_out_valid, sis.data_out,
        ]
        if resolve_backend(fsm_backend) == "ir":
            self.fsm = BoundFsm(
                self._fsm_spec(),
                self,
                signals={
                    "prst": plb.rst, "wr_req": plb.wr_req, "wr_ce": plb.wr_ce,
                    "rd_req": plb.rd_req, "rd_ce": plb.rd_ce,
                    "d2s": plb.data_to_slave, "dfs": plb.data_from_slave,
                    "wr_ack": plb.wr_ack, "rd_ack": plb.rd_ack,
                    "s_rst": sis.rst, "s_fid": sis.func_id, "s_din": sis.data_in,
                    "s_div": sis.data_in_valid, "s_ioe": sis.io_enable,
                    "s_iod": sis.io_done, "s_dov": sis.data_out_valid,
                    "s_dout": sis.data_out,
                },
            )
            self.clocked(self.fsm.tick, sensitive_to=sensitivity)
        else:
            self.clocked(self._tick, sensitive_to=sensitivity)

    @staticmethod
    @functools.lru_cache(maxsize=None)
    def _fsm_spec() -> FsmSpec:
        """The request/acknowledge adapter as FSM IR (Figures 4.7 / 4.8).

        One state per handshake position; the one-hot chip enable is decoded
        inline (guards guarantee it is non-zero) and the wait states park the
        machine (``Active(False)``) until IO_DONE wakes it.
        """
        return FsmSpec(
            name="plb_to_sis",
            entry=_adapter_entry(
                (
                    Schedule("s_rst", "1", capture=True),
                    Schedule("s_div", "0", capture=True),
                    Schedule("s_fid", "0", capture=True),
                    Goto("idle"),
                )
            ),
            states={
                "idle": (
                    If(
                        "wr_req._value and wr_ce._value",
                        (
                            Schedule("s_fid", "wr_ce._value.bit_length() - 1"),
                            Schedule("s_din", "d2s._value"),
                            Schedule("s_div", "1"),
                            Pulse("s_ioe"),
                            Goto("write_wait"),
                            Active("False"),
                        ),
                        orelse=(
                            If(
                                "rd_req._value and rd_ce._value",
                                (
                                    Schedule("s_fid", "rd_ce._value.bit_length() - 1"),
                                    Pulse("s_ioe"),
                                    Goto("read_wait"),
                                    Active("False"),
                                ),
                            ),
                        ),
                    ),
                ),
                "write_wait": (
                    If(
                        "s_iod._value",
                        (Schedule("s_div", "0"), Pulse("wr_ack"), Goto("idle")),
                    ),
                ),
                "read_wait": (
                    If(
                        "s_iod._value and s_dov._value",
                        (
                            Schedule("dfs", "s_dout._value"),
                            Pulse("rd_ack"),
                            Goto("idle"),
                        ),
                    ),
                ),
            },
            signals=(
                "prst", "wr_req", "wr_ce", "rd_req", "rd_ce", "d2s", "dfs",
                "wr_ack", "rd_ack", "s_rst", "s_fid", "s_din", "s_div",
                "s_ioe", "s_iod", "s_dov", "s_dout",
            ),
        )

    def _tick(self) -> bool:
        # IO_ENABLE / WR_ACK / RD_ACK are kernel-cleared pulses, so the
        # adapter is a purely reactive FSM: every invocation either reacts to
        # a declared input and strobes its response, or does nothing — and
        # reports quiescence (False) either way, staying parked under the
        # compiled kernel's wait-state elision until an input changes.
        plb, sis = self.plb, self.sis

        if plb.rst._value:
            active = sis.rst.schedule(1)
            active |= sis.data_in_valid.schedule(0)
            active |= sis.func_id.schedule(0)
            self._state = "idle"
            return active
        active = False
        if sis.rst._value or sis.rst._next is not None:
            active = sis.rst.schedule(0)

        state = self._state
        if state == "idle":
            if plb.wr_req._value and plb.wr_ce._value:
                slot = plb.selected_slot(write=True)
                sis.func_id.schedule(slot)
                sis.data_in.schedule(plb.data_to_slave._value)
                sis.data_in_valid.schedule(1)
                sis.io_enable.pulse(1)
                self._state = "write_wait"
                return False  # parked until IO_DONE
            if plb.rd_req._value and plb.rd_ce._value:
                slot = plb.selected_slot(write=False)
                sis.func_id.schedule(slot)
                sis.io_enable.pulse(1)
                self._state = "read_wait"
                return False  # parked until IO_DONE + DATA_OUT_VALID
            return active

        if state == "write_wait":
            if sis.io_done._value:
                sis.data_in_valid.schedule(0)
                plb.wr_ack.pulse(1)
                self._state = "idle"
            return active

        if state == "read_wait":
            if sis.io_done._value and sis.data_out_valid._value:
                plb.data_from_slave.schedule(sis.data_out._value)
                plb.rd_ack.pulse(1)
                self._state = "idle"
            return active
        return active


class OPBToSIS(PLBToSIS):
    """The OPB slave port is protocol-identical to the PLB slave port."""


class FCBToSIS(Module):
    """FCB slave-side adapter onto the SIS, with burst unrolling."""

    def __init__(
        self,
        name: str,
        fcb: FCBSlaveBundle,
        sis: SISBundle,
        fsm_backend: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.fcb = fcb
        self.sis = sis
        self._state = "idle"
        self._remaining = 0
        self._func_id = 0
        self._is_write = False
        sensitivity = [
            fcb.rst, fcb.req, fcb.func_sel, fcb.is_write, fcb.burst_len,
            fcb.data_valid, fcb.data_to_slave,
            sis.io_done, sis.data_out_valid, sis.data_out,
        ]
        if resolve_backend(fsm_backend) == "ir":
            self.fsm = BoundFsm(
                self._fsm_spec(),
                self,
                signals={
                    "prst": fcb.rst, "req": fcb.req, "func_sel": fcb.func_sel,
                    "is_write": fcb.is_write, "burst_len": fcb.burst_len,
                    "data_valid": fcb.data_valid, "d2s": fcb.data_to_slave,
                    "dfs": fcb.data_from_slave, "ack": fcb.ack,
                    "resp_valid": fcb.resp_valid,
                    "s_rst": sis.rst, "s_fid": sis.func_id, "s_din": sis.data_in,
                    "s_div": sis.data_in_valid, "s_ioe": sis.io_enable,
                    "s_iod": sis.io_done, "s_dov": sis.data_out_valid,
                    "s_dout": sis.data_out,
                },
            )
            self.clocked(self.fsm.tick, sensitive_to=sensitivity)
        else:
            self.clocked(self._tick, sensitive_to=sensitivity)

    @staticmethod
    @functools.lru_cache(maxsize=None)
    def _fsm_spec() -> FsmSpec:
        """The opcode-style FCB adapter as FSM IR, burst unrolling included.

        The per-beat resynchronisation cycle (``write_beat`` →
        ``write_present``) and the inter-beat gap state are separate IR
        states, exactly as in the hand-written machine — part of the
        indirect-conversion cost the paper accepts for portability.
        """
        present_write = (
            Schedule("s_fid", "m._func_id"),
            Schedule("s_din", "d2s._value"),
            Schedule("s_div", "1"),
            Pulse("s_ioe"),
            Goto("write_wait"),
            Active("False"),
        )
        return FsmSpec(
            name="fcb_to_sis",
            entry=_adapter_entry(
                (
                    Schedule("s_rst", "1", capture=True),
                    Schedule("s_div", "0", capture=True),
                    Schedule("s_fid", "0", capture=True),
                    Goto("idle"),
                )
            ),
            states={
                "idle": (
                    If(
                        "req._value",
                        (
                            Exec("m._func_id = func_sel._value"),
                            Exec("m._is_write = bool(is_write._value)"),
                            Exec("m._remaining = max(1, burst_len._value)"),
                            Schedule("s_fid", "m._func_id"),
                            If(
                                "m._is_write",
                                (
                                    If(
                                        "not data_valid._value",
                                        (Goto("write_beat"),),
                                        orelse=(Goto("write_present"),),
                                    ),
                                    Active("True"),
                                ),
                                orelse=(
                                    Pulse("s_ioe"),
                                    Goto("read_wait"),
                                    Active("False"),
                                ),
                            ),
                        ),
                    ),
                ),
                "write_beat": (
                    If("data_valid._value", (Goto("write_present"), Active("True"))),
                ),
                "write_present": present_write,
                "write_wait": (
                    If(
                        "s_iod._value",
                        (Schedule("s_div", "0"), Goto("write_ack"), Active("True")),
                    ),
                ),
                "write_ack": (
                    Pulse("ack"),
                    Exec("m._remaining -= 1"),
                    If("m._remaining", (Goto("write_gap"),), orelse=(Goto("idle"),)),
                ),
                "write_gap": (
                    If("not data_valid._value", (Goto("write_beat"), Active("True"))),
                ),
                "read_wait": (
                    If(
                        "s_iod._value and s_dov._value",
                        (
                            Schedule("dfs", "s_dout._value"),
                            Pulse("resp_valid"),
                            Exec("m._remaining -= 1"),
                            If(
                                "m._remaining",
                                (Goto("read_next"), Active("True")),
                                orelse=(Goto("idle"),),
                            ),
                        ),
                    ),
                ),
                "read_next": (
                    Schedule("s_fid", "m._func_id"),
                    Pulse("s_ioe"),
                    Goto("read_wait"),
                    Active("False"),
                ),
            },
            signals=(
                "prst", "req", "func_sel", "is_write", "burst_len",
                "data_valid", "d2s", "dfs", "ack", "resp_valid",
                "s_rst", "s_fid", "s_din", "s_div", "s_ioe", "s_iod",
                "s_dov", "s_dout",
            ),
        )

    def _tick(self) -> bool:
        # IO_ENABLE / ACK / RESP_VALID are kernel-cleared pulses (see
        # PLBToSIS._tick): the adapter reports quiescence from every wait
        # state and runs only when a declared input changes or it is mid
        # beat-sequence (write_present / write_ack / read_next).
        fcb, sis = self.fcb, self.sis

        if fcb.rst._value:
            active = sis.rst.schedule(1)
            active |= sis.data_in_valid.schedule(0)
            active |= sis.func_id.schedule(0)
            self._state = "idle"
            return active
        active = False
        if sis.rst._value or sis.rst._next is not None:
            active = sis.rst.schedule(0)

        state = self._state
        if state == "idle":
            if fcb.req._value:
                self._func_id = fcb.func_sel._value
                self._is_write = bool(fcb.is_write._value)
                self._remaining = max(1, fcb.burst_len._value)
                sis.func_id.schedule(self._func_id)
                if self._is_write:
                    self._state = "write_beat" if not fcb.data_valid._value else "write_present"
                    return True
                sis.io_enable.pulse(1)
                self._state = "read_wait"
                return False  # parked until the function answers
            return active

        if state == "write_beat":
            if fcb.data_valid._value:
                # One resynchronisation cycle before presenting the beat to
                # the SIS: the generic adapter re-latches FUNC_SEL and the
                # burst state for every beat (part of the indirect-conversion
                # cost the paper accepts in exchange for portability).
                self._state = "write_present"
                return True
            return active

        if state == "write_present":
            self._present_write()
            return False  # parked until IO_DONE

        if state == "write_wait":
            if sis.io_done._value:
                sis.data_in_valid.schedule(0)
                self._state = "write_ack"
                return True
            return active

        if state == "write_ack":
            fcb.ack.pulse(1)
            self._remaining -= 1
            self._state = "write_gap" if self._remaining else "idle"
            return active

        if state == "write_gap":
            # The master drops DATA_VALID for one cycle between beats.
            if not fcb.data_valid._value:
                self._state = "write_beat"
                return True
            return active

        if state == "read_wait":
            if sis.io_done._value and sis.data_out_valid._value:
                fcb.data_from_slave.schedule(sis.data_out._value)
                fcb.resp_valid.pulse(1)
                self._remaining -= 1
                if self._remaining:
                    self._state = "read_next"
                    return True
                self._state = "idle"
            return active

        if state == "read_next":
            sis.func_id.schedule(self._func_id)
            sis.io_enable.pulse(1)
            self._state = "read_wait"
            return False  # parked until the function answers
        return active

    def _present_write(self) -> None:
        sis = self.sis
        sis.func_id.schedule(self._func_id)
        sis.data_in.schedule(self.fcb.data_to_slave._value)
        sis.data_in_valid.schedule(1)
        sis.io_enable.pulse(1)
        self._state = "write_wait"


class APBToSIS(Module):
    """APB slave-side adapter onto the SIS (strictly synchronous protocol).

    Writes are forwarded to the SIS during the access cycle; reads are served
    combinationally from the per-function ``DATA_OUT`` registers (or the
    ``CALC_DONE`` vector at slot zero) because the APB cannot insert wait
    states, and the access also strobes ``IO_ENABLE`` so the addressed
    function advances to its next output word.
    """

    def __init__(
        self,
        name: str,
        apb: APBSlaveBundle,
        sis: SISBundle,
        ports: Dict[int, SISFunctionPort],
        base_address: int,
        fsm_backend: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.apb = apb
        self.sis = sis
        self.ports = dict(ports)
        self.base_address = base_address
        backend = resolve_backend(fsm_backend)
        tick_sensitivity = [
            apb.rst, apb.psel, apb.penable, apb.paddr, apb.pwrite, apb.pwdata
        ]
        # The read mux decodes PSEL/PADDR against the per-function DATA_OUT
        # registers and the CALC_DONE vector — its complete input set; it
        # only ever drives PRDATA.
        mux_sensitivity = [apb.psel, apb.paddr]
        for port in self.ports.values():
            mux_sensitivity += [port.data_out, port.calc_done]
        if backend == "ir":
            consts = {
                "BASE": base_address,
                "WORDB": apb.data_width // 8,
            }
            signals = {
                "prst": apb.rst, "psel": apb.psel, "penable": apb.penable,
                "paddr": apb.paddr, "pwrite": apb.pwrite, "pwdata": apb.pwdata,
                "s_rst": sis.rst, "s_fid": sis.func_id, "s_din": sis.data_in,
                "s_div": sis.data_in_valid, "s_ioe": sis.io_enable,
            }
            self.fsm = BoundFsm(
                self._fsm_spec(), self, signals=signals, consts=consts
            )
            self.clocked(self.fsm.tick, sensitive_to=tick_sensitivity)
            mux_signals = {"psel": apb.psel, "paddr": apb.paddr, "prdata": apb.prdata}
            for func_id, port in self.ports.items():
                mux_signals[f"p{func_id}_do"] = port.data_out
                mux_signals[f"p{func_id}_cd"] = port.calc_done
            self.read_mux_fsm = BoundFsm(
                self._read_mux_spec(tuple(self.ports)), self,
                signals=mux_signals, consts=consts,
            )
            self.comb(
                self.read_mux_fsm.tick,
                sensitive_to=mux_sensitivity,
                drives=[apb.prdata],
            )
        else:
            self.clocked(self._tick, sensitive_to=tick_sensitivity)
            self.comb(self._read_mux, sensitive_to=mux_sensitivity, drives=[apb.prdata])

    @staticmethod
    @functools.lru_cache(maxsize=None)
    def _fsm_spec() -> FsmSpec:
        """The strictly synchronous write/trigger path as a one-state machine.

        The APB cannot insert wait states, so there are no handshake states:
        the single dispatch state forwards the committed access and parks.
        """
        return FsmSpec(
            name="apb_to_sis",
            entry=_adapter_entry(
                (
                    Schedule("s_rst", "1", capture=True),
                    Schedule("s_fid", "0", capture=True),
                    Goto("access"),
                )
            ),
            states={
                "access": (
                    If(
                        "psel._value and penable._value",
                        (
                            Schedule("s_fid", "(paddr._value - BASE) // WORDB"),
                            Pulse("s_ioe"),
                            If(
                                "pwrite._value",
                                (
                                    Schedule("s_din", "pwdata._value"),
                                    Pulse("s_div"),
                                ),
                            ),
                            Active("False"),
                        ),
                    ),
                ),
            },
            state_attr="_fsm_state",
            signals=(
                "prst", "psel", "penable", "paddr", "pwrite", "pwdata",
                "s_rst", "s_fid", "s_din", "s_div", "s_ioe",
            ),
            consts=("BASE", "WORDB"),
        )

    @staticmethod
    @functools.lru_cache(maxsize=None)
    def _read_mux_spec(func_ids) -> FsmSpec:
        """The combinational read mux as FSM IR, ports unrolled at build time.

        Slot zero concatenates every function's CALC_DONE into the status
        vector; other slots select the addressed function's DATA_OUT (or 0
        for holes).  Lowered, this becomes straight-line compares inside the
        settle sweep.
        """
        select: tuple = (Drive("prdata", "0"),)
        for func_id in reversed(func_ids):
            select = (
                If(
                    f"slot == {func_id}",
                    (Drive("prdata", f"p{func_id}_do._value"),),
                    orelse=select,
                ),
            )
        status_ops = status_vector_ops(func_ids)
        status_ops.append(Drive("prdata", "v"))
        signals = ["psel", "paddr", "prdata"]
        for func_id in func_ids:
            signals += [f"p{func_id}_do", f"p{func_id}_cd"]
        return FsmSpec(
            name="apb_read_mux",
            kind="comb",
            entry=(
                If(
                    "psel._value",
                    (
                        Exec("slot = (paddr._value - BASE) // WORDB"),
                        If(
                            f"slot == {STATUS_FUNC_ID}",
                            tuple(status_ops),
                            orelse=select,
                        ),
                    ),
                ),
            ),
            signals=tuple(signals),
            consts=("BASE", "WORDB"),
            temps=("slot", "v"),
        )

    def _slot(self, address: int) -> int:
        return (address - self.base_address) // (self.apb.data_width // 8)

    def _tick(self) -> bool:
        # IO_ENABLE / DATA_IN_VALID strobe for the single access cycle and
        # are kernel-cleared pulses, so the adapter is purely reactive: it
        # runs only when its APB inputs change (see PLBToSIS._tick).
        apb, sis = self.apb, self.sis

        if apb.rst._value:
            active = sis.rst.schedule(1)
            active |= sis.func_id.schedule(0)
            return active
        active = False
        if sis.rst._value or sis.rst._next is not None:
            active = sis.rst.schedule(0)

        if apb.psel._value and apb.penable._value:
            slot = self._slot(apb.paddr._value)
            sis.func_id.schedule(slot)
            sis.io_enable.pulse(1)
            if apb.pwrite._value:
                sis.data_in.schedule(apb.pwdata._value)
                sis.data_in_valid.pulse(1)
            return False  # the access is committed; nothing more to do
        return active

    def _read_mux(self) -> None:
        apb = self.apb
        if not apb.psel.value:
            return
        slot = self._slot(apb.paddr.value)
        if slot == STATUS_FUNC_ID:
            vector = 0
            for func_id, port in self.ports.items():
                if port.calc_done.value:
                    vector |= 1 << (func_id - 1)
            apb.prdata.drive(vector)
            return
        port = self.ports.get(slot)
        apb.prdata.drive(port.data_out.value if port is not None else 0)


#: Adapter classes by bus name (used by the peripheral builder and SoC).
ADAPTER_CLASSES = {
    "plb": PLBToSIS,
    "opb": OPBToSIS,
    "fcb": FCBToSIS,
    "apb": APBToSIS,
}
