"""Simulatable native bus interface adapters — the elaborated form of Section 5.1.

One adapter class per built-in bus translates the slave-side native protocol
into SIS transactions following the signal adaptations of Section 4.3:

* :class:`PLBToSIS` / :class:`OPBToSIS` — request/acknowledge handshake, the
  one-hot chip enables re-encoded onto ``FUNC_ID`` (Figures 4.7 / 4.8),
* :class:`FCBToSIS` — opcode-style requests with burst unrolling, and
* :class:`APBToSIS` — strictly synchronous accesses with combinational read
  data selection and ``CALC_DONE`` polling at slot zero.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.buses.apb import APBSlaveBundle
from repro.buses.fcb import FCBSlaveBundle
from repro.buses.plb import PLBSlaveBundle
from repro.core.params import STATUS_FUNC_ID
from repro.rtl.module import Module
from repro.sis.signals import SISBundle, SISFunctionPort


class PLBToSIS(Module):
    """PLB (and OPB) slave-side adapter onto the SIS."""

    def __init__(self, name: str, plb: PLBSlaveBundle, sis: SISBundle) -> None:
        super().__init__(name)
        self.plb = plb
        self.sis = sis
        self._state = "idle"
        # The full input set (native request side + the SIS completion side)
        # opts the adapter into compiled-kernel wait-state elision; ``_tick``
        # reports activity through its return value.
        self.clocked(
            self._tick,
            sensitive_to=[
                plb.rst, plb.wr_req, plb.wr_ce, plb.rd_req, plb.rd_ce,
                plb.data_to_slave, sis.io_done, sis.data_out_valid, sis.data_out,
            ],
        )

    def _tick(self) -> bool:
        # IO_ENABLE / WR_ACK / RD_ACK are kernel-cleared pulses, so the
        # adapter is a purely reactive FSM: every invocation either reacts to
        # a declared input and strobes its response, or does nothing — and
        # reports quiescence (False) either way, staying parked under the
        # compiled kernel's wait-state elision until an input changes.
        plb, sis = self.plb, self.sis

        if plb.rst._value:
            active = sis.rst.schedule(1)
            active |= sis.data_in_valid.schedule(0)
            active |= sis.func_id.schedule(0)
            self._state = "idle"
            return active
        active = False
        if sis.rst._value or sis.rst._next is not None:
            active = sis.rst.schedule(0)

        state = self._state
        if state == "idle":
            if plb.wr_req._value and plb.wr_ce._value:
                slot = plb.selected_slot(write=True)
                sis.func_id.schedule(slot)
                sis.data_in.schedule(plb.data_to_slave._value)
                sis.data_in_valid.schedule(1)
                sis.io_enable.pulse(1)
                self._state = "write_wait"
                return False  # parked until IO_DONE
            if plb.rd_req._value and plb.rd_ce._value:
                slot = plb.selected_slot(write=False)
                sis.func_id.schedule(slot)
                sis.io_enable.pulse(1)
                self._state = "read_wait"
                return False  # parked until IO_DONE + DATA_OUT_VALID
            return active

        if state == "write_wait":
            if sis.io_done._value:
                sis.data_in_valid.schedule(0)
                plb.wr_ack.pulse(1)
                self._state = "idle"
            return active

        if state == "read_wait":
            if sis.io_done._value and sis.data_out_valid._value:
                plb.data_from_slave.schedule(sis.data_out._value)
                plb.rd_ack.pulse(1)
                self._state = "idle"
            return active
        return active


class OPBToSIS(PLBToSIS):
    """The OPB slave port is protocol-identical to the PLB slave port."""


class FCBToSIS(Module):
    """FCB slave-side adapter onto the SIS, with burst unrolling."""

    def __init__(self, name: str, fcb: FCBSlaveBundle, sis: SISBundle) -> None:
        super().__init__(name)
        self.fcb = fcb
        self.sis = sis
        self._state = "idle"
        self._remaining = 0
        self._func_id = 0
        self._is_write = False
        self.clocked(
            self._tick,
            sensitive_to=[
                fcb.rst, fcb.req, fcb.func_sel, fcb.is_write, fcb.burst_len,
                fcb.data_valid, fcb.data_to_slave,
                sis.io_done, sis.data_out_valid, sis.data_out,
            ],
        )

    def _tick(self) -> bool:
        # IO_ENABLE / ACK / RESP_VALID are kernel-cleared pulses (see
        # PLBToSIS._tick): the adapter reports quiescence from every wait
        # state and runs only when a declared input changes or it is mid
        # beat-sequence (write_present / write_ack / read_next).
        fcb, sis = self.fcb, self.sis

        if fcb.rst._value:
            active = sis.rst.schedule(1)
            active |= sis.data_in_valid.schedule(0)
            active |= sis.func_id.schedule(0)
            self._state = "idle"
            return active
        active = False
        if sis.rst._value or sis.rst._next is not None:
            active = sis.rst.schedule(0)

        state = self._state
        if state == "idle":
            if fcb.req._value:
                self._func_id = fcb.func_sel._value
                self._is_write = bool(fcb.is_write._value)
                self._remaining = max(1, fcb.burst_len._value)
                sis.func_id.schedule(self._func_id)
                if self._is_write:
                    self._state = "write_beat" if not fcb.data_valid._value else "write_present"
                    return True
                sis.io_enable.pulse(1)
                self._state = "read_wait"
                return False  # parked until the function answers
            return active

        if state == "write_beat":
            if fcb.data_valid._value:
                # One resynchronisation cycle before presenting the beat to
                # the SIS: the generic adapter re-latches FUNC_SEL and the
                # burst state for every beat (part of the indirect-conversion
                # cost the paper accepts in exchange for portability).
                self._state = "write_present"
                return True
            return active

        if state == "write_present":
            self._present_write()
            return False  # parked until IO_DONE

        if state == "write_wait":
            if sis.io_done._value:
                sis.data_in_valid.schedule(0)
                self._state = "write_ack"
                return True
            return active

        if state == "write_ack":
            fcb.ack.pulse(1)
            self._remaining -= 1
            self._state = "write_gap" if self._remaining else "idle"
            return active

        if state == "write_gap":
            # The master drops DATA_VALID for one cycle between beats.
            if not fcb.data_valid._value:
                self._state = "write_beat"
                return True
            return active

        if state == "read_wait":
            if sis.io_done._value and sis.data_out_valid._value:
                fcb.data_from_slave.schedule(sis.data_out._value)
                fcb.resp_valid.pulse(1)
                self._remaining -= 1
                if self._remaining:
                    self._state = "read_next"
                    return True
                self._state = "idle"
            return active

        if state == "read_next":
            sis.func_id.schedule(self._func_id)
            sis.io_enable.pulse(1)
            self._state = "read_wait"
            return False  # parked until the function answers
        return active

    def _present_write(self) -> None:
        sis = self.sis
        sis.func_id.schedule(self._func_id)
        sis.data_in.schedule(self.fcb.data_to_slave._value)
        sis.data_in_valid.schedule(1)
        sis.io_enable.pulse(1)
        self._state = "write_wait"


class APBToSIS(Module):
    """APB slave-side adapter onto the SIS (strictly synchronous protocol).

    Writes are forwarded to the SIS during the access cycle; reads are served
    combinationally from the per-function ``DATA_OUT`` registers (or the
    ``CALC_DONE`` vector at slot zero) because the APB cannot insert wait
    states, and the access also strobes ``IO_ENABLE`` so the addressed
    function advances to its next output word.
    """

    def __init__(
        self,
        name: str,
        apb: APBSlaveBundle,
        sis: SISBundle,
        ports: Dict[int, SISFunctionPort],
        base_address: int,
    ) -> None:
        super().__init__(name)
        self.apb = apb
        self.sis = sis
        self.ports = dict(ports)
        self.base_address = base_address
        self.clocked(
            self._tick,
            sensitive_to=[apb.rst, apb.psel, apb.penable, apb.paddr, apb.pwrite, apb.pwdata],
        )
        # The read mux decodes PSEL/PADDR against the per-function DATA_OUT
        # registers and the CALC_DONE vector — its complete input set; it
        # only ever drives PRDATA.
        sensitivity = [apb.psel, apb.paddr]
        for port in self.ports.values():
            sensitivity += [port.data_out, port.calc_done]
        self.comb(self._read_mux, sensitive_to=sensitivity, drives=[apb.prdata])

    def _slot(self, address: int) -> int:
        return (address - self.base_address) // (self.apb.data_width // 8)

    def _tick(self) -> bool:
        # IO_ENABLE / DATA_IN_VALID strobe for the single access cycle and
        # are kernel-cleared pulses, so the adapter is purely reactive: it
        # runs only when its APB inputs change (see PLBToSIS._tick).
        apb, sis = self.apb, self.sis

        if apb.rst._value:
            active = sis.rst.schedule(1)
            active |= sis.func_id.schedule(0)
            return active
        active = False
        if sis.rst._value or sis.rst._next is not None:
            active = sis.rst.schedule(0)

        if apb.psel._value and apb.penable._value:
            slot = self._slot(apb.paddr._value)
            sis.func_id.schedule(slot)
            sis.io_enable.pulse(1)
            if apb.pwrite._value:
                sis.data_in.schedule(apb.pwdata._value)
                sis.data_in_valid.pulse(1)
            return False  # the access is committed; nothing more to do
        return active

    def _read_mux(self) -> None:
        apb = self.apb
        if not apb.psel.value:
            return
        slot = self._slot(apb.paddr.value)
        if slot == STATUS_FUNC_ID:
            vector = 0
            for func_id, port in self.ports.items():
                if port.calc_done.value:
                    vector |= 1 << (func_id - 1)
            apb.prdata.drive(vector)
            return
        port = self.ports.get(slot)
        apb.prdata.drive(port.data_out.value if port is not None else 0)


#: Adapter classes by bus name (used by the peripheral builder and SoC).
ADAPTER_CLASSES = {
    "plb": PLBToSIS,
    "opb": OPBToSIS,
    "fcb": FCBToSIS,
    "apb": APBToSIS,
}
