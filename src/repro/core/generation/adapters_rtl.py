"""Simulatable native bus interface adapters — the elaborated form of Section 5.1.

One adapter class per built-in bus translates the slave-side native protocol
into SIS transactions following the signal adaptations of Section 4.3:

* :class:`PLBToSIS` / :class:`OPBToSIS` — request/acknowledge handshake, the
  one-hot chip enables re-encoded onto ``FUNC_ID`` (Figures 4.7 / 4.8),
* :class:`FCBToSIS` — opcode-style requests with burst unrolling, and
* :class:`APBToSIS` — strictly synchronous accesses with combinational read
  data selection and ``CALC_DONE`` polling at slot zero.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.buses.apb import APBSlaveBundle
from repro.buses.fcb import FCBSlaveBundle
from repro.buses.plb import PLBSlaveBundle
from repro.core.params import STATUS_FUNC_ID
from repro.rtl.module import Module
from repro.sis.signals import SISBundle, SISFunctionPort


class PLBToSIS(Module):
    """PLB (and OPB) slave-side adapter onto the SIS."""

    def __init__(self, name: str, plb: PLBSlaveBundle, sis: SISBundle) -> None:
        super().__init__(name)
        self.plb = plb
        self.sis = sis
        self._state = "idle"
        # The full input set (native request side + the SIS completion side)
        # opts the adapter into compiled-kernel wait-state elision; ``_tick``
        # reports activity through its return value.
        self.clocked(
            self._tick,
            sensitive_to=[
                plb.rst, plb.wr_req, plb.wr_ce, plb.rd_req, plb.rd_ce,
                plb.data_to_slave, sis.io_done, sis.data_out_valid, sis.data_out,
            ],
        )

    def _tick(self) -> bool:
        plb, sis = self.plb, self.sis
        # Single-cycle strobes default low every cycle; Signal.schedule is a
        # no-op (and reports quiescence) while they are already low.
        active = sis.io_enable.schedule(0)
        active |= plb.wr_ack.schedule(0)
        active |= plb.rd_ack.schedule(0)

        if plb.rst._value:
            active |= sis.rst.schedule(1)
            active |= sis.data_in_valid.schedule(0)
            active |= sis.func_id.schedule(0)
            self._state = "idle"
            return active
        active |= sis.rst.schedule(0)

        if self._state == "idle":
            if plb.wr_req.value and plb.wr_ce.value:
                slot = plb.selected_slot(write=True)
                sis.func_id.next = slot
                sis.data_in.next = plb.data_to_slave.value
                sis.data_in_valid.next = 1
                sis.io_enable.next = 1
                self._state = "write_wait"
                return True
            if plb.rd_req.value and plb.rd_ce.value:
                slot = plb.selected_slot(write=False)
                sis.func_id.next = slot
                sis.io_enable.next = 1
                self._state = "read_wait"
                return True
            return active

        if self._state == "write_wait":
            if sis.io_done.value:
                sis.data_in_valid.next = 0
                plb.wr_ack.next = 1
                self._state = "idle"
                return True
            return active

        if self._state == "read_wait":
            if sis.io_done.value and sis.data_out_valid.value:
                plb.data_from_slave.next = sis.data_out.value
                plb.rd_ack.next = 1
                self._state = "idle"
                return True
            return active
        return active


class OPBToSIS(PLBToSIS):
    """The OPB slave port is protocol-identical to the PLB slave port."""


class FCBToSIS(Module):
    """FCB slave-side adapter onto the SIS, with burst unrolling."""

    def __init__(self, name: str, fcb: FCBSlaveBundle, sis: SISBundle) -> None:
        super().__init__(name)
        self.fcb = fcb
        self.sis = sis
        self._state = "idle"
        self._remaining = 0
        self._func_id = 0
        self._is_write = False
        self.clocked(
            self._tick,
            sensitive_to=[
                fcb.rst, fcb.req, fcb.func_sel, fcb.is_write, fcb.burst_len,
                fcb.data_valid, fcb.data_to_slave,
                sis.io_done, sis.data_out_valid, sis.data_out,
            ],
        )

    def _tick(self) -> bool:
        fcb, sis = self.fcb, self.sis
        active = sis.io_enable.schedule(0)
        active |= fcb.ack.schedule(0)
        active |= fcb.resp_valid.schedule(0)

        if fcb.rst._value:
            active |= sis.rst.schedule(1)
            active |= sis.data_in_valid.schedule(0)
            active |= sis.func_id.schedule(0)
            self._state = "idle"
            return active
        active |= sis.rst.schedule(0)

        if self._state == "idle":
            if fcb.req.value:
                self._func_id = fcb.func_sel.value
                self._is_write = bool(fcb.is_write.value)
                self._remaining = max(1, fcb.burst_len.value)
                sis.func_id.next = self._func_id
                if self._is_write:
                    self._state = "write_beat" if not fcb.data_valid.value else "write_present"
                else:
                    sis.io_enable.next = 1
                    self._state = "read_wait"
                return True
            return active

        if self._state == "write_beat":
            if fcb.data_valid.value:
                # One resynchronisation cycle before presenting the beat to
                # the SIS: the generic adapter re-latches FUNC_SEL and the
                # burst state for every beat (part of the indirect-conversion
                # cost the paper accepts in exchange for portability).
                self._state = "write_present"
                return True
            return active

        if self._state == "write_present":
            self._present_write()
            return True

        if self._state == "write_wait":
            if sis.io_done.value:
                sis.data_in_valid.next = 0
                self._state = "write_ack"
                return True
            return active

        if self._state == "write_ack":
            fcb.ack.next = 1
            self._remaining -= 1
            self._state = "write_gap" if self._remaining else "idle"
            return True

        if self._state == "write_gap":
            # The master drops DATA_VALID for one cycle between beats.
            if not fcb.data_valid.value:
                self._state = "write_beat"
                return True
            return active

        if self._state == "read_wait":
            if sis.io_done.value and sis.data_out_valid.value:
                fcb.data_from_slave.next = sis.data_out.value
                fcb.resp_valid.next = 1
                self._remaining -= 1
                if self._remaining:
                    self._state = "read_next"
                else:
                    self._state = "idle"
                return True
            return active

        if self._state == "read_next":
            sis.func_id.next = self._func_id
            sis.io_enable.next = 1
            self._state = "read_wait"
            return True
        return active

    def _present_write(self) -> None:
        sis = self.sis
        sis.func_id.next = self._func_id
        sis.data_in.next = self.fcb.data_to_slave.value
        sis.data_in_valid.next = 1
        sis.io_enable.next = 1
        self._state = "write_wait"


class APBToSIS(Module):
    """APB slave-side adapter onto the SIS (strictly synchronous protocol).

    Writes are forwarded to the SIS during the access cycle; reads are served
    combinationally from the per-function ``DATA_OUT`` registers (or the
    ``CALC_DONE`` vector at slot zero) because the APB cannot insert wait
    states, and the access also strobes ``IO_ENABLE`` so the addressed
    function advances to its next output word.
    """

    def __init__(
        self,
        name: str,
        apb: APBSlaveBundle,
        sis: SISBundle,
        ports: Dict[int, SISFunctionPort],
        base_address: int,
    ) -> None:
        super().__init__(name)
        self.apb = apb
        self.sis = sis
        self.ports = dict(ports)
        self.base_address = base_address
        self.clocked(
            self._tick,
            sensitive_to=[apb.rst, apb.psel, apb.penable, apb.paddr, apb.pwrite, apb.pwdata],
        )
        # The read mux decodes PSEL/PADDR against the per-function DATA_OUT
        # registers and the CALC_DONE vector — its complete input set; it
        # only ever drives PRDATA.
        sensitivity = [apb.psel, apb.paddr]
        for port in self.ports.values():
            sensitivity += [port.data_out, port.calc_done]
        self.comb(self._read_mux, sensitive_to=sensitivity, drives=[apb.prdata])

    def _slot(self, address: int) -> int:
        return (address - self.base_address) // (self.apb.data_width // 8)

    def _tick(self) -> bool:
        apb, sis = self.apb, self.sis
        active = sis.io_enable.schedule(0)
        active |= sis.data_in_valid.schedule(0)

        if apb.rst._value:
            active |= sis.rst.schedule(1)
            active |= sis.func_id.schedule(0)
            return active
        active |= sis.rst.schedule(0)

        if apb.psel.value and apb.penable.value:
            slot = self._slot(apb.paddr.value)
            sis.func_id.next = slot
            sis.io_enable.next = 1
            if apb.pwrite.value:
                sis.data_in.next = apb.pwdata.value
                sis.data_in_valid.next = 1
            return True
        return active

    def _read_mux(self) -> None:
        apb = self.apb
        if not apb.psel.value:
            return
        slot = self._slot(apb.paddr.value)
        if slot == STATUS_FUNC_ID:
            vector = 0
            for func_id, port in self.ports.items():
                if port.calc_done.value:
                    vector |= 1 << (func_id - 1)
            apb.prdata.drive(vector)
            return
        port = self.ports.get(slot)
        apb.prdata.drive(port.data_out.value if port is not None else 0)


#: Adapter classes by bus name (used by the peripheral builder and SoC).
ADAPTER_CLASSES = {
    "plb": PLBToSIS,
    "opb": OPBToSIS,
    "fcb": FCBToSIS,
    "apb": APBToSIS,
}
