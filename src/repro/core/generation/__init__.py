"""Hardware generation (Chapters 4 and 5).

Generation is a three-stage process mirroring Figure 5.1:

1. :mod:`repro.core.generation.interface` builds the native bus interface
   adapter (from annotated templates expanded by
   :mod:`repro.core.generation.template` and the standard macro set of
   Figure 7.1),
2. :mod:`repro.core.generation.arbiter` builds the arbitration unit, and
3. :mod:`repro.core.generation.stubs` builds one user-logic stub (ICOB + SMB)
   per interface declaration.

Every generator produces an entry in the :class:`~repro.core.generation.ir.HardwareIR`,
which is then rendered to VHDL or Verilog text
(:mod:`repro.core.generation.vhdl`, :mod:`repro.core.generation.verilog`),
costed by the resource estimator, and elaborated into simulatable RTL
modules (:mod:`repro.core.generation.peripheral`).
"""

from repro.core.generation.ir import (
    EntityIR,
    EntityKind,
    HardwareIR,
    PortDirection,
    PortIR,
    RegisterIR,
    FSMIR,
    MuxIR,
)
from repro.core.generation.generator import generate_hardware
from repro.core.generation.peripheral import GeneratedPeripheral

__all__ = [
    "EntityIR",
    "EntityKind",
    "HardwareIR",
    "PortDirection",
    "PortIR",
    "RegisterIR",
    "FSMIR",
    "MuxIR",
    "generate_hardware",
    "GeneratedPeripheral",
]
