"""VHDL text back-end.

Two rendering paths exist:

* template expansion — the bus adapter, arbiter and stub files are produced
  from the annotated templates in :mod:`repro.core.generation.interface`,
  :mod:`repro.core.generation.arbiter` and :mod:`repro.core.generation.stubs`
  using the ``%SYMBOL%`` engine, exactly as the paper describes; and
* generic IR rendering — :func:`render_entity_vhdl` emits a structural VHDL
  sketch (entity declaration, registers, FSM type) for any
  :class:`~repro.core.generation.ir.EntityIR`, which the Verilog back-end
  mirrors and the tests use to check port agreement between IR and templates.
"""

from __future__ import annotations

from typing import List

from repro.core.generation.ir import EntityIR, PortDirection

_HEADER = "library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n"


def _vhdl_type(width: int) -> str:
    if width <= 1:
        return "std_logic"
    return f"std_logic_vector({width - 1} downto 0)"


def _render_ports(entity: EntityIR) -> List[str]:
    lines = []
    for index, port in enumerate(entity.ports):
        direction = "in" if port.direction is PortDirection.IN else "out"
        if port.direction is PortDirection.INOUT:
            direction = "inout"
        terminator = ";" if index < len(entity.ports) - 1 else ""
        comment = f"  -- {port.description}" if port.description else ""
        lines.append(f"    {port.name:<24} : {direction:<5} {_vhdl_type(port.width)}{terminator}{comment}")
    return lines


def render_entity_vhdl(entity: EntityIR) -> str:
    """Render a structural VHDL sketch of ``entity`` from its IR."""
    lines: List[str] = [_HEADER]
    lines.append(f"-- {entity.description}" if entity.description else f"-- entity {entity.name}")
    lines.append(f"entity {entity.name} is")
    if entity.ports:
        lines.append("  port (")
        lines.extend(_render_ports(entity))
        lines.append("  );")
    lines.append("end entity;")
    lines.append("")
    lines.append(f"architecture splice of {entity.name} is")

    for fsm in entity.fsms:
        states = ", ".join(fsm.states)
        lines.append(f"  type {fsm.name}_type is ({states});")
        lines.append(f"  signal {fsm.name}_cur, {fsm.name}_next : {fsm.name}_type;")
    for register in entity.registers:
        lines.append(f"  signal {register.name} : {_vhdl_type(register.width)};  -- {register.purpose}")
    for counter in entity.counters:
        lines.append(f"  signal {counter.name} : unsigned({counter.width - 1} downto 0);  -- {counter.purpose}")
    lines.append("begin")
    for mux in entity.muxes:
        lines.append(f"  -- {mux.inputs}-way, {mux.width}-bit multiplexer: {mux.purpose or mux.name}")
    for comparator in entity.comparators:
        lines.append(f"  -- {comparator.width}-bit comparator: {comparator.purpose or comparator.name}")
    for fsm in entity.fsms:
        lines.append(f"  {fsm.name}_smb : process (CLK)")
        lines.append("  begin")
        lines.append("    if rising_edge(CLK) then")
        lines.append(f"      if (RST = '1') then {fsm.name}_cur <= {fsm.states[0]};")
        lines.append(f"      else {fsm.name}_cur <= {fsm.name}_next; end if;")
        lines.append("    end if;")
        lines.append("  end process;")
    lines.append("end architecture;")
    return "\n".join(lines) + "\n"


def file_name(entity: EntityIR, suffix: str = "vhd") -> str:
    """Conventional output file name for ``entity`` (Figure 8.3 style)."""
    return f"{entity.name}.{suffix}"
