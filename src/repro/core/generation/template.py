"""The ``%SYMBOL%`` template engine used for native bus adapter generation.

Bus interfaces are generated "by consulting a set of reference HDL files ...
Embedded in these reference files are macro symbols of the form '%SYMBOL%'
that are parsed out by the generation routine and replaced with the logic
required to generate a functionally-complete bus" (Section 5.1).

:class:`TemplateEngine` implements that parser.  Handlers are looked up in a
:class:`MacroRegistry`; external bus libraries add their own bus-specific
markers through the extension API's *marker loader* routine (Section 7.1.2).
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.syntax.errors import SpliceGenerationError

MacroHandler = Callable[["MacroContext"], str]

_MACRO_RE = re.compile(r"%([A-Z][A-Z0-9_]*)%")


class MacroContext:
    """Everything a macro handler may need while expanding a template.

    Attributes
    ----------
    module:
        The :class:`~repro.core.params.ModuleParams` being generated.
    func:
        The :class:`~repro.core.params.FuncParams` currently being expanded,
        when the macro is evaluated inside a per-function region.
    extra:
        Free-form values supplied by the caller (e.g. the generation date).
    """

    def __init__(self, module, func=None, extra: Optional[Dict[str, object]] = None) -> None:
        self.module = module
        self.func = func
        self.extra = dict(extra or {})

    def with_func(self, func) -> "MacroContext":
        return MacroContext(self.module, func=func, extra=self.extra)


class MacroRegistry:
    """Named macro handlers (the built-in set plus bus-specific additions)."""

    def __init__(self) -> None:
        self._handlers: Dict[str, MacroHandler] = {}

    def register(self, name: str, handler: MacroHandler, *, replace: bool = False) -> None:
        key = name.upper()
        if key in self._handlers and not replace:
            raise SpliceGenerationError(f"macro {key!r} is already registered")
        self._handlers[key] = handler

    def register_many(self, handlers: Dict[str, MacroHandler], *, replace: bool = False) -> None:
        for name, handler in handlers.items():
            self.register(name, handler, replace=replace)

    def knows(self, name: str) -> bool:
        return name.upper() in self._handlers

    def handler(self, name: str) -> MacroHandler:
        try:
            return self._handlers[name.upper()]
        except KeyError:
            raise SpliceGenerationError(
                f"no handler registered for macro %{name.upper()}%"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._handlers)

    def copy(self) -> "MacroRegistry":
        clone = MacroRegistry()
        clone._handlers = dict(self._handlers)
        return clone


class TemplateEngine:
    """Expands ``%SYMBOL%`` markers in template text using a macro registry."""

    def __init__(self, registry: MacroRegistry) -> None:
        self.registry = registry

    def find_macros(self, template: str) -> List[str]:
        """All macro names referenced by ``template`` (in order, unique)."""
        seen: List[str] = []
        for match in _MACRO_RE.finditer(template):
            name = match.group(1)
            if name not in seen:
                seen.append(name)
        return seen

    def check(self, template: str) -> None:
        """Raise if ``template`` references a macro with no handler."""
        missing = [name for name in self.find_macros(template) if not self.registry.knows(name)]
        if missing:
            raise SpliceGenerationError(
                "template references macros with no registered handler: "
                + ", ".join(f"%{name}%" for name in missing)
            )

    def expand(self, template: str, context: MacroContext) -> str:
        """Replace every ``%SYMBOL%`` in ``template`` with its handler output."""
        self.check(template)

        def _replace(match: re.Match) -> str:
            handler = self.registry.handler(match.group(1))
            value = handler(context)
            return "" if value is None else str(value)

        return _MACRO_RE.sub(_replace, template)

    def expand_per_function(self, template: str, context: MacroContext, funcs: Iterable) -> str:
        """Expand ``template`` once per function and concatenate the results."""
        parts = [self.expand(template, context.with_func(func)) for func in funcs]
        return "\n".join(parts)
