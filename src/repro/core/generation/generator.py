"""Top-level hardware generation orchestrator (Chapter 5).

:func:`generate_hardware` runs the three generation stages — bus interface,
arbitration unit, user-logic stubs — producing both the structural
:class:`~repro.core.generation.ir.HardwareIR` and the rendered HDL text for
every output file (the Figure 8.3 file listing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.capabilities import BusCapabilities
from repro.core.generation.arbiter import ARBITER_TEMPLATE, arbiter_entity_name, build_arbiter_ir
from repro.core.generation.interface import (
    adapter_entity_name,
    adapter_template,
    build_interface_ir,
    bus_markers,
)
from repro.core.generation.ir import HardwareIR
from repro.core.generation.macros import DEFAULT_GEN_DATE, build_context, standard_registry
from repro.core.generation.stubs import STUB_TEMPLATE, build_stub_ir, stub_entity_name
from repro.core.generation.template import MacroRegistry, TemplateEngine
from repro.core.generation.verilog import render_entity_verilog
from repro.core.generation.vhdl import render_entity_vhdl
from repro.core.params import ModuleParams


@dataclass
class HardwareOutput:
    """Everything the hardware generator produces for one peripheral."""

    ir: HardwareIR
    files: Dict[str, str] = field(default_factory=dict)

    def file_listing(self):
        return list(self.files)

    def file_text(self, name: str) -> str:
        return self.files[name]


def _hdl_suffix(module: ModuleParams) -> str:
    return "v" if module.hdl_type == "verilog" else "vhd"


def generate_hardware(
    module: ModuleParams,
    bus: BusCapabilities,
    *,
    registry: Optional[MacroRegistry] = None,
    extra_markers: Optional[Dict[str, str]] = None,
    gen_date: str = DEFAULT_GEN_DATE,
    interface_builder=None,
    interface_template: Optional[str] = None,
) -> HardwareOutput:
    """Generate the full hardware side of a Splice peripheral.

    Parameters
    ----------
    module:
        The shared parameter structure built from the user's specification.
    bus:
        Capabilities of the targeted bus.
    registry:
        Optional macro registry; defaults to the built-in Figure 7.1 set.
        External bus libraries pass a registry extended by their marker
        loader routine.
    extra_markers:
        Literal bus-specific marker replacements (name -> text); the built-in
        adapters load theirs from :func:`repro.core.generation.interface.bus_markers`.
    gen_date:
        Text substituted for ``%GEN_DATE%``.
    """
    bus_name = bus.name.lower()
    suffix = _hdl_suffix(module)
    registry = (registry or standard_registry()).copy()

    markers = bus_markers(bus_name)
    if extra_markers:
        markers.update(extra_markers)
    for name, replacement in markers.items():
        registry.register(name, lambda _ctx, _text=replacement: _text, replace=True)

    engine = TemplateEngine(registry)
    context = build_context(module, gen_date=gen_date)

    ir = HardwareIR(device_name=module.mod_name, bus_type=bus_name, data_width=module.data_width)
    files: Dict[str, str] = {}

    # Stage 1: native bus interface adapter.  External bus libraries supply
    # their own builder/template pair (Section 7.1.2); the built-in buses use
    # the reference templates shipped with the tool.
    builder = interface_builder or build_interface_ir
    interface_ir = builder(module, bus)
    interface_file = f"{bus_name}_interface.{suffix}"
    ir.add_entity(interface_ir, interface_file)
    if module.hdl_type == "verilog":
        files[interface_file] = render_entity_verilog(interface_ir)
    else:
        template = interface_template if interface_template is not None else adapter_template(bus_name)
        files[interface_file] = engine.expand(template, context)

    # Stage 2: arbitration unit.
    arbiter_ir = build_arbiter_ir(module)
    arbiter_file = f"user_{module.mod_name}.{suffix}"
    ir.add_entity(arbiter_ir, arbiter_file)
    if module.hdl_type == "verilog":
        files[arbiter_file] = render_entity_verilog(arbiter_ir)
    else:
        files[arbiter_file] = engine.expand(ARBITER_TEMPLATE, context)

    # Stage 3: one user-logic stub per declaration.
    for func in module.funcs:
        stub_ir = build_stub_ir(func, module)
        stub_file = f"func_{func.func_name}.{suffix}"
        ir.add_entity(stub_ir, stub_file)
        if module.hdl_type == "verilog":
            files[stub_file] = render_entity_verilog(stub_ir)
        else:
            files[stub_file] = engine.expand(STUB_TEMPLATE, context.with_func(func))

    # Generic structural renderings are also recorded for every entity so the
    # %target_hdl directive can be flipped without re-running generation.
    for entity in ir.entities:
        alt_name = f"{entity.name}.structural.{suffix}"
        renderer = render_entity_verilog if module.hdl_type == "verilog" else render_entity_vhdl
        files.setdefault(alt_name, renderer(entity))

    return HardwareOutput(ir=ir, files=files)
