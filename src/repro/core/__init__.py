"""The Splice engine: syntax front-end, parameter model, generation back-ends.

This package is the paper's primary contribution — the code-generation tool
itself.  :class:`repro.core.engine.Splice` ties the pieces together:

* :mod:`repro.core.syntax` parses interface declarations and target
  specifications (Chapter 3),
* :mod:`repro.core.params` holds the shared ``splice_params`` structure
  (Figure 7.3),
* :mod:`repro.core.generation` produces the hardware (Chapters 4–5),
* :mod:`repro.core.drivers` produces the software drivers (Chapter 6), and
* :mod:`repro.core.api` is the extension API for new bus adapters
  (Chapter 7).
"""

from repro.core.engine import Splice, GenerationResult

__all__ = ["Splice", "GenerationResult"]
