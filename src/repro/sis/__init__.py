"""The Splice Interface Standard (Chapter 4).

The SIS is the bus-independent protocol that sits between every native bus
adapter and the user-logic stubs Splice generates.  This package provides the
signal bundle (Figure 4.2), the two transfer-protocol variants (Figures 4.3
and 4.4), and runtime protocol monitors used by the tests to check that
generated hardware obeys the standard's communication axioms.
"""

from repro.sis.signals import SISBundle, SISFunctionPort, SIGNAL_DESCRIPTIONS
from repro.sis.protocol import (
    ProtocolVariant,
    SISProtocolMonitor,
    ProtocolViolation,
    variant_for_bus,
)

__all__ = [
    "SISBundle",
    "SISFunctionPort",
    "SIGNAL_DESCRIPTIONS",
    "ProtocolVariant",
    "SISProtocolMonitor",
    "ProtocolViolation",
    "variant_for_bus",
]
