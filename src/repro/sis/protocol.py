"""SIS transfer protocols and runtime protocol checking (Sections 4.2).

Two protocol variants exist:

* **pseudo-asynchronous** (Figure 4.3) — the native bus provides per-beat
  handshaking, so the adapter holds ``DATA_IN`` / ``DATA_IN_VALID`` /
  ``FUNC_ID`` steady until the targeted function raises ``IO_DONE`` for one
  cycle; reads complete when the function raises ``DATA_OUT_VALID`` and
  ``IO_DONE`` together.
* **strictly synchronous** (Figure 4.4) — the native bus cannot be paused;
  writes must complete in the cycle they are presented and reads are
  coordinated through the ``CALC_DONE`` status vector, which software polls
  via the reserved function identifier zero.

:class:`SISProtocolMonitor` watches a shared :class:`~repro.sis.signals.SISBundle`
every cycle and records violations of the communication axioms; the test
suite attaches it to generated hardware to prove adapters honour the SIS.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.rtl.simulator import Simulator
from repro.sis.signals import SISBundle


class ProtocolVariant(enum.Enum):
    """Which SIS transfer protocol a native interface adapter implements."""

    PSEUDO_ASYNCHRONOUS = "pseudo_asynchronous"
    STRICTLY_SYNCHRONOUS = "strictly_synchronous"


def variant_for_bus(pseudo_asynchronous: bool) -> ProtocolVariant:
    """Map a bus capability flag onto the SIS protocol variant it requires."""
    return (
        ProtocolVariant.PSEUDO_ASYNCHRONOUS
        if pseudo_asynchronous
        else ProtocolVariant.STRICTLY_SYNCHRONOUS
    )


@dataclass
class ProtocolViolation:
    """One detected violation of the SIS communication axioms."""

    cycle: int
    rule: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return f"cycle {self.cycle}: [{self.rule}] {self.detail}"


@dataclass
class SISProtocolMonitor:
    """Observes a shared SIS bundle and records protocol violations.

    The checks encode the axioms stated in Section 4.2:

    * ``DATA_IN_VALID`` may only be asserted while ``DATA_IN``/``FUNC_ID``
      are stable (write payload must not glitch mid-transfer),
    * ``IO_ENABLE`` strobes for a single cycle per request,
    * ``DATA_OUT_VALID`` is only meaningful together with ``IO_DONE`` on
      read completion, and
    * function identifier zero is never the target of a write (it addresses
      the read-only ``CALC_DONE`` status register).
    """

    bundle: SISBundle
    variant: ProtocolVariant = ProtocolVariant.PSEUDO_ASYNCHRONOUS
    violations: List[ProtocolViolation] = field(default_factory=list)
    _prev_io_enable: int = 0
    _io_enable_run: int = 0
    _prev_valid: int = 0
    _prev_data_in: int = 0
    _prev_func_id: int = 0
    _simulator: Optional[Simulator] = None

    def attach(self, simulator: Simulator) -> "SISProtocolMonitor":
        """Register the monitor with ``simulator`` (runs after every cycle)."""
        self._simulator = simulator
        simulator.add_monitor(self.sample)
        return self

    # -- checking ---------------------------------------------------------

    def sample(self) -> None:
        # Runs after every simulated cycle; read signal slots directly to keep
        # the monitor's overhead out of the kernel-throughput numbers.
        cycle = self._simulator.cycle if self._simulator is not None else len(self.violations)
        bundle = self.bundle

        io_enable = bundle.io_enable._value
        if io_enable and self._prev_io_enable:
            self._io_enable_run += 1
            if self._io_enable_run >= 2:
                self._record(cycle, "io_enable_strobe", "IO_ENABLE held high for more than one request cycle without a new request")
        else:
            self._io_enable_run = 0

        if io_enable and bundle.data_in_valid._value and bundle.func_id._value == 0:
            self._record(
                cycle,
                "status_register_write",
                "write presented to function id 0, which is reserved for the CALC_DONE status register",
            )

        if (
            self.variant is ProtocolVariant.PSEUDO_ASYNCHRONOUS
            and self._prev_valid
            and bundle.data_in_valid._value
            and not bundle.io_done._value
        ):
            if bundle.data_in._value != self._prev_data_in:
                self._record(
                    cycle,
                    "data_in_stability",
                    "DATA_IN changed while DATA_IN_VALID was held waiting for IO_DONE",
                )
            if bundle.func_id._value != self._prev_func_id:
                self._record(
                    cycle,
                    "func_id_stability",
                    "FUNC_ID changed while DATA_IN_VALID was held waiting for IO_DONE",
                )

        if bundle.data_out_valid._value and not bundle.io_done._value and self.variant is ProtocolVariant.PSEUDO_ASYNCHRONOUS:
            # Figure 4.3: DATA_OUT_VALID and IO_DONE rise together on reads.
            self._record(
                cycle,
                "read_handshake",
                "DATA_OUT_VALID asserted without IO_DONE on a pseudo-asynchronous interface",
            )

        self._prev_io_enable = io_enable
        self._prev_valid = bundle.data_in_valid._value
        self._prev_data_in = bundle.data_in._value
        self._prev_func_id = bundle.func_id._value

    def _record(self, cycle: int, rule: str, detail: str) -> None:
        self.violations.append(ProtocolViolation(cycle=cycle, rule=rule, detail=detail))

    # -- reporting ---------------------------------------------------------

    @property
    def clean(self) -> bool:
        """True when no violations have been observed."""
        return not self.violations

    def report(self) -> str:
        if self.clean:
            return "SIS protocol: no violations observed"
        lines = [f"SIS protocol: {len(self.violations)} violation(s)"]
        lines.extend(str(v) for v in self.violations)
        return "\n".join(lines)
