"""SIS transfer protocols and runtime protocol checking (Sections 4.2).

Two protocol variants exist:

* **pseudo-asynchronous** (Figure 4.3) — the native bus provides per-beat
  handshaking, so the adapter holds ``DATA_IN`` / ``DATA_IN_VALID`` /
  ``FUNC_ID`` steady until the targeted function raises ``IO_DONE`` for one
  cycle; reads complete when the function raises ``DATA_OUT_VALID`` and
  ``IO_DONE`` together.
* **strictly synchronous** (Figure 4.4) — the native bus cannot be paused;
  writes must complete in the cycle they are presented and reads are
  coordinated through the ``CALC_DONE`` status vector, which software polls
  via the reserved function identifier zero.

:class:`SISProtocolMonitor` watches a shared :class:`~repro.sis.signals.SISBundle`
every cycle and records violations of the communication axioms; the test
suite attaches it to generated hardware to prove adapters honour the SIS.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.rtl.simulator import Simulator
from repro.sis.signals import SISBundle


class ProtocolVariant(enum.Enum):
    """Which SIS transfer protocol a native interface adapter implements."""

    PSEUDO_ASYNCHRONOUS = "pseudo_asynchronous"
    STRICTLY_SYNCHRONOUS = "strictly_synchronous"


def variant_for_bus(pseudo_asynchronous: bool) -> ProtocolVariant:
    """Map a bus capability flag onto the SIS protocol variant it requires."""
    return (
        ProtocolVariant.PSEUDO_ASYNCHRONOUS
        if pseudo_asynchronous
        else ProtocolVariant.STRICTLY_SYNCHRONOUS
    )


@dataclass
class ProtocolViolation:
    """One detected violation of the SIS communication axioms."""

    cycle: int
    rule: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return f"cycle {self.cycle}: [{self.rule}] {self.detail}"


@dataclass
class SISProtocolMonitor:
    """Observes a shared SIS bundle and records protocol violations.

    The checks encode the axioms stated in Section 4.2:

    * ``DATA_IN_VALID`` may only be asserted while ``DATA_IN``/``FUNC_ID``
      are stable (write payload must not glitch mid-transfer),
    * ``IO_ENABLE`` strobes for a single cycle per request,
    * ``DATA_OUT_VALID`` is only meaningful together with ``IO_DONE`` on
      read completion, and
    * function identifier zero is never the target of a write (it addresses
      the read-only ``CALC_DONE`` status register).
    """

    bundle: SISBundle
    variant: ProtocolVariant = ProtocolVariant.PSEUDO_ASYNCHRONOUS
    violations: List[ProtocolViolation] = field(default_factory=list)
    _prev_io_enable: int = 0
    _io_enable_run: int = 0
    _prev_valid: int = 0
    _prev_data_in: int = 0
    _prev_func_id: int = 0
    _simulator: Optional[Simulator] = None
    _fused_state_list: Optional[list] = field(default=None, repr=False)

    def attach(self, simulator: Simulator) -> "SISProtocolMonitor":
        """Register the monitor with ``simulator`` (runs after every cycle)."""
        self._simulator = simulator
        simulator.add_monitor(self.sample)
        return self

    # -- checking ---------------------------------------------------------

    def sample(self) -> None:
        # Runs after every simulated cycle; read signal slots directly to keep
        # the monitor's overhead out of the kernel-throughput numbers.
        cycle = self._simulator.cycle if self._simulator is not None else len(self.violations)
        bundle = self.bundle

        io_enable = bundle.io_enable._value
        if io_enable and self._prev_io_enable:
            self._io_enable_run += 1
            if self._io_enable_run >= 2:
                self._record(cycle, "io_enable_strobe", "IO_ENABLE held high for more than one request cycle without a new request")
        else:
            self._io_enable_run = 0

        if io_enable and bundle.data_in_valid._value and bundle.func_id._value == 0:
            self._record(
                cycle,
                "status_register_write",
                "write presented to function id 0, which is reserved for the CALC_DONE status register",
            )

        if (
            self.variant is ProtocolVariant.PSEUDO_ASYNCHRONOUS
            and self._prev_valid
            and bundle.data_in_valid._value
            and not bundle.io_done._value
        ):
            if bundle.data_in._value != self._prev_data_in:
                self._record(
                    cycle,
                    "data_in_stability",
                    "DATA_IN changed while DATA_IN_VALID was held waiting for IO_DONE",
                )
            if bundle.func_id._value != self._prev_func_id:
                self._record(
                    cycle,
                    "func_id_stability",
                    "FUNC_ID changed while DATA_IN_VALID was held waiting for IO_DONE",
                )

        if bundle.data_out_valid._value and not bundle.io_done._value and self.variant is ProtocolVariant.PSEUDO_ASYNCHRONOUS:
            # Figure 4.3: DATA_OUT_VALID and IO_DONE rise together on reads.
            self._record(
                cycle,
                "read_handshake",
                "DATA_OUT_VALID asserted without IO_DONE on a pseudo-asynchronous interface",
            )

        self._prev_io_enable = io_enable
        self._prev_valid = bundle.data_in_valid._value
        self._prev_data_in = bundle.data_in._value
        self._prev_func_id = bundle.func_id._value

    def _record(self, cycle: int, rule: str, detail: str) -> None:
        self.violations.append(ProtocolViolation(cycle=cycle, rule=rule, detail=detail))

    # -- compiled-kernel fusion --------------------------------------------

    def _fused_state(self) -> list:
        """Mutable check state shared by every compiled freeze of this monitor.

        Layout: [prev_io_enable, io_enable_run, prev_valid, prev_data_in,
        prev_func_id, prev_data_out_valid] — the rolling state
        :meth:`sample` keeps in scalar attributes (plus the last observed
        ``DATA_OUT_VALID``, which the event gate needs).  Seeded from those
        attributes on first use and reused across recompiles, so a design
        that re-freezes mid-run resumes with consistent history.
        """
        if self._fused_state_list is None:
            self._fused_state_list = [
                self._prev_io_enable,
                self._io_enable_run,
                self._prev_valid,
                self._prev_data_in,
                self._prev_func_id,
                0,
            ]
        return self._fused_state_list

    def emit_compiled_monitor(self, prefix: str) -> dict:
        """Fusion hook for :class:`repro.rtl.compile.CompiledSimulator`.

        Returns a dict describing source the generated step loop inlines in
        place of calling :meth:`sample` every cycle:

        * ``entry`` / ``exit`` — lines run once per generated-function call,
          loading the rolling check state into locals and writing it back,
        * ``body`` — the per-cycle checks: same five rules, same order, same
          rule names and detail strings, reading the same signal slots and
          recording through :meth:`_record`, so the ``violations`` list is
          element-for-element identical to the scan kernels',
        * ``gate_signals`` / ``hot`` — the *event gate*: the body may be
          skipped on any cycle where none of ``gate_signals`` changed and
          the ``hot`` expression (over the state locals) is false.  With all
          strobes low, previous strobes low, and inputs unchanged, every
          check is vacuous and every state update idempotent, so the skip is
          a provable no-op — this is what removes the per-cycle monitor cost
          from quiet cycles entirely.

        ``cyc`` in the generated loop is the post-increment cycle number, the
        same value :meth:`sample` reads from the attached simulator.
        """
        bundle = self.bundle
        p = prefix
        namespace = {
            f"{p}_ST": self._fused_state(),
            f"{p}_IOEN": bundle.io_enable,
            f"{p}_DIV": bundle.data_in_valid,
            f"{p}_DIN": bundle.data_in,
            f"{p}_FID": bundle.func_id,
            f"{p}_IOD": bundle.io_done,
            f"{p}_DOV": bundle.data_out_valid,
            f"{p}_REC": self._record,
        }
        entry = [
            f"{p}_ioen = {p}_IOEN; {p}_div = {p}_DIV; {p}_din = {p}_DIN",
            f"{p}_fid = {p}_FID; {p}_iod = {p}_IOD; {p}_dov = {p}_DOV; {p}_rec = {p}_REC",
            f"{p}_s0, {p}_s1, {p}_s2, {p}_s3, {p}_s4, {p}_s5 = {p}_ST",
        ]
        exit_ = [
            f"{p}_ST[0] = {p}_s0; {p}_ST[1] = {p}_s1; {p}_ST[2] = {p}_s2",
            f"{p}_ST[3] = {p}_s3; {p}_ST[4] = {p}_s4; {p}_ST[5] = {p}_s5",
        ]
        pseudo = self.variant is ProtocolVariant.PSEUDO_ASYNCHRONOUS
        body = [
            f"{p}_e = {p}_ioen._value",
            f"{p}_v = {p}_div._value",
            f"if {p}_e and {p}_s0:",
            f"    {p}_s1 += 1",
            f"    if {p}_s1 >= 2:",
            f'        {p}_rec(cyc, "io_enable_strobe", "IO_ENABLE held high for more than one request cycle without a new request")',
            f"else:",
            f"    {p}_s1 = 0",
            f"if {p}_e and {p}_v and {p}_fid._value == 0:",
            f'    {p}_rec(cyc, "status_register_write", "write presented to function id 0, which is reserved for the CALC_DONE status register")',
        ]
        if pseudo:
            body += [
                f"if {p}_s2 and {p}_v and not {p}_iod._value:",
                f"    if {p}_din._value != {p}_s3:",
                f'        {p}_rec(cyc, "data_in_stability", "DATA_IN changed while DATA_IN_VALID was held waiting for IO_DONE")',
                f"    if {p}_fid._value != {p}_s4:",
                f'        {p}_rec(cyc, "func_id_stability", "FUNC_ID changed while DATA_IN_VALID was held waiting for IO_DONE")',
                f"{p}_d = {p}_dov._value",
                f"if {p}_d and not {p}_iod._value:",
                f'    {p}_rec(cyc, "read_handshake", "DATA_OUT_VALID asserted without IO_DONE on a pseudo-asynchronous interface")',
                f"{p}_s5 = {p}_d",
            ]
        body += [
            f"{p}_s0 = {p}_e",
            f"{p}_s2 = {p}_v",
            f"{p}_s3 = {p}_din._value",
            f"{p}_s4 = {p}_fid._value",
        ]
        # Gate: the checks must observe every change of the signals they
        # compare (strobes, payload, function id), plus every cycle in the
        # two *held-strobe* states where a record can repeat without any
        # change (IO_ENABLE held -> s0; DATA_OUT_VALID held -> s5).  IO_DONE
        # needs no bit: it only ever suppresses records, and the held-DOV
        # case that reads it across cycles keeps the monitor hot via s5.
        gate_signals = [bundle.io_enable, bundle.data_in_valid]
        hot = f"{p}_s0"
        if pseudo:
            gate_signals += [bundle.data_out_valid, bundle.data_in, bundle.func_id]
            hot += f" or {p}_s5"
        return {
            "entry": entry,
            "body": body,
            "exit": exit_,
            "namespace": namespace,
            "gate_signals": gate_signals,
            "hot": hot,
        }

    # -- reporting ---------------------------------------------------------

    @property
    def clean(self) -> bool:
        """True when no violations have been observed."""
        return not self.violations

    def report(self) -> str:
        if self.clean:
            return "SIS protocol: no violations observed"
        lines = [f"SIS protocol: {len(self.violations)} violation(s)"]
        lines.extend(str(v) for v in self.violations)
        return "\n".join(lines)
