"""SIS signal bundles (Figure 4.2).

The SIS consists of ten signals.  Six are *broadcast* — driven by the native
bus adapter and seen by every user-logic function: ``CLK``, ``RST``,
``DATA_IN``, ``DATA_IN_VALID``, ``IO_ENABLE`` and ``FUNC_ID``.  Four are
*per-function* — each user-logic stub produces its own copy, which the
arbitration unit multiplexes back to the adapter: ``DATA_OUT``,
``DATA_OUT_VALID``, ``IO_DONE`` and ``CALC_DONE``.

In this reproduction ``CLK`` is implicit (the simulator's global clock);
every other signal is a real :class:`repro.rtl.Signal`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.rtl.signal import Signal

#: Functional description of each SIS signal, reproducing Figure 4.2.
SIGNAL_DESCRIPTIONS: Dict[str, str] = {
    "CLK": "Global clock signal used to coordinate all bus transactions.",
    "RST": "Reset signal used to terminate current operations and return the user logic to a known state.",
    "DATA_IN": "Input data from the processor for use by the user logic.",
    "DATA_IN_VALID": "Signals that input data is valid and waiting to be stored in the user logic.",
    "IO_ENABLE": "Signals the arrival of a new data request (read or write) to ensure proper timing of burst and DMA transactions.",
    "FUNC_ID": "Targets a specific user-logic function and directs I/O requests across the SIS.",
    "DATA_OUT": "Output data from the user logic in response to a processor request.",
    "DATA_OUT_VALID": "Signals that output data is valid and waiting to be read by the processor.",
    "IO_DONE": "Signals that the previous load or store operation sent to this function has completed.",
    "CALC_DONE": "Signals that the calculation operations performed by this function have all completed.",
}

#: Broadcast signals (adapter -> all functions).
BROADCAST_SIGNALS = ("RST", "DATA_IN", "DATA_IN_VALID", "IO_ENABLE", "FUNC_ID")

#: Per-function signals (function -> arbiter -> adapter).
PER_FUNCTION_SIGNALS = ("DATA_OUT", "DATA_OUT_VALID", "IO_DONE", "CALC_DONE")


@dataclass
class SISFunctionPort:
    """The per-function side of the SIS for one user-logic instance.

    The arbitration unit collects one of these per function instance and
    multiplexes the outputs onto the shared bundle based on ``FUNC_ID``.
    """

    func_id: int
    data_out: Signal
    data_out_valid: Signal
    io_done: Signal
    calc_done: Signal

    @classmethod
    def create(cls, name: str, func_id: int, data_width: int) -> "SISFunctionPort":
        return cls(
            func_id=func_id,
            data_out=Signal(f"{name}.DATA_OUT", width=data_width),
            data_out_valid=Signal(f"{name}.DATA_OUT_VALID", width=1),
            io_done=Signal(f"{name}.IO_DONE", width=1),
            calc_done=Signal(f"{name}.CALC_DONE", width=1),
        )

    def signals(self) -> List[Signal]:
        return [self.data_out, self.data_out_valid, self.io_done, self.calc_done]


@dataclass
class SISBundle:
    """The shared (adapter-facing) SIS signal bundle."""

    data_width: int
    func_id_width: int
    rst: Signal = field(init=False)
    data_in: Signal = field(init=False)
    data_in_valid: Signal = field(init=False)
    io_enable: Signal = field(init=False)
    func_id: Signal = field(init=False)
    data_out: Signal = field(init=False)
    data_out_valid: Signal = field(init=False)
    io_done: Signal = field(init=False)
    calc_done: Signal = field(init=False)
    name: str = "sis"

    def __post_init__(self) -> None:
        prefix = self.name
        self.rst = Signal(f"{prefix}.RST", width=1)
        self.data_in = Signal(f"{prefix}.DATA_IN", width=self.data_width)
        self.data_in_valid = Signal(f"{prefix}.DATA_IN_VALID", width=1)
        self.io_enable = Signal(f"{prefix}.IO_ENABLE", width=1)
        self.func_id = Signal(f"{prefix}.FUNC_ID", width=self.func_id_width)
        self.data_out = Signal(f"{prefix}.DATA_OUT", width=self.data_width)
        self.data_out_valid = Signal(f"{prefix}.DATA_OUT_VALID", width=1)
        self.io_done = Signal(f"{prefix}.IO_DONE", width=1)
        # CALC_DONE on the shared bundle is the amalgamated per-function
        # vector (the "status register" readable at function id zero).
        self.calc_done = Signal(f"{prefix}.CALC_DONE", width=max(1, (1 << self.func_id_width) - 1))

    def broadcast_signals(self) -> List[Signal]:
        """Signals driven by the adapter toward the user logic."""
        return [self.rst, self.data_in, self.data_in_valid, self.io_enable, self.func_id]

    def return_signals(self) -> List[Signal]:
        """Signals driven by the arbiter back toward the adapter."""
        return [self.data_out, self.data_out_valid, self.io_done, self.calc_done]

    def signals(self) -> List[Signal]:
        return self.broadcast_signals() + self.return_signals()

    def new_function_port(self, name: str, func_id: int) -> SISFunctionPort:
        """Create a per-function port compatible with this bundle."""
        return SISFunctionPort.create(name, func_id, self.data_width)
