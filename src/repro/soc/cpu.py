"""Blocking processor model used to execute generated drivers.

The embedded processors in the paper (PowerPC 405, LEON2) execute driver
code whose loads and stores appear on the bus one at a time; the processor
stalls on each access until the bus completes it.  :class:`ProcessorModel`
reproduces that behaviour: every :meth:`execute` submits one
:class:`~repro.buses.base.BusTransaction` to the bus master and advances the
simulation until it finishes, charging a small configurable inter-instruction
gap between consecutive accesses (address generation / loop overhead in the
driver code).

Two execution paths exist, both cycle-exact with each other:

* :meth:`execute` — one blocking transaction at a time.  The wait is a
  :class:`~repro.rtl.simulator.WaitCondition` on the master's
  completion-count signal rather than a per-cycle Python lambda, so every
  kernel can evaluate it natively (the compiled kernel runs the whole wait
  inside its generated step loop).
* :meth:`execute_script` — a whole driver call's beat sequence (writes,
  poll loop, reads, inter-operation gaps) queued on the master at once as a
  :class:`~repro.buses.base.TransactionScript`; one wait on the master's
  script-count signal replaces N× (submit → wait → gap).  This is the path
  the generated drivers and the Chapter 9 baselines use.

``record_transactions`` controls whether completed transaction objects are
retained in :attr:`executed` (and on the master): campaign-scale runs switch
it off so memory stays flat, while :attr:`transactions_issued` keeps
counting either way.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.buses.base import BusMaster, BusTransaction, PollOp, ScriptOp, TransactionScript
from repro.rtl.simulator import Simulator, WaitCondition


class ProcessorModel:
    """A blocking bus-master CPU with cycle accounting."""

    def __init__(
        self,
        simulator: Simulator,
        master: BusMaster,
        *,
        inter_op_gap: int = 1,
        timeout: int = 100_000,
        record_transactions: bool = True,
    ) -> None:
        self.simulator = simulator
        self.master = master
        self.inter_op_gap = inter_op_gap
        self.timeout = timeout
        self.record_transactions = record_transactions
        self.executed: List[BusTransaction] = []
        self._issued = 0

    # -- cycle accounting ---------------------------------------------------------

    @property
    def cycles(self) -> int:
        """Bus clock cycles elapsed since the simulation started."""
        return self.simulator.cycle

    def elapsed_since(self, start_cycle: int) -> int:
        return self.simulator.cycle - start_cycle

    # -- execution -------------------------------------------------------------------

    def execute(self, transaction: BusTransaction) -> BusTransaction:
        """Run ``transaction`` to completion (blocking, like a CPU load/store)."""
        master = self.master
        if master._script is not None:
            # Scripts have queue priority and advance the completion count,
            # so a mixed-in blocking transaction would unblock early on a
            # script completion.  A blocking CPU never interleaves anyway.
            raise ValueError(
                f"master {master.name!r} is executing a transaction script; "
                f"blocking execute() cannot be interleaved with it"
            )
        master.submit(transaction)
        count = master.completion_count
        # The master completes FIFO, so "our transaction is done" is "the
        # completion count advanced past everything pending right now".
        target = (count._value + master.pending) & count._mask
        self.simulator.wait_until(WaitCondition(count, target), timeout=self.timeout)
        if self.inter_op_gap:
            self.simulator.step(self.inter_op_gap)
        self._issued += 1
        if self.record_transactions:
            self.executed.append(transaction)
        return transaction

    def execute_many(self, transactions) -> List[BusTransaction]:
        return [self.execute(txn) for txn in transactions]

    def execute_script(self, ops: Sequence[ScriptOp]) -> TransactionScript:
        """Run a whole beat sequence inside the master; block until done.

        Cycle-exact with issuing each operation through :meth:`execute`
        (inter-operation gaps included), but the simulation advances in one
        wait on the master's script-count signal instead of one Python round
        trip per transaction.  An empty ``ops`` list completes immediately
        without advancing the simulation, matching a driver call that has
        nothing to transfer.
        """
        script = TransactionScript(
            ops, gap=self.inter_op_gap, record=self.record_transactions
        )
        if not script.ops:
            script.done = True
            return script
        master = self.master
        master.submit_script(script)
        count = master.script_count
        target = (count._value + 1) & count._mask
        # Per-operation budget matching execute(): each poll attempt is an
        # operation of its own.
        budget = self.timeout * sum(
            op.limit if type(op) is PollOp else 1 for op in script.ops
        )
        self.simulator.wait_until(WaitCondition(count, target), timeout=budget)
        self._issued += script.transactions
        if self.record_transactions:
            self.executed.extend(script.executed)
        return script

    def idle(self, cycles: int) -> None:
        """Spin the clock without bus activity (models CPU-side computation)."""
        if cycles > 0:
            self.simulator.step(cycles)

    # -- statistics -------------------------------------------------------------------

    @property
    def transactions_issued(self) -> int:
        return self._issued

    def bus_utilization(self) -> float:
        return self.master.utilization()
