"""Blocking processor model used to execute generated drivers.

The embedded processors in the paper (PowerPC 405, LEON2) execute driver
code whose loads and stores appear on the bus one at a time; the processor
stalls on each access until the bus completes it.  :class:`ProcessorModel`
reproduces that behaviour: every :meth:`execute` submits one
:class:`~repro.buses.base.BusTransaction` to the bus master and advances the
simulation until it finishes, charging a small configurable inter-instruction
gap between consecutive accesses (address generation / loop overhead in the
driver code).
"""

from __future__ import annotations

from typing import List, Optional

from repro.buses.base import BusMaster, BusTransaction
from repro.rtl.simulator import Simulator


class ProcessorModel:
    """A blocking bus-master CPU with cycle accounting."""

    def __init__(
        self,
        simulator: Simulator,
        master: BusMaster,
        *,
        inter_op_gap: int = 1,
        timeout: int = 100_000,
    ) -> None:
        self.simulator = simulator
        self.master = master
        self.inter_op_gap = inter_op_gap
        self.timeout = timeout
        self.executed: List[BusTransaction] = []

    # -- cycle accounting ---------------------------------------------------------

    @property
    def cycles(self) -> int:
        """Bus clock cycles elapsed since the simulation started."""
        return self.simulator.cycle

    def elapsed_since(self, start_cycle: int) -> int:
        return self.simulator.cycle - start_cycle

    # -- execution -------------------------------------------------------------------

    def execute(self, transaction: BusTransaction) -> BusTransaction:
        """Run ``transaction`` to completion (blocking, like a CPU load/store)."""
        self.master.submit(transaction)
        self.simulator.run_until(lambda: transaction.done, timeout=self.timeout)
        if self.inter_op_gap:
            self.simulator.step(self.inter_op_gap)
        self.executed.append(transaction)
        return transaction

    def execute_many(self, transactions) -> List[BusTransaction]:
        return [self.execute(txn) for txn in transactions]

    def idle(self, cycles: int) -> None:
        """Spin the clock without bus activity (models CPU-side computation)."""
        if cycles > 0:
            self.simulator.step(cycles)

    # -- statistics -------------------------------------------------------------------

    @property
    def transactions_issued(self) -> int:
        return len(self.executed)

    def bus_utilization(self) -> float:
        return self.master.utilization()
