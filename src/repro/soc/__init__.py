"""SoC model: processor bus master plus system assembly.

The paper evaluates Splice on real development boards (ML-403, SP3-1500)
with a processor driving the bus.  Here the same role is played by
:class:`~repro.soc.cpu.ProcessorModel`, a blocking bus master that executes
driver-issued transactions and accounts for every bus clock cycle, and
:class:`~repro.soc.system.SpliceSystem`, which wires the processor, the bus
model, a generated (or hand-coded) peripheral and the runtime drivers into a
single runnable object.
"""

from repro.soc.cpu import ProcessorModel
from repro.soc.system import SpliceSystem, build_system

__all__ = ["ProcessorModel", "SpliceSystem", "build_system"]
