"""System assembly: bus + processor + peripheral + drivers in one object.

:func:`build_system` is the one-call path from a Splice specification to a
runnable simulated SoC:

1. run the Splice engine on the specification,
2. instantiate the targeted bus (slave bundle + master model),
3. elaborate the generated hardware with the user's behaviours,
4. create the runtime drivers bound to a blocking processor model, and
5. register everything with a fresh simulator and reset it.

Hand-coded peripherals (the Chapter 9 baselines) use :class:`SpliceSystem`
directly with ``peripheral`` already constructed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.buses.base import BusMaster, SlaveBundle
from repro.buses.registry import create_bus
from repro.core.drivers.macro_lib import SoftwareMacroLibrary, macro_library_for
from repro.core.drivers.runtime import DriverSet
from repro.core.engine import GenerationResult, Splice
from repro.core.params import ModuleParams
from repro.rtl import DEFAULT_KERNEL, kernel_factory
from repro.rtl.module import Module
from repro.rtl.simulator import Simulator, SimulatorStats
from repro.sis.protocol import SISProtocolMonitor, variant_for_bus
from repro.soc.cpu import ProcessorModel


@dataclass
class SpliceSystem:
    """A fully assembled, resettable simulated SoC."""

    simulator: Simulator
    slave: SlaveBundle
    master: BusMaster
    processor: ProcessorModel
    peripheral: Module
    drivers: Optional[DriverSet] = None
    module_params: Optional[ModuleParams] = None
    generation: Optional[GenerationResult] = None
    monitor: Optional[SISProtocolMonitor] = None

    def driver(self, func_name: str):
        """The runtime driver for ``func_name``."""
        if self.drivers is None:
            raise KeyError("this system was built without generated drivers")
        return self.drivers[func_name]

    @property
    def cycles(self) -> int:
        return self.simulator.cycle

    @property
    def stats(self) -> SimulatorStats:
        """Kernel work counters (settle passes, activations, fast-path cycles)."""
        return self.simulator.stats

    def reset(self) -> None:
        self.simulator.reset()

    def run(self, cycles: int) -> None:
        self.simulator.step(cycles)


def build_system(
    source: str,
    *,
    behaviors: Optional[Dict[str, object]] = None,
    calc_latencies: Optional[Dict[str, int]] = None,
    engine: Optional[Splice] = None,
    inter_op_gap: int = 1,
    attach_monitor: bool = True,
    kernel: Optional[str] = None,
    simulator_factory: Optional[Callable[[], Simulator]] = None,
    record_transactions: bool = True,
    leap: bool = True,
) -> SpliceSystem:
    """Build a runnable system from a Splice specification string.

    The simulation kernel is selected either by name (``kernel`` being
    ``"event"``, ``"reference"`` or ``"compiled"`` — see
    :data:`repro.rtl.KERNELS`) or by an explicit ``simulator_factory``
    callable; passing both is an error.  The default is the event-driven
    :class:`~repro.rtl.simulator.Simulator`.  ``leap=False`` disables the
    compiled kernel's cycle-leaping fast path for name-based selection
    (callers passing ``simulator_factory`` configure the kernel themselves).

    ``record_transactions`` controls whether the processor and master retain
    completed :class:`~repro.buses.base.BusTransaction` objects.  Keep it on
    for interactive inspection; switch it off for long campaign runs, where
    per-transaction retention would grow memory without bound (the
    transaction *counters* keep counting either way).
    """
    if simulator_factory is None:
        simulator_factory = kernel_factory(kernel or DEFAULT_KERNEL, leap=leap)
    elif kernel is not None:
        raise ValueError("pass either kernel= or simulator_factory=, not both")
    engine = engine or Splice()
    result = engine.generate(source)
    module = result.module
    bus = result.bus

    simulator = simulator_factory()
    slave, master = create_bus(
        bus.name,
        data_width=module.data_width,
        func_id_width=module.func_id_width,
        base_address=module.base_addr,
        prefix=module.mod_name,
    )
    peripheral = result.elaborate(slave, behaviors=behaviors, calc_latencies=calc_latencies)

    simulator.register_module(master)
    simulator.register_module(peripheral)

    monitor = None
    if attach_monitor:
        monitor = SISProtocolMonitor(
            peripheral.sis, variant=variant_for_bus(bus.pseudo_asynchronous)
        ).attach(simulator)

    master.record_transactions = record_transactions
    processor = ProcessorModel(
        simulator,
        master,
        inter_op_gap=inter_op_gap,
        record_transactions=record_transactions,
    )
    library: SoftwareMacroLibrary = result.macro_library or macro_library_for(bus.name)
    drivers = DriverSet.build(module, library, processor)

    simulator.reset()
    return SpliceSystem(
        simulator=simulator,
        slave=slave,
        master=master,
        processor=processor,
        peripheral=peripheral,
        drivers=drivers,
        module_params=module,
        generation=result,
        monitor=monitor,
    )
