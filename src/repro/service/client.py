"""Stdlib HTTP client for the farm API (used by ``splice submit``).

A thin wrapper over :mod:`http.client` — one short-lived connection per
call, plus a line-buffered NDJSON reader for the streaming events endpoint.
Kept dependency-free so examples and CI scripts can drive a farm with
nothing but the standard library.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection, HTTPException
from typing import Iterator, Mapping, Optional, Union
from urllib.parse import urlparse

from repro.campaign.spec import CampaignSpec


class ServiceError(RuntimeError):
    """A non-2xx response from the farm API."""

    def __init__(self, status: int, payload) -> None:
        message = payload.get("error") if isinstance(payload, dict) else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Client for one farm server, e.g. ``ServiceClient("http://127.0.0.1:8032")``."""

    #: Retry budget for idempotent GETs: extra attempts after the first, and
    #: the first backoff (doubled per retry, capped at 1 s).  POST/DELETE are
    #: never retried — a resend could double-submit or double-cancel.
    GET_RETRIES = 3
    RETRY_BACKOFF_S = 0.05
    #: Consecutive reconnect failures :meth:`events` tolerates before giving
    #: up on the stream (the counter resets on every received event).
    STREAM_RESUMES = 5

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        parsed = urlparse(base_url if "//" in base_url else f"http://{base_url}")
        if parsed.scheme not in ("", "http"):
            raise ValueError(f"only http:// farm URLs are supported, got {base_url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8032
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------------

    def _request_once(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {}
            encoded = None
            if body is not None:
                encoded = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=encoded, headers=headers)
            response = connection.getresponse()
            payload = json.loads(response.read() or b"{}")
            if response.status >= 400:
                raise ServiceError(response.status, payload)
            return payload
        finally:
            connection.close()

    def _request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        """One API call; GETs get bounded exponential-backoff retries.

        Connection-level failures (refused, reset, timeout, truncated
        response) on a GET are transparently retried — GETs against the farm
        are idempotent reads, so a retry can only re-observe.  HTTP error
        *responses* (:class:`ServiceError`) are never retried: the server
        answered, and the answer stands.
        """
        attempts = self.GET_RETRIES if method == "GET" else 0
        delay = self.RETRY_BACKOFF_S
        while True:
            try:
                return self._request_once(method, path, body)
            except (ConnectionError, HTTPException, OSError):
                if attempts <= 0:
                    raise
                attempts -= 1
                time.sleep(delay)
                delay = min(delay * 2, 1.0)

    # -- API ---------------------------------------------------------------------

    def submit(
        self,
        spec: Union[CampaignSpec, Mapping],
        *,
        priority: int = 0,
        timeout_s: Optional[float] = None,
    ) -> dict:
        """POST the spec; returns the job snapshot (``["id"]`` is the handle)."""
        payload = spec.describe() if isinstance(spec, CampaignSpec) else dict(spec)
        return self._request("POST", "/jobs", {
            "spec": payload, "priority": priority, "timeout_s": timeout_s,
        })

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list:
        return self._request("GET", "/jobs")["jobs"]

    def result(self, job_id: str) -> dict:
        """The finished job's CampaignResult payload (spec / cells / meta)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def events(self, job_id: str, *, start: int = 0) -> Iterator[dict]:
        """Stream the job's events as dicts until it reaches a terminal state.

        Each yielded dict is one NDJSON line flushed by the server as the
        event happened.  A dropped connection is resumed transparently from
        the last seen event index (the server's ``?from=N``), so the
        consumer sees every event exactly once even across server restarts
        or mid-stream resets; :attr:`STREAM_RESUMES` consecutive reconnect
        failures abort the stream with the underlying error.
        """
        index = start
        failures = 0
        while True:
            connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
            try:
                connection.request("GET", f"/jobs/{job_id}/events?from={index}")
                response = connection.getresponse()
                if response.status >= 400:
                    raise ServiceError(response.status, json.loads(response.read() or b"{}"))
                for line in response:
                    line = line.strip()
                    if line:
                        failures = 0
                        index += 1
                        yield json.loads(line)
                return  # clean end of stream: the job reached a terminal state
            except (ConnectionError, HTTPException, OSError):
                failures += 1
                if failures > self.STREAM_RESUMES:
                    raise
                time.sleep(min(self.RETRY_BACKOFF_S * (2 ** (failures - 1)), 1.0))
            finally:
                connection.close()

    def wait(self, job_id: str, *, timeout: Optional[float] = None) -> dict:
        """Follow the event stream until the job is terminal; returns the
        final status snapshot.  Falls back to polling if the stream drops."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                for event in self.events(job_id):
                    if deadline is not None and time.monotonic() > deadline:
                        raise TimeoutError(f"job {job_id} still running after {timeout}s")
                # Stream ended: the job is terminal.
                return self.status(job_id)
            except (ConnectionError, OSError):
                status = self.status(job_id)
                if status["state"] in ("done", "failed", "cancelled", "timeout"):
                    return status
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(f"job {job_id} still running after {timeout}s")
                time.sleep(0.05)

    def submit_and_wait(
        self,
        spec: Union[CampaignSpec, Mapping],
        *,
        priority: int = 0,
        timeout_s: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> dict:
        """Submit, wait for a terminal state, and return the final status."""
        job = self.submit(spec, priority=priority, timeout_s=timeout_s)
        return self.wait(job["id"], timeout=timeout)
