"""Stdlib HTTP client for the farm API (used by ``splice submit``).

A thin wrapper over :mod:`http.client` — one short-lived connection per
call, plus a line-buffered NDJSON reader for the streaming events endpoint.
Kept dependency-free so examples and CI scripts can drive a farm with
nothing but the standard library.
"""

from __future__ import annotations

import json
import time
import uuid
from http.client import HTTPConnection, HTTPException
from typing import Iterator, Mapping, Optional, Union
from urllib.parse import urlparse

from repro.campaign.spec import CampaignSpec


class ServiceError(RuntimeError):
    """A non-2xx response from the farm API.

    ``retry_after`` carries the parsed ``Retry-After`` header (seconds) on
    backpressure 503s, ``None`` otherwise — so submitters can back off for
    exactly as long as the server asked.
    """

    def __init__(self, status: int, payload,
                 retry_after: Optional[float] = None) -> None:
        message = payload.get("error") if isinstance(payload, dict) else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


class ServiceClient:
    """Client for one farm server, e.g. ``ServiceClient("http://127.0.0.1:8032")``."""

    #: Retry budget for idempotent requests: extra attempts after the first,
    #: and the first backoff (doubled per retry, capped at 1 s).  GETs are
    #: always idempotent; POSTs are retried only when they carry an
    #: ``Idempotency-Key`` (the server dedupes a resend to the original
    #: job); DELETEs and keyless POSTs are never retried — a blind resend
    #: could double-submit or double-cancel.
    GET_RETRIES = 3
    RETRY_BACKOFF_S = 0.05
    #: Consecutive reconnect failures :meth:`events` tolerates before giving
    #: up on the stream (the counter resets on every received event).
    STREAM_RESUMES = 5

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        parsed = urlparse(base_url if "//" in base_url else f"http://{base_url}")
        if parsed.scheme not in ("", "http"):
            raise ValueError(f"only http:// farm URLs are supported, got {base_url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8032
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------------

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> dict:
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            send_headers = dict(headers or {})
            encoded = None
            if body is not None:
                encoded = json.dumps(body).encode()
                send_headers["Content-Type"] = "application/json"
            connection.request(method, path, body=encoded, headers=send_headers)
            response = connection.getresponse()
            payload = json.loads(response.read() or b"{}")
            if response.status >= 400:
                retry_after_raw = response.getheader("Retry-After")
                try:
                    retry_after = (None if retry_after_raw is None
                                   else float(retry_after_raw))
                except ValueError:
                    retry_after = None
                raise ServiceError(response.status, payload,
                                   retry_after=retry_after)
            return payload
        finally:
            connection.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Mapping[str, str]] = None,
        *,
        retries: Optional[int] = None,
    ) -> dict:
        """One API call with bounded exponential-backoff retries.

        Connection-level failures (refused, reset, timeout, truncated
        response) are transparently retried up to ``retries`` times —
        defaulting to :attr:`GET_RETRIES` for GETs and 0 for everything
        else.  :meth:`submit` passes an explicit budget for POSTs that
        carry an ``Idempotency-Key``, which makes the resend safe: the
        server answers a duplicate key with the original job.  HTTP error
        *responses* (:class:`ServiceError`) are never retried: the server
        answered, and the answer stands.
        """
        attempts = (self.GET_RETRIES if method == "GET" else 0) \
            if retries is None else retries
        delay = self.RETRY_BACKOFF_S
        while True:
            try:
                return self._request_once(method, path, body, headers)
            except (ConnectionError, HTTPException, OSError):
                if attempts <= 0:
                    raise
                attempts -= 1
                time.sleep(delay)
                delay = min(delay * 2, 1.0)

    # -- API ---------------------------------------------------------------------

    def _post_job(self, body: dict, idempotency_key: Optional[str]) -> dict:
        """POST /jobs with a client-generated idempotency key.

        The key makes the POST safe to retry on connection failures — a
        resend of the same key returns the original job instead of
        enqueuing a duplicate — so submissions get the same retry budget
        as reads.  Pass ``idempotency_key`` explicitly to dedupe across
        client instances (e.g. a cron that re-runs after its host crashed).
        """
        key = idempotency_key or uuid.uuid4().hex
        return self._request(
            "POST", "/jobs", body,
            headers={"Idempotency-Key": key},
            retries=self.GET_RETRIES,
        )

    def submit(
        self,
        spec: Union[CampaignSpec, Mapping],
        *,
        priority: int = 0,
        timeout_s: Optional[float] = None,
        idempotency_key: Optional[str] = None,
    ) -> dict:
        """POST the spec; returns the job snapshot (``["id"]`` is the handle)."""
        payload = spec.describe() if isinstance(spec, CampaignSpec) else dict(spec)
        return self._post_job({
            "spec": payload, "priority": priority, "timeout_s": timeout_s,
        }, idempotency_key)

    def submit_fuzz(
        self,
        *,
        seed_start: int = 0,
        sessions: int = 1,
        budget: int = 50,
        profile: str = "quick",
        with_faults: bool = False,
        case_timeout_s: float = 10.0,
        name: str = "fuzz",
        priority: int = 0,
        timeout_s: Optional[float] = None,
        idempotency_key: Optional[str] = None,
    ) -> dict:
        """Submit a sharded fuzz job (one deterministic session per seed)."""
        return self._post_job({
            "fuzz": {
                "seed_start": seed_start,
                "sessions": sessions,
                "budget": budget,
                "profile": profile,
                "with_faults": with_faults,
                "case_timeout_s": case_timeout_s,
                "name": name,
            },
            "priority": priority,
            "timeout_s": timeout_s,
        }, idempotency_key)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list:
        return self._request("GET", "/jobs")["jobs"]

    def result(self, job_id: str) -> dict:
        """The finished job's CampaignResult payload (spec / cells / meta)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def events(self, job_id: str, *, start: int = 0) -> Iterator[dict]:
        """Stream the job's events as dicts until it reaches a terminal state.

        Each yielded dict is one NDJSON line flushed by the server as the
        event happened.  A dropped connection is resumed transparently from
        the last seen event index (the server's ``?from=N``), so the
        consumer sees every event exactly once even across server restarts
        or mid-stream resets; :attr:`STREAM_RESUMES` consecutive reconnect
        failures abort the stream with the underlying error.
        """
        index = start
        failures = 0
        while True:
            connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
            try:
                connection.request("GET", f"/jobs/{job_id}/events?from={index}")
                response = connection.getresponse()
                if response.status >= 400:
                    raise ServiceError(response.status, json.loads(response.read() or b"{}"))
                for line in response:
                    line = line.strip()
                    if line:
                        failures = 0
                        index += 1
                        yield json.loads(line)
                return  # clean end of stream: the job reached a terminal state
            except (ConnectionError, HTTPException, OSError):
                failures += 1
                if failures > self.STREAM_RESUMES:
                    raise
                time.sleep(min(self.RETRY_BACKOFF_S * (2 ** (failures - 1)), 1.0))
            finally:
                connection.close()

    def wait(self, job_id: str, *, timeout: Optional[float] = None) -> dict:
        """Follow the event stream until the job is terminal; returns the
        final status snapshot.  Falls back to polling if the stream drops."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                for event in self.events(job_id):
                    if deadline is not None and time.monotonic() > deadline:
                        raise TimeoutError(f"job {job_id} still running after {timeout}s")
                # Stream ended: the job is terminal.
                return self.status(job_id)
            except (ConnectionError, OSError):
                status = self.status(job_id)
                if status["state"] in ("done", "failed", "cancelled", "timeout"):
                    return status
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(f"job {job_id} still running after {timeout}s")
                time.sleep(0.05)

    def submit_and_wait(
        self,
        spec: Union[CampaignSpec, Mapping],
        *,
        priority: int = 0,
        timeout_s: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> dict:
        """Submit, wait for a terminal state, and return the final status."""
        job = self.submit(spec, priority=priority, timeout_s=timeout_s)
        return self.wait(job["id"], timeout=timeout)
