"""Stdlib HTTP client for the farm API (used by ``splice submit``).

A thin wrapper over :mod:`http.client` — one short-lived connection per
call, plus a line-buffered NDJSON reader for the streaming events endpoint.
Kept dependency-free so examples and CI scripts can drive a farm with
nothing but the standard library.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Iterator, Mapping, Optional, Union
from urllib.parse import urlparse

from repro.campaign.spec import CampaignSpec


class ServiceError(RuntimeError):
    """A non-2xx response from the farm API."""

    def __init__(self, status: int, payload) -> None:
        message = payload.get("error") if isinstance(payload, dict) else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Client for one farm server, e.g. ``ServiceClient("http://127.0.0.1:8032")``."""

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        parsed = urlparse(base_url if "//" in base_url else f"http://{base_url}")
        if parsed.scheme not in ("", "http"):
            raise ValueError(f"only http:// farm URLs are supported, got {base_url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8032
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------------

    def _request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {}
            encoded = None
            if body is not None:
                encoded = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=encoded, headers=headers)
            response = connection.getresponse()
            payload = json.loads(response.read() or b"{}")
            if response.status >= 400:
                raise ServiceError(response.status, payload)
            return payload
        finally:
            connection.close()

    # -- API ---------------------------------------------------------------------

    def submit(
        self,
        spec: Union[CampaignSpec, Mapping],
        *,
        priority: int = 0,
        timeout_s: Optional[float] = None,
    ) -> dict:
        """POST the spec; returns the job snapshot (``["id"]`` is the handle)."""
        payload = spec.describe() if isinstance(spec, CampaignSpec) else dict(spec)
        return self._request("POST", "/jobs", {
            "spec": payload, "priority": priority, "timeout_s": timeout_s,
        })

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list:
        return self._request("GET", "/jobs")["jobs"]

    def result(self, job_id: str) -> dict:
        """The finished job's CampaignResult payload (spec / cells / meta)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def events(self, job_id: str, *, start: int = 0) -> Iterator[dict]:
        """Stream the job's events as dicts until it reaches a terminal state.

        The connection stays open for the job's whole lifetime; each yielded
        dict is one NDJSON line flushed by the server as the event happened.
        """
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request("GET", f"/jobs/{job_id}/events?from={start}")
            response = connection.getresponse()
            if response.status >= 400:
                raise ServiceError(response.status, json.loads(response.read() or b"{}"))
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()

    def wait(self, job_id: str, *, timeout: Optional[float] = None) -> dict:
        """Follow the event stream until the job is terminal; returns the
        final status snapshot.  Falls back to polling if the stream drops."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                for event in self.events(job_id):
                    if deadline is not None and time.monotonic() > deadline:
                        raise TimeoutError(f"job {job_id} still running after {timeout}s")
                # Stream ended: the job is terminal.
                return self.status(job_id)
            except (ConnectionError, OSError):
                status = self.status(job_id)
                if status["state"] in ("done", "failed", "cancelled", "timeout"):
                    return status
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(f"job {job_id} still running after {timeout}s")
                time.sleep(0.05)

    def submit_and_wait(
        self,
        spec: Union[CampaignSpec, Mapping],
        *,
        priority: int = 0,
        timeout_s: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> dict:
        """Submit, wait for a terminal state, and return the final status."""
        job = self.submit(spec, priority=priority, timeout_s=timeout_s)
        return self.wait(job["id"], timeout=timeout)
