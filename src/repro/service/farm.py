"""The simulation farm: warm workers + priority queue + shared result cache.

:class:`SimulationFarm` is the long-lived core the HTTP API and the CLI
front ends drive.  One farm owns:

* a pool of persistent worker processes (:mod:`repro.service.worker`) that
  keep built runners and compiled programs resident across jobs,
* a :class:`~repro.service.jobs.JobQueue` ordering jobs by priority with
  FIFO fairness within a priority,
* a shared content-addressed :class:`~repro.campaign.cache.ResultCache` in
  front of the queue — cells whose digest is already cached are answered at
  submit time without touching a worker, so a repeat submission of an
  identical spec is a pure cache read (hit rate 1.0, no queueing),
* optionally, a **state directory** holding a durable
  :class:`~repro.service.journal.JobJournal` (plus the persistent cache and
  the fuzz corpus): every job transition is journaled write-ahead, so a
  SIGKILL of the server loses nothing — on restart the farm replays the
  journal, re-enqueues every non-terminal job at its original priority, and
  resumes each from its completed work (campaign cells answered from the
  cache, fuzz sessions restored from the journal), bit-identical to an
  uninterrupted run, and
* a single dispatcher thread that pumps worker results, persists fresh
  outcomes into the cache, enforces per-job timeouts, watches for
  heartbeat-silent (stuck) workers, respawns dead workers (retrying their
  in-flight shard once, then failing those cells with structured error
  records), and feeds idle workers the next shard.

Two job kinds share all of that machinery: campaign grids (shards of
cells) and fuzz jobs (shards of deterministic ``(seed, budget)`` sessions,
findings streamed as they land and auto-appended to the server-side
corpus).  Backpressure is a bounded count of active jobs — saturated
submissions raise :class:`FarmSaturated`, which the HTTP layer maps to
``503`` + ``Retry-After``.

Everything observable — job state, per-cell progress, worker stats — is
mutated under one condition lock and published through job event logs, so
any number of watchers (HTTP streamers, ``Job.wait``) follow along without
polling the workers.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as stdlib_queue
import shutil
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.campaign.cache import ResultCache, cell_digest
from repro.campaign.executor import CellError
from repro.campaign.spec import CampaignSpec
from repro.service.jobs import (
    CAMPAIGN,
    CANCELLED,
    DONE,
    FAILED,
    FUZZ,
    QUEUED,
    RUNNING,
    TIMEOUT,
    FuzzJobSpec,
    Job,
    JobQueue,
    Shard,
)
from repro.service.journal import (
    JOURNAL_FILENAME,
    JobJournal,
    JournaledJob,
    append_jsonl,
    replay_journal,
)
from repro.service.worker import spawn_worker

#: Default number of cells per dispatched shard.  Small enough that
#: cancellation latency (one shard boundary) stays low and several workers
#: share one medium grid; large enough that the per-shard queue round trip
#: amortises.
DEFAULT_SHARD_SIZE = 4

#: Default stuck-worker watchdog threshold.  Distinct from the per-job
#: timeout: this bounds *silence* (no message from a busy worker), not total
#: job runtime.  Generous by default — cells and fuzz cases report at least
#: every second or two in practice, so minutes of silence means wedged.
DEFAULT_STUCK_TIMEOUT_S = 300.0

#: Retry-After seconds suggested to clients bounced by backpressure.
DEFAULT_RETRY_AFTER_S = 1.0


class FarmSaturated(RuntimeError):
    """Submission rejected by backpressure (active-job bound reached).

    Carries ``retry_after_s`` so the HTTP layer can answer ``503`` with a
    concrete ``Retry-After`` header instead of a bare error.
    """

    def __init__(self, message: str, retry_after_s: float = DEFAULT_RETRY_AFTER_S):
        super().__init__(message)
        self.retry_after_s = retry_after_s


def resolve_workers(workers: int) -> int:
    """``0`` (the ``--workers auto`` spelling) → ``os.cpu_count()``.

    The same rule :func:`repro.campaign.executor.make_executor` applies, so
    "auto" means the identical thing on the batch and service paths.
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = auto), got {workers}")
    return workers if workers > 0 else (os.cpu_count() or 1)


class SimulationFarm:
    """A long-lived pool of warm simulation workers behind a job queue."""

    def __init__(
        self,
        workers: int = 0,
        *,
        cache: Union[ResultCache, Path, str, None] = None,
        preload: Sequence = (),
        shard_size: int = DEFAULT_SHARD_SIZE,
        poll_interval_s: float = 0.02,
        name: str = "splice-farm",
        state_dir: Union[Path, str, None] = None,
        queue_limit: Optional[int] = None,
        stuck_timeout_s: Optional[float] = DEFAULT_STUCK_TIMEOUT_S,
        corpus_dir: Union[Path, str, None] = None,
        history_path: Union[Path, str, None] = None,
        journal_fsync: bool = True,
    ) -> None:
        self.name = name
        self.worker_count = resolve_workers(workers)
        self.shard_size = max(1, shard_size)
        self.preload = tuple(preload)
        self._poll_interval_s = poll_interval_s
        self.queue_limit = queue_limit
        self.stuck_timeout_s = stuck_timeout_s

        # Durability: with a state dir, the journal (and, unless overridden,
        # the result cache and fuzz corpus) live inside it, so a restart on
        # the same directory sees everything a previous incarnation did.
        self.state_dir: Optional[Path] = None
        self._journal: Optional[JobJournal] = None
        if state_dir is not None:
            self.state_dir = Path(state_dir)
            self.state_dir.mkdir(parents=True, exist_ok=True)
            self._journal = JobJournal(
                self.state_dir / JOURNAL_FILENAME, fsync=journal_fsync
            )
            if cache is None:
                cache = self.state_dir / "cache"
            if corpus_dir is None:
                corpus_dir = self.state_dir / "corpus"
        self.corpus_dir = None if corpus_dir is None else Path(corpus_dir)
        self.history_path = None if history_path is None else Path(history_path)

        # Without an explicit cache directory the farm still runs one — an
        # ephemeral per-instance directory — because the cache is what makes
        # serving cheap: repeat submissions short-circuit, and the compiled
        # program cache under it is what keeps workers warm across respawns.
        self._ephemeral_cache_dir: Optional[str] = None
        if cache is None:
            self._ephemeral_cache_dir = tempfile.mkdtemp(prefix="splice-farm-cache-")
            cache = ResultCache(self._ephemeral_cache_dir)
        elif isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        self.cache = cache

        self._cond = threading.Condition()
        self._jobs: Dict[str, Job] = {}
        self._queue = JobQueue()
        self._workers: List[WorkerHandle] = []
        self._idempotency: Dict[str, str] = {}
        self._job_seq = 0
        self._running = False
        self._draining = False
        self._started_at: Optional[float] = None
        self._ctx = multiprocessing.get_context()
        self._result_queue = None
        self._dispatcher: Optional[threading.Thread] = None
        self.counters = {
            "cells_total": 0,
            "cells_cached": 0,
            "cells_executed": 0,
            "cells_failed": 0,
            "cells_discarded": 0,
            "sessions_total": 0,
            "sessions_executed": 0,
            "sessions_recovered": 0,
            "sessions_failed": 0,
            "findings": 0,
            "workers_respawned": 0,
            "workers_stuck_killed": 0,
            "shards_dispatched": 0,
            "shards_retried": 0,
            "jobs_recovered": 0,
            "jobs_rejected": 0,
        }

    @property
    def lock(self) -> threading.Condition:
        """The farm-wide condition lock; hold it to read job state coherently."""
        return self._cond

    @property
    def running(self) -> bool:
        return self._running

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "SimulationFarm":
        if self._running:
            return self
        self._result_queue = self._ctx.Queue()
        self._workers = [
            spawn_worker(self._ctx, worker_id, self._result_queue,
                         self.cache.program_cache_dir, self.preload)
            for worker_id in range(self.worker_count)
        ]
        self._running = True
        self._started_at = time.perf_counter()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name=f"{self.name}-dispatcher", daemon=True
        )
        self._dispatcher.start()
        if self._journal is not None:
            self._recover()
        return self

    def stop(self) -> None:
        if not self._running:
            return
        with self._cond:
            self._running = False
            # Unblock every waiter/streamer: whatever was still pending is
            # cancelled, terminally, before the machinery goes away.  These
            # forced cancellations are deliberately NOT journaled: on a
            # durable farm, "stopped while jobs were pending" is exactly the
            # state a restart on the same --state-dir must resume from.
            for job in self._jobs.values():
                if not job.is_terminal:
                    job.pending_shards.clear()
                    job.enter_state(CANCELLED, reason="farm stopped")
        self._result_queue.put(("wake",))
        self._dispatcher.join(timeout=10)
        for handle in self._workers:
            try:
                handle.task_queue.put(None)
            except (ValueError, OSError):
                pass
        for handle in self._workers:
            handle.process.join(timeout=5)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2)
            handle.task_queue.close()
            handle.task_queue.cancel_join_thread()
        self._result_queue.close()
        self._result_queue.cancel_join_thread()
        if self._journal is not None:
            self._journal.close()
        if self._ephemeral_cache_dir is not None:
            shutil.rmtree(self._ephemeral_cache_dir, ignore_errors=True)

    def __enter__(self) -> "SimulationFarm":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- submission / control ----------------------------------------------------

    def submit(
        self,
        spec: Union[CampaignSpec, Mapping],
        *,
        priority: int = 0,
        timeout_s: Optional[float] = None,
        idempotency_key: Optional[str] = None,
    ) -> Job:
        """Queue a campaign spec; returns the live :class:`Job`.

        Cells already present in the shared result cache are satisfied here,
        synchronously — a fully-cached submission completes without ever
        touching the queue or a worker.  A repeated ``idempotency_key``
        returns the original job instead of enqueuing a duplicate (the key
        is journaled, so the dedupe survives a server restart for every job
        that does).
        """
        self._check_accepting()
        if not isinstance(spec, CampaignSpec):
            spec = CampaignSpec.from_dict(dict(spec))

        # Cache lookups happen outside the lock: digesting a cell hashes its
        # generated inputs, which is pure CPU and must not serialise
        # concurrent submissions more than the GIL already does.
        cached = {}
        for cell in spec.cells():
            outcome = self.cache.get(cell)
            if outcome is not None:
                cached[cell.key] = outcome

        with self._cond:
            existing = self._idempotent(idempotency_key)
            if existing is not None:
                return existing
            self._check_saturation()
            self._job_seq += 1
            job = Job(
                f"j{self._job_seq:06d}", spec,
                priority=priority, timeout_s=timeout_s, cond=self._cond,
            )
            self._register_key(job, idempotency_key)
            self._journal_append(
                "submitted", job=job.id, kind=CAMPAIGN, priority=priority,
                timeout_s=timeout_s, spec=spec.describe(),
                idempotency_key=idempotency_key,
            )
            self._admit_campaign(job, cached)
        self._journal_sync()
        self._result_queue.put(("wake",))
        return job

    def submit_fuzz(
        self,
        spec: Union[FuzzJobSpec, Mapping],
        *,
        priority: int = 0,
        timeout_s: Optional[float] = None,
        idempotency_key: Optional[str] = None,
    ) -> Job:
        """Queue a fuzz job: one deterministic session per seed in the range.

        Each session becomes its own shard, so a job's seed range spreads
        across every idle warm worker; findings stream into the job's event
        log (and the server-side corpus) as workers shrink them.
        """
        self._check_accepting()
        if not isinstance(spec, FuzzJobSpec):
            spec = FuzzJobSpec.from_dict(dict(spec))
        with self._cond:
            existing = self._idempotent(idempotency_key)
            if existing is not None:
                return existing
            self._check_saturation()
            self._job_seq += 1
            job = Job(
                f"j{self._job_seq:06d}", spec, kind=FUZZ,
                priority=priority, timeout_s=timeout_s, cond=self._cond,
            )
            self._register_key(job, idempotency_key)
            self._journal_append(
                "submitted", job=job.id, kind=FUZZ, priority=priority,
                timeout_s=timeout_s, fuzz=spec.describe(),
                idempotency_key=idempotency_key,
            )
            self._admit_fuzz(job, restored={})
        self._journal_sync()
        self._result_queue.put(("wake",))
        return job

    def _check_accepting(self) -> None:
        if not self._running:
            raise RuntimeError("farm is not running (call start() first)")
        if self._draining:
            raise RuntimeError("farm is draining and not accepting new jobs")

    def _idempotent(self, key: Optional[str]) -> Optional[Job]:
        """Lock held: the already-submitted job for ``key``, if any."""
        if key is None:
            return None
        job_id = self._idempotency.get(key)
        return None if job_id is None else self._jobs.get(job_id)

    def _register_key(self, job: Job, key: Optional[str]) -> None:
        if key is not None:
            job.idempotency_key = key
            self._idempotency[key] = job.id

    def _check_saturation(self) -> None:
        """Lock held: enforce the bounded active-job depth."""
        if self.queue_limit is None:
            return
        active = sum(1 for j in self._jobs.values() if not j.is_terminal)
        if active >= self.queue_limit:
            self.counters["jobs_rejected"] += 1
            raise FarmSaturated(
                f"farm saturated: {active} active jobs (limit {self.queue_limit})"
            )

    def _journal_append(self, type_: str, **fields) -> None:
        # Buffered write only — the farm lock is held at every call site,
        # and an fsync under it would serialise the whole farm behind disk
        # latency.  Callers invoke _journal_sync() (group commit) after
        # releasing the lock, before the transition is acknowledged.
        if self._journal is not None:
            self._journal.write(type_, **fields)

    def _journal_sync(self) -> None:
        if self._journal is not None:
            self._journal.sync()

    def _journal_terminal(self, job: Job) -> None:
        """Record a terminal transition durably (and the fuzz trajectory)."""
        self._journal_append("finished", job=job.id, state=job.state)
        if job.kind == FUZZ and job.state == DONE and self.history_path is not None:
            try:
                payload = job.fuzz_result()
                append_jsonl(self.history_path, {
                    "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
                    "bench": "fuzz_farm",
                    "mode": "service",
                    "headline": {
                        "job": job.id,
                        "seed_start": job.spec.seed_start,
                        "sessions": job.spec.sessions,
                        "budget": job.spec.budget,
                        "profile": job.spec.profile,
                        "with_faults": job.spec.with_faults,
                        "executed": payload["executed"],
                        "findings": len(payload["counterexamples"]),
                        "coverage_cells": len(payload["coverage"]),
                        "coverage": payload["coverage"],
                    },
                })
            except Exception:
                # The trajectory file is observability, never worth failing
                # a finished job over (e.g. read-only checkout).
                pass

    def _admit_campaign(self, job: Job, cached: dict) -> None:
        """Lock held: register, answer cached cells, shard the rest."""
        self._jobs[job.id] = job
        job.cached = cached
        pending = [cell for cell in sorted(job.cells, key=lambda c: c.key)
                   if cell.key not in cached]
        self.counters["cells_total"] += len(job.cells)
        self.counters["cells_cached"] += len(cached)
        extra = {"recovered": True} if job.recovered else {}
        job.emit(
            "submitted",
            name=job.spec.name,
            kind=CAMPAIGN,
            priority=job.priority,
            timeout_s=job.timeout_s,
            cells_total=len(job.cells),
            cells_cached=len(cached),
            **extra,
        )
        if cached:
            job.emit("cached", cells=len(cached))
        if not pending:
            job.enter_state(DONE, cells_cached=len(cached))
            self._journal_terminal(job)
            return
        for shard_id, start in enumerate(range(0, len(pending), self.shard_size)):
            job.pending_shards.append(
                Shard(job.id, shard_id, pending[start:start + self.shard_size])
            )
        self._queue.push(job)

    def _admit_fuzz(self, job: Job, restored: Dict[int, dict]) -> None:
        """Lock held: register a fuzz job; one shard per not-yet-run seed."""
        self._jobs[job.id] = job
        for seed, payload in restored.items():
            if seed in set(job.cells):
                job.fresh[seed] = payload
        self.counters["sessions_total"] += len(job.cells)
        self.counters["sessions_recovered"] += len(job.fresh)
        extra = {"recovered": True} if job.recovered else {}
        job.emit(
            "submitted",
            name=job.spec.name,
            kind=FUZZ,
            priority=job.priority,
            timeout_s=job.timeout_s,
            seed_start=job.spec.seed_start,
            sessions=job.spec.sessions,
            budget=job.spec.budget,
            profile=job.spec.profile,
            with_faults=job.spec.with_faults,
            sessions_done=len(job.fresh),
            **extra,
        )
        pending = [seed for seed in job.cells if seed not in job.fresh]
        if not pending:
            job.enter_state(DONE, sessions=len(job.fresh))
            self._journal_terminal(job)
            return
        for shard_id, seed in enumerate(pending):
            job.pending_shards.append(Shard(job.id, shard_id, [seed]))
        self._queue.push(job)

    # -- recovery ----------------------------------------------------------------

    def _recover(self) -> None:
        """Replay the journal: re-enqueue every non-terminal job.

        Campaign jobs resume through the shared result cache — every cell a
        previous incarnation completed was persisted there before its
        ``shard_done`` record, so re-admission answers those cells at
        submit time and only the remainder is re-sharded.  Fuzz jobs resume
        from the journaled session payloads (the deterministic record of
        each completed seed).  Job ids, priorities and idempotency keys are
        preserved; the journal is compacted so repeated crash/restart
        cycles do not grow it.
        """
        replay = replay_journal(self._journal.path)
        self._job_seq = max(self._job_seq, replay.seq)
        live = replay.live_jobs()
        self._journal.compact(replay.compaction_records())
        for record in live:
            try:
                self._readmit(record)
                self.counters["jobs_recovered"] += 1
            except Exception:
                # A job whose spec no longer parses (code changed across
                # the restart) must not prevent the farm from serving; its
                # cells were never promised beyond the journal.
                continue
        if live:
            self._result_queue.put(("wake",))

    def _readmit(self, record: JournaledJob) -> None:
        if record.kind == FUZZ:
            spec = FuzzJobSpec.from_dict(dict(record.payload))
            with self._cond:
                job = Job(record.job_id, spec, kind=FUZZ,
                          priority=record.priority, timeout_s=record.timeout_s,
                          cond=self._cond)
                job.recovered = True
                self._register_key(job, record.idempotency_key)
                self._admit_fuzz(job, restored=record.sessions)
            return
        spec = CampaignSpec.from_dict(dict(record.payload))
        cached = {}
        for cell in spec.cells():
            outcome = self.cache.get(cell)
            if outcome is not None:
                cached[cell.key] = outcome
        with self._cond:
            job = Job(record.job_id, spec,
                      priority=record.priority, timeout_s=record.timeout_s,
                      cond=self._cond)
            job.recovered = True
            self._register_key(job, record.idempotency_key)
            self._admit_campaign(job, cached)

    # -- control -----------------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def job_for_key(self, idempotency_key: str) -> Optional[Job]:
        """The job a previous submission with this key created, if any."""
        with self._cond:
            return self._idempotent(idempotency_key)

    def jobs(self) -> List[Job]:
        return list(self._jobs.values())

    def cancel(self, job_id: str) -> bool:
        """Cancel a job.  Queued jobs drop instantly; a running job stops at
        the next shard boundary (its in-flight shard results are discarded).
        Returns False if the job is unknown or already terminal."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None or job.is_terminal:
                return False
            job.pending_shards.clear()
            self._journal_append("cancelled", job=job.id)
            job.enter_state(CANCELLED, shards_in_flight=len(job.in_flight))
        self._journal_sync()
        return True

    def drain(self, timeout_s: Optional[float] = None) -> dict:
        """Graceful shutdown, phase one: stop accepting, let work finish.

        New submissions are rejected immediately (the HTTP layer maps the
        ``RuntimeError`` to a 503), but every already-accepted job keeps
        dispatching and running to completion.  Blocks until all jobs are
        terminal or ``timeout_s`` elapses; jobs still unfinished at the
        deadline are cancelled with a terminal ``drain timeout`` event so no
        watcher is left hanging.  Call :meth:`stop` afterwards to tear the
        workers down.
        """
        deadline = None if timeout_s is None else time.perf_counter() + timeout_s
        with self._cond:
            self._draining = True

            def active() -> List[Job]:
                return [j for j in self._jobs.values() if not j.is_terminal]

            while active() and self._running:
                remaining = (None if deadline is None
                             else deadline - time.perf_counter())
                if remaining is not None and remaining <= 0:
                    break
                # Job state changes notify the shared condition, so this
                # wakes at every cell/shard/terminal event; the cap only
                # bounds staleness if a notification is missed.
                self._cond.wait(timeout=0.1 if remaining is None else min(0.1, remaining))
            leftovers = active()
            for job in leftovers:
                job.pending_shards.clear()
                job.enter_state(CANCELLED, reason="drain timeout",
                                cells_done=job.cells_done)
            return {
                "drained": not leftovers,
                "cancelled": [job.id for job in leftovers],
            }

    def kill_worker(self, worker_id: Optional[int] = None) -> Optional[int]:
        """Chaos hook: SIGKILL one worker process (a busy one if any).

        Returns the killed worker id, or ``None`` if no live worker matched.
        The dispatcher's normal crash policy takes over from there: the dead
        worker is respawned, its in-flight shard is retried once, and a
        second death yields structured ``worker_crash`` cell errors — the
        exact path real OOM kills and segfaults exercise, made injectable
        for the chaos bench and the service smoke tests.
        """
        with self._cond:
            candidates = [w for w in self._workers if w.process.is_alive()]
            if worker_id is not None:
                candidates = [w for w in candidates if w.worker_id == worker_id]
            if not candidates:
                return None
            busy = [w for w in candidates if w.busy is not None]
            target = (busy or candidates)[0]
            target.process.kill()
            return target.worker_id

    # -- dispatcher --------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            try:
                message = self._result_queue.get(timeout=self._poll_interval_s)
            except stdlib_queue.Empty:
                message = None
            except (EOFError, OSError):
                return
            with self._cond:
                if not self._running:
                    return
                if message is not None:
                    self._handle(message)
                while True:  # drain whatever else already arrived
                    try:
                        self._handle(self._result_queue.get_nowait())
                    except stdlib_queue.Empty:
                        break
                self._check_timeouts()
                self._check_stuck()
                self._check_workers()
                self._dispatch_ready()
            self._journal_sync()

    def _handle(self, message) -> None:
        kind = message[0]
        if kind == "wake":
            return
        # Every worker→parent message carries the worker id at index 1;
        # any message is proof of life for the stuck-worker watchdog.
        worker_id = message[1]
        if 0 <= worker_id < len(self._workers):
            self._workers[worker_id].last_message_at = time.perf_counter()
        if kind == "heartbeat":
            return
        if kind == "ready":
            _, worker_id, stats = message
            handle = self._workers[worker_id]
            handle.ready = True
            handle.stats = stats
            return
        if kind == "cell":
            _, worker_id, job_id, shard_id, key, outcome = message
            job = self._jobs.get(job_id)
            if job is None or job.is_terminal:
                self.counters["cells_discarded"] += 1
                return
            job.fresh[key] = outcome
            self.counters["cells_executed"] += 1
            cell = job.by_key[key]
            self.cache.put(cell, outcome)
            extra = {} if cell.faults is None else {"faults": cell.faults}
            job.emit(
                "cell",
                label=cell.label,
                scenario=cell.scenario.number,
                seed=cell.seed,
                repeat=cell.repeat,
                kernel=cell.kernel,
                **extra,
                result=outcome[0],
                cycles=outcome[1],
                transactions=outcome[2],
                worker=worker_id,
                done=job.cells_done,
                total=len(job.cells),
            )
            return
        if kind == "cell_error":
            _, worker_id, job_id, shard_id, key, text = message
            job = self._jobs.get(job_id)
            if job is None or job.is_terminal:
                self.counters["cells_discarded"] += 1
                return
            job.errors[key] = CellError(kind="cell_exception", message=text)
            self.counters["cells_failed"] += 1
            cell = job.by_key[key]
            extra = {} if cell.faults is None else {"faults": cell.faults}
            job.emit(
                "cell_error",
                label=cell.label,
                scenario=cell.scenario.number,
                seed=cell.seed,
                repeat=cell.repeat,
                **extra,
                error=text,
                worker=worker_id,
                done=job.cells_done,
                total=len(job.cells),
            )
            return
        if kind == "finding":
            _, worker_id, job_id, shard_id, record = message
            job = self._jobs.get(job_id)
            if job is None or job.is_terminal:
                return
            self.counters["findings"] += 1
            verdict = record.get("verdict", {}) if isinstance(record, dict) else {}
            job.emit(
                "finding",
                kind=record.get("kind"),
                token=record.get("token"),
                kernel=verdict.get("kernel"),
                detail=verdict.get("detail"),
                worker=worker_id,
                shard=shard_id,
            )
            self._save_finding(record)
            return
        if kind == "fuzz_error":
            _, worker_id, job_id, shard_id, seed, text = message
            self._finish_worker_shard(worker_id, job_id, shard_id)
            job = self._jobs.get(job_id)
            if job is None or job.is_terminal:
                return
            job.errors[seed] = CellError(kind="fuzz_error", message=text)
            self.counters["sessions_failed"] += 1
            job.emit("session_error", seed=seed, error=text, worker=worker_id,
                     done=job.cells_done, total=len(job.cells))
            self._maybe_finalize(job)
            return
        if kind == "fuzz_done":
            _, worker_id, job_id, shard_id, payload, duration_s, stats = message
            self._workers[worker_id].stats = stats
            self._finish_worker_shard(worker_id, job_id, shard_id)
            job = self._jobs.get(job_id)
            if job is None or job.is_terminal:
                return
            seed = payload["seed"]
            job.fresh[seed] = payload
            self.counters["sessions_executed"] += 1
            self._journal_append("shard_done", job=job_id, shard=shard_id,
                                 seed=seed, session=payload)
            job.emit(
                "session",
                seed=seed,
                executed=payload["executed"],
                rounds=payload["rounds"],
                findings=len(payload["counterexamples"]),
                coverage=len(payload["coverage"]),
                duration_s=duration_s,
                worker=worker_id,
                done=job.cells_done,
                total=len(job.cells),
            )
            self._maybe_finalize(job)
            return
        if kind == "shard_done":
            _, worker_id, job_id, shard_id, stats = message
            self._workers[worker_id].stats = stats
            job = self._jobs.get(job_id)
            if (self._journal is not None and job is not None
                    and job.kind == CAMPAIGN):
                shard = job.in_flight.get(shard_id)
                if shard is not None:
                    # Digests only: the outcomes were already persisted to
                    # the shared ResultCache per cell, so recovery answers
                    # this shard from the cache; the record documents which
                    # cells are durably done (and is cheap — cell_digest is
                    # memoised from the submit-time cache lookup).
                    self._journal_append(
                        "shard_done", job=job_id, shard=shard_id,
                        cells=[cell_digest(c) for c in shard.cells],
                    )
            self._finish_worker_shard(worker_id, job_id, shard_id)
            if job is not None and not job.is_terminal:
                self._maybe_finalize(job)

    def _finish_worker_shard(self, worker_id: int, job_id: str, shard_id: int) -> None:
        """Lock held: clear the worker's busy slot and the job's in-flight."""
        handle = self._workers[worker_id]
        shard = handle.busy
        handle.busy = None
        if shard is not None and shard.dispatched_at is not None:
            handle.busy_s += time.perf_counter() - shard.dispatched_at
        job = self._jobs.get(job_id)
        if job is not None:
            job.in_flight.pop(shard_id, None)

    def _save_finding(self, record) -> None:
        """Append one streamed counterexample to the server-side corpus."""
        if self.corpus_dir is None or not isinstance(record, dict):
            return
        try:
            from repro.fuzz.corpus import Counterexample, save_case

            save_case(Counterexample.from_dict(record), self.corpus_dir)
        except Exception:
            # Corpus growth is best-effort; a malformed record or full disk
            # must not take the dispatcher down.
            pass

    def _maybe_finalize(self, job: Job) -> None:
        """Lock held: finish the job once every cell is accounted for."""
        if job.pending_shards or job.in_flight:
            return
        if job.cells_done < len(job.cells):
            return
        if job.errors:
            job.enter_state(FAILED, cells_failed=len(job.errors))
        else:
            job.enter_state(DONE, cells_executed=len(job.fresh),
                            cells_cached=len(job.cached))
        self._journal_terminal(job)

    def _check_timeouts(self) -> None:
        now = time.perf_counter()
        for job in self._jobs.values():
            if job.is_terminal:
                continue
            deadline = job.deadline
            if deadline is not None and now >= deadline:
                job.pending_shards.clear()
                job.enter_state(TIMEOUT, timeout_s=job.timeout_s,
                                cells_done=job.cells_done)
                self._journal_terminal(job)

    def _check_stuck(self) -> None:
        """SIGKILL busy workers that have gone heartbeat-silent.

        Distinct from the per-job timeout: a stuck worker (wedged simulation,
        deadlocked native call) stops *messaging* while its job's clock may
        have plenty left.  The kill feeds the normal dead-worker path below
        — respawn, one retry — but the death is attributed, so a shard whose
        retry also goes silent fails with ``worker_stuck`` errors rather
        than ``worker_crash``.
        """
        if self.stuck_timeout_s is None:
            return
        now = time.perf_counter()
        for handle in self._workers:
            shard = handle.busy
            if shard is None or not handle.process.is_alive():
                continue
            marks = [t for t in (shard.dispatched_at, handle.last_message_at)
                     if t is not None]
            if not marks or now - max(marks) <= self.stuck_timeout_s:
                continue
            handle.stuck_kill = True
            self.counters["workers_stuck_killed"] += 1
            job = self._jobs.get(shard.job_id)
            if job is not None and not job.is_terminal:
                job.emit("worker_stuck", worker=handle.worker_id,
                         shard=shard.shard_id,
                         silent_s=round(now - max(marks), 3))
            handle.process.kill()

    def _check_workers(self) -> None:
        for index, handle in enumerate(self._workers):
            if handle.process.is_alive():
                continue
            shard = handle.busy
            stuck = handle.stuck_kill
            self.counters["workers_respawned"] += 1
            handle.task_queue.close()
            handle.task_queue.cancel_join_thread()
            replacement = spawn_worker(
                self._ctx, handle.worker_id, self._result_queue,
                self.cache.program_cache_dir, self.preload,
            )
            replacement.respawns = handle.respawns + 1
            replacement.busy_s = handle.busy_s
            replacement.dispatched = handle.dispatched
            self._workers[index] = replacement
            if shard is None:
                continue
            job = self._jobs.get(shard.job_id)
            if job is None:
                continue
            job.in_flight.pop(shard.shard_id, None)
            if job.is_terminal:
                continue
            if shard.attempts <= 1:
                # One retry on the fresh worker — same policy as the batch
                # ShardedExecutor.  Partial results the dead worker already
                # reported are kept; re-running those cells overwrites them
                # with identical values (cells are deterministic).
                self.counters["shards_retried"] += 1
                job.pending_shards.appendleft(shard)
                self._queue.push(job)
                job.emit("shard_retry", shard=shard.shard_id,
                         worker=handle.worker_id, stuck=stuck)
            else:
                cause = "worker_stuck" if stuck else "worker_crash"
                detail = ("went heartbeat-silent running" if stuck
                          else "died running")
                error = CellError(
                    kind=cause,
                    message=(
                        f"worker {handle.worker_id} {detail} shard "
                        f"{shard.shard_id} and the retry "
                        f"{'went silent' if stuck else 'died'} too"
                    ),
                )
                failed = 0
                for cell in shard.cells:
                    key = getattr(cell, "key", cell)
                    if key not in job.fresh and key not in job.errors:
                        job.errors[key] = error
                        failed += 1
                if job.kind == FUZZ:
                    self.counters["sessions_failed"] += failed
                else:
                    self.counters["cells_failed"] += failed
                job.emit("shard_failed", shard=shard.shard_id,
                         worker=handle.worker_id, cells_failed=failed,
                         cause=cause)
                self._maybe_finalize(job)

    def _dispatch_ready(self) -> None:
        while True:
            handle = next(
                (w for w in self._workers if w.busy is None and w.process.is_alive()),
                None,
            )
            if handle is None:
                return
            job = self._queue.pop()
            if job is None:
                return
            shard = job.pending_shards.popleft()
            if job.pending_shards:
                self._queue.push(job)
            if job.state == QUEUED:
                job.enter_state(RUNNING)
            shard.attempts += 1
            shard.worker_id = handle.worker_id
            shard.dispatched_at = time.perf_counter()
            job.in_flight[shard.shard_id] = shard
            handle.busy = shard
            handle.dispatched += 1
            self.counters["shards_dispatched"] += 1
            self._journal_append("shard_dispatched", job=job.id,
                                 shard=shard.shard_id,
                                 worker=handle.worker_id,
                                 attempt=shard.attempts)
            if job.kind == FUZZ:
                spec = job.spec
                handle.task_queue.put(("fuzz", job.id, shard.shard_id, {
                    "seed": shard.cells[0],
                    "budget": spec.budget,
                    "profile": spec.profile,
                    "with_faults": spec.with_faults,
                    "timeout_s": spec.case_timeout_s,
                }))
            else:
                handle.task_queue.put(("shard", job.id, shard.shard_id, shard.cells))

    # -- observation -------------------------------------------------------------

    def stats(self) -> dict:
        """Queue depth, per-worker stats, utilization, cache hit rate."""
        with self._cond:
            worker_records = [w.snapshot() for w in self._workers]
            busy = sum(1 for w in self._workers if w.busy is not None)
            states = {state: 0 for state in
                      (QUEUED, RUNNING, DONE, FAILED, CANCELLED, TIMEOUT)}
            kinds = {CAMPAIGN: 0, FUZZ: 0}
            active = 0
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
                kinds[job.kind] = kinds.get(job.kind, 0) + 1
                if not job.is_terminal:
                    active += 1
            uptime = (time.perf_counter() - self._started_at
                      if self._started_at is not None else 0.0)
            total = self.counters["cells_total"]
            cached = self.counters["cells_cached"]
            busy_area = sum(w.busy_s for w in self._workers)
            return {
                "name": self.name,
                "running": self._running,
                "draining": self._draining,
                "uptime_s": round(uptime, 6),
                "worker_count": len(self._workers),
                "workers_busy": busy,
                "utilization": (busy / len(self._workers)) if self._workers else 0.0,
                "utilization_lifetime": (
                    busy_area / (uptime * len(self._workers))
                    if uptime > 0 and self._workers else 0.0
                ),
                "workers": worker_records,
                "queue_depth": states[QUEUED],
                "active_jobs": active,
                "queue_limit": self.queue_limit,
                "saturated": (self.queue_limit is not None
                              and active >= self.queue_limit),
                "jobs": dict(states, submitted=self._job_seq),
                "job_kinds": kinds,
                "cells": dict(self.counters),
                "cache_hit_rate": (cached / total) if total else None,
                "cache_entries": len(self.cache),
                "shard_size": self.shard_size,
                "stuck_timeout_s": self.stuck_timeout_s,
                "durable": self._journal is not None,
                "state_dir": (None if self.state_dir is None
                              else str(self.state_dir)),
                "journal_records": (0 if self._journal is None
                                    else self._journal.records_written),
            }
