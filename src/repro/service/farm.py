"""The simulation farm: warm workers + priority queue + shared result cache.

:class:`SimulationFarm` is the long-lived core the HTTP API and the CLI
front ends drive.  One farm owns:

* a pool of persistent worker processes (:mod:`repro.service.worker`) that
  keep built runners and compiled programs resident across jobs,
* a :class:`~repro.service.jobs.JobQueue` ordering jobs by priority with
  FIFO fairness within a priority,
* a shared content-addressed :class:`~repro.campaign.cache.ResultCache` in
  front of the queue — cells whose digest is already cached are answered at
  submit time without touching a worker, so a repeat submission of an
  identical spec is a pure cache read (hit rate 1.0, no queueing), and
* a single dispatcher thread that pumps worker results, persists fresh
  outcomes into the cache, enforces per-job timeouts, respawns dead workers
  (retrying their in-flight shard once, then failing those cells with
  structured error records), and feeds idle workers the next shard.

Everything observable — job state, per-cell progress, worker stats — is
mutated under one condition lock and published through job event logs, so
any number of watchers (HTTP streamers, ``Job.wait``) follow along without
polling the workers.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as stdlib_queue
import shutil
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.campaign.cache import ResultCache
from repro.campaign.executor import CellError
from repro.campaign.spec import CampaignSpec
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TIMEOUT,
    Job,
    JobQueue,
    Shard,
)
from repro.service.worker import spawn_worker

#: Default number of cells per dispatched shard.  Small enough that
#: cancellation latency (one shard boundary) stays low and several workers
#: share one medium grid; large enough that the per-shard queue round trip
#: amortises.
DEFAULT_SHARD_SIZE = 4


def resolve_workers(workers: int) -> int:
    """``0`` (the ``--workers auto`` spelling) → ``os.cpu_count()``.

    The same rule :func:`repro.campaign.executor.make_executor` applies, so
    "auto" means the identical thing on the batch and service paths.
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = auto), got {workers}")
    return workers if workers > 0 else (os.cpu_count() or 1)


class SimulationFarm:
    """A long-lived pool of warm simulation workers behind a job queue."""

    def __init__(
        self,
        workers: int = 0,
        *,
        cache: Union[ResultCache, Path, str, None] = None,
        preload: Sequence = (),
        shard_size: int = DEFAULT_SHARD_SIZE,
        poll_interval_s: float = 0.02,
        name: str = "splice-farm",
    ) -> None:
        self.name = name
        self.worker_count = resolve_workers(workers)
        self.shard_size = max(1, shard_size)
        self.preload = tuple(preload)
        self._poll_interval_s = poll_interval_s

        # Without an explicit cache directory the farm still runs one — an
        # ephemeral per-instance directory — because the cache is what makes
        # serving cheap: repeat submissions short-circuit, and the compiled
        # program cache under it is what keeps workers warm across respawns.
        self._ephemeral_cache_dir: Optional[str] = None
        if cache is None:
            self._ephemeral_cache_dir = tempfile.mkdtemp(prefix="splice-farm-cache-")
            cache = ResultCache(self._ephemeral_cache_dir)
        elif isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        self.cache = cache

        self._cond = threading.Condition()
        self._jobs: Dict[str, Job] = {}
        self._queue = JobQueue()
        self._workers: List[WorkerHandle] = []
        self._job_seq = 0
        self._running = False
        self._draining = False
        self._started_at: Optional[float] = None
        self._ctx = multiprocessing.get_context()
        self._result_queue = None
        self._dispatcher: Optional[threading.Thread] = None
        self.counters = {
            "cells_total": 0,
            "cells_cached": 0,
            "cells_executed": 0,
            "cells_failed": 0,
            "cells_discarded": 0,
            "workers_respawned": 0,
            "shards_dispatched": 0,
            "shards_retried": 0,
        }

    @property
    def lock(self) -> threading.Condition:
        """The farm-wide condition lock; hold it to read job state coherently."""
        return self._cond

    @property
    def running(self) -> bool:
        return self._running

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "SimulationFarm":
        if self._running:
            return self
        self._result_queue = self._ctx.Queue()
        self._workers = [
            spawn_worker(self._ctx, worker_id, self._result_queue,
                         self.cache.program_cache_dir, self.preload)
            for worker_id in range(self.worker_count)
        ]
        self._running = True
        self._started_at = time.perf_counter()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name=f"{self.name}-dispatcher", daemon=True
        )
        self._dispatcher.start()
        return self

    def stop(self) -> None:
        if not self._running:
            return
        with self._cond:
            self._running = False
            # Unblock every waiter/streamer: whatever was still pending is
            # cancelled, terminally, before the machinery goes away.
            for job in self._jobs.values():
                if not job.is_terminal:
                    job.pending_shards.clear()
                    job.enter_state(CANCELLED, reason="farm stopped")
        self._result_queue.put(("wake",))
        self._dispatcher.join(timeout=10)
        for handle in self._workers:
            try:
                handle.task_queue.put(None)
            except (ValueError, OSError):
                pass
        for handle in self._workers:
            handle.process.join(timeout=5)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2)
            handle.task_queue.close()
            handle.task_queue.cancel_join_thread()
        self._result_queue.close()
        self._result_queue.cancel_join_thread()
        if self._ephemeral_cache_dir is not None:
            shutil.rmtree(self._ephemeral_cache_dir, ignore_errors=True)

    def __enter__(self) -> "SimulationFarm":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- submission / control ----------------------------------------------------

    def submit(
        self,
        spec: Union[CampaignSpec, Mapping],
        *,
        priority: int = 0,
        timeout_s: Optional[float] = None,
    ) -> Job:
        """Queue a campaign spec; returns the live :class:`Job`.

        Cells already present in the shared result cache are satisfied here,
        synchronously — a fully-cached submission completes without ever
        touching the queue or a worker.
        """
        if not self._running:
            raise RuntimeError("farm is not running (call start() first)")
        if self._draining:
            raise RuntimeError("farm is draining and not accepting new jobs")
        if not isinstance(spec, CampaignSpec):
            spec = CampaignSpec.from_dict(dict(spec))

        # Cache lookups happen outside the lock: digesting a cell hashes its
        # generated inputs, which is pure CPU and must not serialise
        # concurrent submissions more than the GIL already does.
        cached = {}
        for cell in spec.cells():
            outcome = self.cache.get(cell)
            if outcome is not None:
                cached[cell.key] = outcome

        with self._cond:
            self._job_seq += 1
            job = Job(
                f"j{self._job_seq:06d}", spec,
                priority=priority, timeout_s=timeout_s, cond=self._cond,
            )
            self._jobs[job.id] = job
            job.cached = cached
            pending = [cell for cell in sorted(job.cells, key=lambda c: c.key)
                       if cell.key not in cached]
            self.counters["cells_total"] += len(job.cells)
            self.counters["cells_cached"] += len(cached)
            job.emit(
                "submitted",
                name=spec.name,
                priority=priority,
                timeout_s=timeout_s,
                cells_total=len(job.cells),
                cells_cached=len(cached),
            )
            if cached:
                job.emit("cached", cells=len(cached))
            if not pending:
                job.enter_state(DONE, cells_cached=len(cached))
                return job
            for shard_id, start in enumerate(range(0, len(pending), self.shard_size)):
                job.pending_shards.append(
                    Shard(job.id, shard_id, pending[start:start + self.shard_size])
                )
            self._queue.push(job)
        self._result_queue.put(("wake",))
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        return list(self._jobs.values())

    def cancel(self, job_id: str) -> bool:
        """Cancel a job.  Queued jobs drop instantly; a running job stops at
        the next shard boundary (its in-flight shard results are discarded).
        Returns False if the job is unknown or already terminal."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None or job.is_terminal:
                return False
            job.pending_shards.clear()
            job.enter_state(CANCELLED, shards_in_flight=len(job.in_flight))
            return True

    def drain(self, timeout_s: Optional[float] = None) -> dict:
        """Graceful shutdown, phase one: stop accepting, let work finish.

        New submissions are rejected immediately (the HTTP layer maps the
        ``RuntimeError`` to a 503), but every already-accepted job keeps
        dispatching and running to completion.  Blocks until all jobs are
        terminal or ``timeout_s`` elapses; jobs still unfinished at the
        deadline are cancelled with a terminal ``drain timeout`` event so no
        watcher is left hanging.  Call :meth:`stop` afterwards to tear the
        workers down.
        """
        deadline = None if timeout_s is None else time.perf_counter() + timeout_s
        with self._cond:
            self._draining = True

            def active() -> List[Job]:
                return [j for j in self._jobs.values() if not j.is_terminal]

            while active() and self._running:
                remaining = (None if deadline is None
                             else deadline - time.perf_counter())
                if remaining is not None and remaining <= 0:
                    break
                # Job state changes notify the shared condition, so this
                # wakes at every cell/shard/terminal event; the cap only
                # bounds staleness if a notification is missed.
                self._cond.wait(timeout=0.1 if remaining is None else min(0.1, remaining))
            leftovers = active()
            for job in leftovers:
                job.pending_shards.clear()
                job.enter_state(CANCELLED, reason="drain timeout",
                                cells_done=job.cells_done)
            return {
                "drained": not leftovers,
                "cancelled": [job.id for job in leftovers],
            }

    def kill_worker(self, worker_id: Optional[int] = None) -> Optional[int]:
        """Chaos hook: SIGKILL one worker process (a busy one if any).

        Returns the killed worker id, or ``None`` if no live worker matched.
        The dispatcher's normal crash policy takes over from there: the dead
        worker is respawned, its in-flight shard is retried once, and a
        second death yields structured ``worker_crash`` cell errors — the
        exact path real OOM kills and segfaults exercise, made injectable
        for the chaos bench and the service smoke tests.
        """
        with self._cond:
            candidates = [w for w in self._workers if w.process.is_alive()]
            if worker_id is not None:
                candidates = [w for w in candidates if w.worker_id == worker_id]
            if not candidates:
                return None
            busy = [w for w in candidates if w.busy is not None]
            target = (busy or candidates)[0]
            target.process.kill()
            return target.worker_id

    # -- dispatcher --------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            try:
                message = self._result_queue.get(timeout=self._poll_interval_s)
            except stdlib_queue.Empty:
                message = None
            except (EOFError, OSError):
                return
            with self._cond:
                if not self._running:
                    return
                if message is not None:
                    self._handle(message)
                while True:  # drain whatever else already arrived
                    try:
                        self._handle(self._result_queue.get_nowait())
                    except stdlib_queue.Empty:
                        break
                self._check_timeouts()
                self._check_workers()
                self._dispatch_ready()

    def _handle(self, message) -> None:
        kind = message[0]
        if kind == "wake":
            return
        if kind == "ready":
            _, worker_id, stats = message
            handle = self._workers[worker_id]
            handle.ready = True
            handle.stats = stats
            return
        if kind == "cell":
            _, worker_id, job_id, shard_id, key, outcome = message
            job = self._jobs.get(job_id)
            if job is None or job.is_terminal:
                self.counters["cells_discarded"] += 1
                return
            job.fresh[key] = outcome
            self.counters["cells_executed"] += 1
            cell = job.by_key[key]
            self.cache.put(cell, outcome)
            extra = {} if cell.faults is None else {"faults": cell.faults}
            job.emit(
                "cell",
                label=cell.label,
                scenario=cell.scenario.number,
                seed=cell.seed,
                repeat=cell.repeat,
                kernel=cell.kernel,
                **extra,
                result=outcome[0],
                cycles=outcome[1],
                transactions=outcome[2],
                worker=worker_id,
                done=job.cells_done,
                total=len(job.cells),
            )
            return
        if kind == "cell_error":
            _, worker_id, job_id, shard_id, key, text = message
            job = self._jobs.get(job_id)
            if job is None or job.is_terminal:
                self.counters["cells_discarded"] += 1
                return
            job.errors[key] = CellError(kind="cell_exception", message=text)
            self.counters["cells_failed"] += 1
            cell = job.by_key[key]
            extra = {} if cell.faults is None else {"faults": cell.faults}
            job.emit(
                "cell_error",
                label=cell.label,
                scenario=cell.scenario.number,
                seed=cell.seed,
                repeat=cell.repeat,
                **extra,
                error=text,
                worker=worker_id,
                done=job.cells_done,
                total=len(job.cells),
            )
            return
        if kind == "shard_done":
            _, worker_id, job_id, shard_id, stats = message
            handle = self._workers[worker_id]
            handle.stats = stats
            shard = handle.busy
            handle.busy = None
            if shard is not None and shard.dispatched_at is not None:
                handle.busy_s += time.perf_counter() - shard.dispatched_at
            job = self._jobs.get(job_id)
            if job is None:
                return
            job.in_flight.pop(shard_id, None)
            if not job.is_terminal:
                self._maybe_finalize(job)

    def _maybe_finalize(self, job: Job) -> None:
        """Lock held: finish the job once every cell is accounted for."""
        if job.pending_shards or job.in_flight:
            return
        if job.cells_done < len(job.cells):
            return
        if job.errors:
            job.enter_state(FAILED, cells_failed=len(job.errors))
        else:
            job.enter_state(DONE, cells_executed=len(job.fresh),
                            cells_cached=len(job.cached))

    def _check_timeouts(self) -> None:
        now = time.perf_counter()
        for job in self._jobs.values():
            if job.is_terminal:
                continue
            deadline = job.deadline
            if deadline is not None and now >= deadline:
                job.pending_shards.clear()
                job.enter_state(TIMEOUT, timeout_s=job.timeout_s,
                                cells_done=job.cells_done)

    def _check_workers(self) -> None:
        for index, handle in enumerate(self._workers):
            if handle.process.is_alive():
                continue
            shard = handle.busy
            self.counters["workers_respawned"] += 1
            handle.task_queue.close()
            handle.task_queue.cancel_join_thread()
            replacement = spawn_worker(
                self._ctx, handle.worker_id, self._result_queue,
                self.cache.program_cache_dir, self.preload,
            )
            replacement.respawns = handle.respawns + 1
            replacement.busy_s = handle.busy_s
            replacement.dispatched = handle.dispatched
            self._workers[index] = replacement
            if shard is None:
                continue
            job = self._jobs.get(shard.job_id)
            if job is None:
                continue
            job.in_flight.pop(shard.shard_id, None)
            if job.is_terminal:
                continue
            if shard.attempts <= 1:
                # One retry on the fresh worker — same policy as the batch
                # ShardedExecutor.  Partial results the dead worker already
                # reported are kept; re-running those cells overwrites them
                # with identical values (cells are deterministic).
                self.counters["shards_retried"] += 1
                job.pending_shards.appendleft(shard)
                self._queue.push(job)
                job.emit("shard_retry", shard=shard.shard_id,
                         worker=handle.worker_id)
            else:
                error = CellError(
                    kind="worker_crash",
                    message=(
                        f"worker {handle.worker_id} died running shard "
                        f"{shard.shard_id} and the retry died too"
                    ),
                )
                failed = 0
                for cell in shard.cells:
                    if cell.key not in job.fresh and cell.key not in job.errors:
                        job.errors[cell.key] = error
                        failed += 1
                self.counters["cells_failed"] += failed
                job.emit("shard_failed", shard=shard.shard_id,
                         worker=handle.worker_id, cells_failed=failed)
                self._maybe_finalize(job)

    def _dispatch_ready(self) -> None:
        while True:
            handle = next(
                (w for w in self._workers if w.busy is None and w.process.is_alive()),
                None,
            )
            if handle is None:
                return
            job = self._queue.pop()
            if job is None:
                return
            shard = job.pending_shards.popleft()
            if job.pending_shards:
                self._queue.push(job)
            if job.state == QUEUED:
                job.enter_state(RUNNING)
            shard.attempts += 1
            shard.worker_id = handle.worker_id
            shard.dispatched_at = time.perf_counter()
            job.in_flight[shard.shard_id] = shard
            handle.busy = shard
            handle.dispatched += 1
            self.counters["shards_dispatched"] += 1
            handle.task_queue.put(("shard", job.id, shard.shard_id, shard.cells))

    # -- observation -------------------------------------------------------------

    def stats(self) -> dict:
        """Queue depth, per-worker stats, utilization, cache hit rate."""
        with self._cond:
            worker_records = [w.snapshot() for w in self._workers]
            busy = sum(1 for w in self._workers if w.busy is not None)
            states = {state: 0 for state in
                      (QUEUED, RUNNING, DONE, FAILED, CANCELLED, TIMEOUT)}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            uptime = (time.perf_counter() - self._started_at
                      if self._started_at is not None else 0.0)
            total = self.counters["cells_total"]
            cached = self.counters["cells_cached"]
            busy_area = sum(w.busy_s for w in self._workers)
            return {
                "name": self.name,
                "running": self._running,
                "draining": self._draining,
                "uptime_s": round(uptime, 6),
                "worker_count": len(self._workers),
                "workers_busy": busy,
                "utilization": (busy / len(self._workers)) if self._workers else 0.0,
                "utilization_lifetime": (
                    busy_area / (uptime * len(self._workers))
                    if uptime > 0 and self._workers else 0.0
                ),
                "workers": worker_records,
                "queue_depth": states[QUEUED],
                "jobs": dict(states, submitted=self._job_seq),
                "cells": dict(self.counters),
                "cache_hit_rate": (cached / total) if total else None,
                "cache_entries": len(self.cache),
                "shard_size": self.shard_size,
            }
