"""Warm worker processes: runners stay resident across jobs.

This is what separates the farm from ``splice campaign run``'s throwaway
``ProcessPoolExecutor``: a worker process lives for the whole service
lifetime, keeps every runner it has ever built in an in-process dictionary
keyed by ``(label, kernel)``, and points the compiled kernel at the shared
:class:`~repro.rtl.compile.CompiledProgramCache` directory — so after the
first job touches an implementation, every later job pays neither spec
parsing, nor elaboration, nor codegen for it.

Protocol (all messages are small picklable tuples):

* parent → worker (per-worker task queue):
  ``("shard", job_id, shard_id, [CampaignCell, ...])`` for campaign shards,
  ``("fuzz", job_id, shard_id, params)`` for one deterministic fuzz session
  (params: seed/budget/profile/with_faults/timeout_s), or ``None`` to stop.
* worker → parent (shared result queue; index 1 is always the worker id, so
  the dispatcher can track per-worker liveness generically):
  ``("ready", worker_id, stats)`` once warm-up/preload is done,
  ``("heartbeat", worker_id)`` at shard start and (throttled) per fuzz case
  — the stuck-worker watchdog's liveness signal,
  ``("cell", worker_id, job_id, shard_id, cell_key, (result, cycles, txns))``
  per finished cell (this is what per-cell progress streaming is fed from),
  ``("cell_error", worker_id, job_id, shard_id, cell_key, message)`` when a
  single cell raises (the worker survives; job-level fault isolation),
  ``("shard_done", worker_id, job_id, shard_id, stats)`` at the boundary,
  ``("finding", worker_id, job_id, shard_id, counterexample_dict)`` per
  shrunk fuzz counterexample, as it is found (streamed to clients and
  appended to the server-side corpus),
  ``("fuzz_done", worker_id, job_id, shard_id, payload, duration_s, stats)``
  when a fuzz session completes (payload is the deterministic session
  record: executed/rounds/coverage/counterexamples),
  ``("fuzz_error", worker_id, job_id, shard_id, seed, message)`` when the
  session machinery itself raises (e.g. Hypothesis missing in a minimal
  environment) — the job records a structured error, the worker survives.

A worker that dies (OOM, segfault, ``os._exit``) simply stops sending; the
dispatcher notices the dead process, respawns a fresh worker, and retries
the in-flight shard once before recording structured per-cell errors —
mirroring :class:`~repro.campaign.executor.ShardedExecutor`'s crash policy.
A worker that *hangs* stops heartbeating instead: the dispatcher's watchdog
SIGKILLs it and the same respawn/retry path runs, ending in ``worker_stuck``
errors if the retry hangs too.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.rtl.compile import PROGRAM_CACHE_ENV

#: Minimum seconds between fuzz-case heartbeats (campaign shards heartbeat
#: implicitly through per-cell messages; fuzz sessions run many cases per
#: second, so their liveness signal is throttled to one message per second).
FUZZ_HEARTBEAT_EVERY_S = 1.0


def _parse_preload(entry) -> Tuple[str, str]:
    """``"label"`` / ``"label:kernel"`` / ``(label, kernel)`` → pair."""
    from repro.rtl import DEFAULT_KERNEL

    if isinstance(entry, str):
        label, _, kernel = entry.partition(":")
        return (label, kernel or DEFAULT_KERNEL)
    label, kernel = entry
    return (str(label), str(kernel))


def worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    program_cache_dir: Optional[str],
    preload: Sequence,
) -> None:
    """Worker process entry point (module-level, so it pickles under spawn)."""
    from repro.devices.registry import build_runner

    if program_cache_dir:
        # Reaches every CompiledSimulator this process ever builds; the
        # content-addressed program cache makes re-elaboration of a known
        # topology a disk read instead of a recompile.
        os.environ[PROGRAM_CACHE_ENV] = str(program_cache_dir)

    runners: Dict[Tuple[str, str], object] = {}
    applied_faults: Dict[Tuple[str, str], Optional[str]] = {}
    stats = {
        "worker": worker_id,
        "pid": os.getpid(),
        "builds": 0,
        "preloaded": 0,
        "cells": 0,
        "shards": 0,
        "cell_errors": 0,
        "sessions": 0,
        "fuzz_errors": 0,
    }

    def get_runner(label: str, kernel: str):
        key = (label, kernel)
        runner = runners.get(key)
        if runner is None:
            runner = runners[key] = build_runner(label, kernel=kernel)
            applied_faults[key] = None
            stats["builds"] += 1
        return runner

    for entry in preload:
        label, kernel = _parse_preload(entry)
        try:
            get_runner(label, kernel)
            stats["preloaded"] += 1
        except Exception:
            # A bad preload label must not take the worker down before it
            # served a single job; the label will fail per-cell if actually
            # used, with a proper error record.
            pass

    result_queue.put(("ready", worker_id, dict(stats, resident=len(runners))))

    while True:
        message = task_queue.get()
        if message is None:
            break
        if message[0] == "fuzz":
            _, job_id, shard_id, params = message
            result_queue.put(("heartbeat", worker_id))
            _run_fuzz_session(worker_id, job_id, shard_id, params,
                              result_queue, stats, resident=len(runners))
            continue
        _, job_id, shard_id, cells = message
        # Shard-start heartbeat: per-cell messages cover liveness from the
        # first completion onward; this covers the first cell's runtime.
        result_queue.put(("heartbeat", worker_id))
        for cell in cells:
            faults = getattr(cell, "faults", None)
            runner_key = (cell.label, cell.kernel)
            try:
                runner = get_runner(cell.label, cell.kernel)
                apply_faults = getattr(runner, "apply_faults", None)
                if faults is not None and apply_faults is None:
                    raise TypeError(
                        f"faults_unsupported: runner {cell.label!r} cannot "
                        f"inject fault schedule {faults!r}"
                    )
                if apply_faults is not None and applied_faults[runner_key] != faults:
                    apply_faults(faults)
                    applied_faults[runner_key] = faults
                outcome_raw = runner.run_scenario(cell.generate_inputs())
                outcome = (
                    int(outcome_raw["result"]) & 0xFFFFFFFF,
                    int(outcome_raw["cycles"]),
                    int(outcome_raw.get("transactions", 0)),
                )
            except Exception as exc:  # noqa: BLE001 — isolate the cell, keep serving
                if faults is not None:
                    # The faulted system may be wedged mid-handshake; evict
                    # the resident runner so the next cell rebuilds fresh.
                    runners.pop(runner_key, None)
                    applied_faults.pop(runner_key, None)
                stats["cell_errors"] += 1
                result_queue.put((
                    "cell_error", worker_id, job_id, shard_id, cell.key,
                    f"{type(exc).__name__}: {exc}",
                ))
                continue
            stats["cells"] += 1
            result_queue.put(("cell", worker_id, job_id, shard_id, cell.key, outcome))
        stats["shards"] += 1
        result_queue.put(("shard_done", worker_id, job_id, shard_id,
                          dict(stats, resident=len(runners))))


def _run_fuzz_session(
    worker_id: int,
    job_id: str,
    shard_id: int,
    params: Dict[str, object],
    result_queue,
    stats: Dict[str, object],
    *,
    resident: int,
) -> None:
    """Execute one deterministic fuzz session and report it.

    Imports the fuzz stack lazily: a farm that only ever serves campaign
    jobs never touches Hypothesis, and a worker in an environment without
    it degrades to a structured ``fuzz_error`` instead of dying.
    """
    seed = int(params["seed"])
    try:
        from repro.fuzz.session import run_session

        last_beat = [time.perf_counter()]

        def on_case(case, verdict) -> None:
            now = time.perf_counter()
            if now - last_beat[0] >= FUZZ_HEARTBEAT_EVERY_S:
                last_beat[0] = now
                result_queue.put(("heartbeat", worker_id))

        def on_finding(counterexample) -> None:
            result_queue.put(("finding", worker_id, job_id, shard_id,
                              counterexample.describe()))

        report = run_session(
            int(params["budget"]),
            seed,
            profile=str(params.get("profile", "quick")),
            with_faults=bool(params.get("with_faults", False)),
            timeout_s=float(params.get("timeout_s", 10.0)),
            corpus_dir=None,  # the farm owns the server-side corpus
            on_case=on_case,
            on_finding=on_finding,
        )
    except Exception as exc:  # noqa: BLE001 — isolate the session, keep serving
        stats["fuzz_errors"] += 1
        result_queue.put(("fuzz_error", worker_id, job_id, shard_id, seed,
                          f"{type(exc).__name__}: {exc}"))
        return
    stats["sessions"] += 1
    payload = {
        "seed": seed,
        "budget": report.budget,
        "profile": report.profile,
        "with_faults": report.with_faults,
        "executed": report.executed,
        "rounds": report.rounds,
        "coverage": list(report.coverage),
        "counterexamples": [ce.describe() for ce in report.counterexamples],
        "exit_code": report.exit_code,
    }
    result_queue.put(("fuzz_done", worker_id, job_id, shard_id, payload,
                      round(report.duration_s, 3), dict(stats, resident=resident)))


@dataclass
class WorkerHandle:
    """Parent-side view of one worker process."""

    worker_id: int
    process: multiprocessing.Process
    task_queue: object
    #: Shard currently dispatched to this worker, or None when idle.
    busy: Optional[object] = None
    ready: bool = False
    #: Last stats dict the worker reported (ready/shard_done messages).
    stats: Dict[str, object] = field(default_factory=dict)
    #: Cumulative seconds this handle has had a shard in flight.
    busy_s: float = 0.0
    dispatched: int = 0
    respawns: int = 0
    #: perf_counter of the last message received from this worker — the
    #: stuck-worker watchdog compares it against the dispatch instant.
    last_message_at: Optional[float] = None
    #: Set by the watchdog just before SIGKILL, so the respawn path can
    #: attribute the death to heartbeat silence (``worker_stuck``) rather
    #: than a crash (``worker_crash``).
    stuck_kill: bool = False

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def snapshot(self) -> dict:
        record = {
            "worker": self.worker_id,
            "alive": self.alive,
            "ready": self.ready,
            "busy": self.busy is not None,
            "dispatched_shards": self.dispatched,
            "busy_s": round(self.busy_s, 6),
            "respawns": self.respawns,
        }
        for key in ("pid", "builds", "preloaded", "cells", "shards",
                    "cell_errors", "sessions", "fuzz_errors", "resident"):
            if key in self.stats:
                record[key] = self.stats[key]
        return record


def spawn_worker(
    context,
    worker_id: int,
    result_queue,
    program_cache_dir: Optional[str],
    preload: Sequence,
) -> WorkerHandle:
    """Start one worker process with its own task queue."""
    task_queue = context.Queue()
    process = context.Process(
        target=worker_main,
        args=(worker_id, task_queue, result_queue,
              str(program_cache_dir) if program_cache_dir else None,
              tuple(preload)),
        daemon=True,
        name=f"splice-farm-worker-{worker_id}",
    )
    process.start()
    return WorkerHandle(worker_id=worker_id, process=process, task_queue=task_queue)
