"""Jobs and the priority job queue.

A :class:`Job` is one submitted :class:`~repro.campaign.spec.CampaignSpec`
on its way through the farm: cache lookup at submit, then (for the cells the
cache missed) a sequence of :class:`Shard` dispatches to warm workers, then
aggregation into a :class:`~repro.campaign.result.CampaignResult` that is
bit-identical to what ``splice campaign run`` produces for the same spec.

Jobs are passive data plus an event log; all mutation happens under the
farm's single condition lock (submission threads, HTTP handler threads and
the dispatcher all share it), and every observable change appends an event
and notifies the condition — that one mechanism drives ``wait()``, the
streaming ``/jobs/<id>/events`` endpoint and the CLI progress display.

:class:`JobQueue` orders runnable jobs by priority (higher number runs
sooner) and FIFO within a priority (by submission sequence number).  It is
*not* itself thread-safe: it is only touched under the farm lock.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional, Tuple, Union

from repro.campaign.executor import CellError, CellOutcome
from repro.campaign.result import CampaignResult, cell_result
from repro.campaign.spec import CampaignCell, CampaignSpec

#: Job lifecycle states.  ``queued → running → done`` is the happy path;
#: ``failed`` means every cell is accounted for but some carry error records
#: (worker died twice); ``cancelled`` and ``timeout`` are terminal the moment
#: they are entered — in-flight shards keep running to their boundary in the
#: worker, and their late results are discarded.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TIMEOUT = "timeout"

TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED, TIMEOUT})

#: Job kinds the farm schedules.  Both flow through the same queue, shard
#: machinery, event log and crash policy; they differ in what a shard *is*
#: (a batch of campaign cells vs one deterministic fuzz session) and in how
#: results aggregate.
CAMPAIGN = "campaign"
FUZZ = "fuzz"


@dataclass(frozen=True)
class FuzzJobSpec:
    """A continuous-fuzzing workload: a contiguous seed range, one
    deterministic ``(seed, budget)`` session per seed.

    Each session is exactly what ``splice fuzz run --seed S --budget B``
    executes (see :func:`repro.fuzz.session.run_session`), so a fuzz job's
    aggregate — executed counts, coverage cells, shrunk counterexamples —
    is a pure function of this spec and reproduces bit-identically across
    runs, restarts and worker placements.
    """

    seed_start: int
    sessions: int
    budget: int
    profile: str = "quick"
    with_faults: bool = False
    case_timeout_s: float = 10.0
    name: str = "fuzz"

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ValueError(f"fuzz job needs >= 1 session, got {self.sessions}")
        if self.budget < 1:
            raise ValueError(f"fuzz budget must be >= 1, got {self.budget}")
        if self.case_timeout_s <= 0:
            raise ValueError(
                f"case_timeout_s must be positive, got {self.case_timeout_s}"
            )

    def seeds(self) -> List[int]:
        return list(range(self.seed_start, self.seed_start + self.sessions))

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed_start": self.seed_start,
            "sessions": self.sessions,
            "budget": self.budget,
            "profile": self.profile,
            "with_faults": self.with_faults,
            "case_timeout_s": self.case_timeout_s,
        }

    def fingerprint(self) -> str:
        text = json.dumps(self.describe(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzJobSpec":
        return cls(
            seed_start=int(data["seed_start"]),
            sessions=int(data["sessions"]),
            budget=int(data["budget"]),
            profile=str(data.get("profile", "quick")),
            with_faults=bool(data.get("with_faults", False)),
            case_timeout_s=float(data.get("case_timeout_s", 10.0)),
            name=str(data.get("name", "fuzz")),
        )


@dataclass
class Shard:
    """A contiguous batch of one job's cells, dispatched to one worker.

    The shard is the farm's unit of scheduling *and* of cancellation: a
    worker runs a shard to completion, so cancelling a running job takes
    effect at the next shard boundary.  ``attempts`` counts dispatches — a
    shard whose worker died is retried exactly once on a fresh worker.
    """

    job_id: str
    shard_id: int
    cells: List[CampaignCell]
    attempts: int = 0
    worker_id: Optional[int] = None
    dispatched_at: Optional[float] = None


class Job:
    """One submitted campaign spec and everything that happens to it."""

    def __init__(
        self,
        job_id: str,
        spec: Union[CampaignSpec, FuzzJobSpec],
        *,
        kind: str = CAMPAIGN,
        priority: int = 0,
        timeout_s: Optional[float] = None,
        cond: Optional[threading.Condition] = None,
    ) -> None:
        if kind not in (CAMPAIGN, FUZZ):
            raise ValueError(f"unknown job kind {kind!r}")
        self.id = job_id
        self.spec = spec
        self.kind = kind
        self.priority = priority
        self.timeout_s = timeout_s
        self.cond = cond or threading.Condition()
        #: True when this Job object was rebuilt from the journal after a
        #: server restart rather than submitted by a client this lifetime.
        self.recovered = False
        self.idempotency_key: Optional[str] = None

        self.state = QUEUED
        self.submitted_wall = time.time()
        self.submitted = time.perf_counter()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None

        #: The job's work units in canonical (deterministic) order; result
        #: aggregation walks this list so the served payload row order is
        #: identical to the batch runner's.  Campaign jobs: the grid's
        #: :class:`CampaignCell` expansion, keyed by ``cell.key``.  Fuzz
        #: jobs: the seed range, keyed by the seed itself.
        if kind == FUZZ:
            self.cells: List = spec.seeds()
            self.by_key: Dict[tuple, CampaignCell] = {}
        else:
            self.cells = spec.cells()
            self.by_key = {c.key: c for c in self.cells}
        self.cached: Dict[tuple, CellOutcome] = {}
        self.fresh: Dict = {}
        self.errors: Dict = {}

        self.pending_shards: Deque[Shard] = deque()
        self.in_flight: Dict[int, Shard] = {}
        self.events: List[dict] = []
        #: FIFO position within this job's priority class; assigned by the
        #: :class:`JobQueue` at first push and stable across re-pushes.
        self.queue_seq: Optional[int] = None

    # -- derived ----------------------------------------------------------------

    @property
    def deadline(self) -> Optional[float]:
        """perf_counter instant after which the job times out (from submit)."""
        if self.timeout_s is None:
            return None
        return self.submitted + self.timeout_s

    @property
    def cells_done(self) -> int:
        return len(self.cached) + len(self.fresh) + len(self.errors)

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def elapsed_s(self) -> float:
        end = self.finished if self.finished is not None else time.perf_counter()
        return end - self.submitted

    # -- events (callers hold self.cond) ----------------------------------------

    def emit(self, event: str, **payload) -> dict:
        """Append an event and wake every waiter/streamer.  Lock held."""
        record = {"event": event, "job": self.id, "t": round(self.elapsed_s, 6)}
        record.update(payload)
        self.events.append(record)
        self.cond.notify_all()
        return record

    def enter_state(self, state: str, **payload) -> None:
        """Transition and emit the matching state event.  Lock held."""
        self.state = state
        if state == RUNNING and self.started is None:
            self.started = time.perf_counter()
        if state in TERMINAL_STATES:
            self.finished = time.perf_counter()
        self.emit("state", state=state, **payload)

    # -- observation -------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-friendly status record.  Lock held."""
        return {
            "id": self.id,
            "name": self.spec.name,
            "kind": self.kind,
            "recovered": self.recovered,
            "state": self.state,
            "priority": self.priority,
            "timeout_s": self.timeout_s,
            "submitted_wall": self.submitted_wall,
            "elapsed_s": round(self.elapsed_s, 6),
            "cells_total": len(self.cells),
            "cells_cached": len(self.cached),
            "cells_executed": len(self.fresh),
            "cells_failed": len(self.errors),
            "cells_done": self.cells_done,
            "shards_pending": len(self.pending_shards),
            "shards_in_flight": len(self.in_flight),
            "events": len(self.events),
            "spec_fingerprint": self.spec.fingerprint(),
        }

    def wait(self, timeout: Optional[float] = None) -> str:
        """Block until the job reaches a terminal state; returns the state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self.cond:
            while not self.is_terminal:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                self.cond.wait(remaining if remaining is not None else 0.5)
            return self.state

    def iter_events(self, start: int = 0) -> Iterator[dict]:
        """Yield events from ``start`` onward, blocking for new ones, until
        the job is terminal and every event has been delivered.

        This powers the NDJSON streaming endpoint: each handler thread runs
        its own iterator over the shared event list (events are append-only,
        so no copying is needed) and parks on the condition between bursts.
        """
        index = start
        while True:
            with self.cond:
                while index >= len(self.events) and not self.is_terminal:
                    self.cond.wait(0.5)
                batch = self.events[index:]
                index += len(batch)
                terminal = self.is_terminal and index >= len(self.events)
            for event in batch:
                yield event
            if terminal:
                return

    # -- aggregation -------------------------------------------------------------

    def result_payload(self) -> dict:
        """The job's result as a JSON payload, whatever its kind.

        Campaign jobs serve the :class:`CampaignResult` dict (bit-identical
        ``cells`` to the batch runner); fuzz jobs serve the deterministic
        fuzz aggregate of :meth:`fuzz_result`.
        """
        if self.kind == FUZZ:
            return self.fuzz_result()
        return self.result().to_dict()

    def fuzz_result(self) -> dict:
        """Aggregate a fuzz job's completed sessions.

        Everything outside ``meta`` is a pure function of the spec: session
        rows in seed order, the union of per-session coverage cells, and
        counterexamples deduplicated by ``(kind, token)`` — so two runs of
        the same spec (or one run interrupted by a server kill and resumed)
        compare bit-identical on ``sessions``/``coverage``/``counterexamples``.
        """
        if self.state not in (DONE, FAILED):
            raise ValueError(
                f"job {self.id} is {self.state}; results exist only for "
                "done/failed jobs"
            )
        sessions = []
        coverage: set = set()
        findings: Dict[Tuple[str, str], dict] = {}
        errors: Dict[str, str] = {}
        executed = 0
        for seed in self.cells:
            if seed in self.errors:
                errors[str(seed)] = self.errors[seed].describe()
                continue
            payload = self.fresh[seed]
            sessions.append(payload)
            executed += int(payload.get("executed", 0))
            coverage.update(payload.get("coverage", ()))
            for ce in payload.get("counterexamples", ()):
                findings[(str(ce.get("kind")), str(ce.get("token")))] = ce
        return {
            "kind": FUZZ,
            "fuzz": self.spec.describe(),
            "sessions": sessions,
            "executed": executed,
            "coverage": sorted(coverage),
            "counterexamples": [findings[key] for key in sorted(findings)],
            "errors": errors,
            "meta": {
                "executor": "farm",
                "job_id": self.id,
                "priority": self.priority,
                "recovered": self.recovered,
                "elapsed_s": round(self.elapsed_s, 6),
                "sessions_total": len(self.cells),
                "sessions_failed": len(errors),
                "spec_fingerprint": self.spec.fingerprint(),
            },
        }

    def result(self) -> CampaignResult:
        """Aggregate into a :class:`CampaignResult`, batch-identical.

        Only available once every cell is accounted for (``done`` or
        ``failed``); cancelled and timed-out jobs have holes in the grid and
        raise instead of fabricating a partial table.
        """
        if self.kind != CAMPAIGN:
            raise ValueError(
                f"job {self.id} is a {self.kind} job; use fuzz_result()/"
                "result_payload()"
            )
        if self.state not in (DONE, FAILED):
            raise ValueError(
                f"job {self.id} is {self.state}; results exist only for "
                "done/failed jobs"
            )
        results = []
        for cell in self.cells:
            if cell.key in self.errors:
                outcome = self.errors[cell.key]
            elif cell.key in self.cached:
                outcome = self.cached[cell.key]
            else:
                outcome = self.fresh[cell.key]
            results.append(cell_result(cell, outcome, cached=cell.key in self.cached))
        elapsed = (self.finished or time.perf_counter()) - self.submitted
        total_cycles = sum(r.cycles for r in results if not r.cached and r.error is None)
        return CampaignResult(
            spec=self.spec,
            cells=results,
            meta={
                "executor": "farm",
                "job_id": self.id,
                "priority": self.priority,
                "elapsed_s": round(elapsed, 6),
                "cells_total": len(self.cells),
                "cells_cached": len(self.cached),
                "cells_executed": len(self.fresh),
                "cells_failed": len(self.errors),
                "simulated_cycles": total_cycles,
                "spec_fingerprint": self.spec.fingerprint(),
            },
        )


class JobQueue:
    """Priority order over dispatchable jobs: higher ``priority`` first,
    FIFO within a priority.

    FIFO position is the *submission* sequence number, assigned at first
    push and kept for the job's lifetime — so a job whose shards are being
    dispatched one at a time (it is re-pushed while it still has pending
    shards) does not lose its place to a later submission of the same
    priority.

    Cancellation is lazy: a cancelled job's entries stay in the heap and
    are skipped at pop time, so dropping a queued job is O(1) — it just
    flips state.  Duplicate entries from re-pushes are likewise skipped
    once the job has nothing left to dispatch.  Not thread-safe; callers
    hold the farm lock.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Job]] = []
        self._seq = itertools.count()

    def push(self, job: Job) -> None:
        seq = getattr(job, "queue_seq", None)
        if seq is None:
            seq = job.queue_seq = next(self._seq)
        heapq.heappush(self._heap, (-job.priority, seq, job))

    def pop(self) -> Optional[Job]:
        """The next dispatchable job (has pending shards, not terminal)."""
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            if not job.is_terminal and job.pending_shards:
                return job
        return None

    def peek(self) -> Optional[Job]:
        while self._heap:
            job = self._heap[0][2]
            if not job.is_terminal and job.pending_shards:
                return job
            heapq.heappop(self._heap)
        return None

    def __len__(self) -> int:
        """Number of distinct dispatchable jobs currently in the heap."""
        return len({
            id(job) for _, _, job in self._heap
            if not job.is_terminal and job.pending_shards
        })
