"""Durable write-ahead journal for the simulation farm.

Everything the farm needs to survive a SIGKILL of the *server* process is
one append-only NDJSON file under ``--state-dir``: one fsync'd JSON line
per job state transition.  The journal is written *before* the transition
is acted on (write-ahead), so after a hard kill the farm can replay the
file and reconstruct every job that had been accepted but had not reached
a terminal state.

Record types (each a JSON object with a ``"type"`` key):

``journal``
    Header written at compaction: schema version plus the highest job
    sequence number ever issued, so restarts never reuse a job id a client
    might still be polling — even after terminal jobs' records are dropped.
``submitted``
    One per accepted job: id, kind (``campaign`` / ``fuzz``), the full spec
    payload (enough to re-expand the identical cell grid or seed range),
    priority, timeout and the client idempotency key if one was sent.
``shard_dispatched``
    Observability: which shard went to which worker on which attempt.
``shard_done``
    Campaign shards record the content digests of their cells — the
    outcomes themselves live in the shared :class:`ResultCache`, so
    recovery answers these cells from the cache and never re-executes
    them.  Fuzz shards record the complete deterministic session payload
    (the journal is the only durable copy of a fuzz result).
``cancelled`` / ``finished``
    Terminal transitions.  A job with one of these is not recovered.

Recovery tolerates a torn final line (the crash may land mid-``write``):
unparseable lines are counted and skipped, never fatal.  On restart the
farm compacts the journal — rewrites it atomically with only the records
still needed (header, live jobs' submissions, completed fuzz sessions) —
so the file does not grow across crash/restart cycles.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

JOURNAL_VERSION = 1

#: Filename of the journal inside a farm state directory.
JOURNAL_FILENAME = "journal.jsonl"


def append_jsonl(path: Union[str, Path], record: dict, *, fsync: bool = False) -> None:
    """Append one JSON line to ``path``, creating parent directories.

    The standalone helper (as opposed to :class:`JobJournal`) is for
    low-frequency appends that do not keep a file handle open — e.g. the
    fuzz-coverage records the farm appends to a ``BENCH_history.jsonl``
    trajectory file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())


class JobJournal:
    """Append-only fsync'd NDJSON journal, safe for concurrent appenders.

    ``fsync=False`` trades the durability guarantee for speed (unit tests,
    benchmarks isolating the serialization cost); the farm always runs the
    default.
    """

    def __init__(self, path: Union[str, Path], *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._sync_lock = threading.Lock()
        self._fh = open(self.path, "a", encoding="utf-8")
        self.records_written = 0
        self._written = 0
        self._synced = 0

    def write(self, type_: str, **fields) -> dict:
        """Append one record to the OS (buffered, flushed, *not* fsync'd).

        Pair with :meth:`sync` once the caller is past its critical
        section — the farm writes records while holding its job lock but
        fsyncs after releasing it, so concurrent submitters never queue
        behind disk latency.
        """
        record = {"type": type_, "wall": round(time.time(), 3)}
        record.update(fields)
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        with self._lock:
            self._fh.write(line)
            self._fh.flush()
            self._written += 1
            self.records_written += 1
        return record

    def sync(self) -> None:
        """Make every record written so far durable (group commit).

        One ``fsync`` covers all records flushed before it, so when many
        threads call :meth:`sync` concurrently most of them find their
        record already covered by a neighbour's fsync and return without
        touching the disk.
        """
        if not self.fsync:
            return
        target = self._written
        with self._sync_lock:
            if self._synced >= target:
                return
            with self._lock:
                if self._fh.closed:
                    return
                covered = self._written
                fd = self._fh.fileno()
            os.fsync(fd)
            if self._synced < covered:
                self._synced = covered

    def append(self, type_: str, **fields) -> dict:
        """Write one record durably; returns the record as written."""
        record = self.write(type_, **fields)
        self.sync()
        return record

    def compact(self, records: List[dict]) -> None:
        """Atomically replace the journal's contents with ``records``.

        Written to a unique temp file, fsync'd, then ``os.replace``d over
        the journal — a crash mid-compaction leaves either the old journal
        or the new one, never a mix.
        """
        with self._sync_lock, self._lock:
            self._fh.close()
            tmp = self.path.with_name(
                f".{self.path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
            )
            with open(tmp, "w", encoding="utf-8") as fh:
                for record in records:
                    fh.write(json.dumps(record, sort_keys=True,
                                        separators=(",", ":")) + "\n")
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            self._fh = open(self.path, "a", encoding="utf-8")
            self._synced = self._written

    def close(self) -> None:
        with self._sync_lock, self._lock:
            if not self._fh.closed:
                self._fh.flush()
                if self.fsync:
                    os.fsync(self._fh.fileno())
                self._fh.close()
            self._synced = self._written


@dataclass
class JournaledJob:
    """One job reconstructed from the journal."""

    job_id: str
    kind: str
    priority: int
    timeout_s: Optional[float]
    #: The spec payload: ``CampaignSpec.describe()`` or ``FuzzJobSpec.describe()``.
    payload: dict
    idempotency_key: Optional[str]
    submitted_record: dict
    #: Raw ``shard_done`` records, in completion order.
    shards_done: List[dict] = field(default_factory=list)
    #: Fuzz only: completed deterministic session payloads, keyed by seed.
    sessions: Dict[int, dict] = field(default_factory=dict)
    #: Terminal state (``done``/``failed``/``timeout``/``cancelled``) or None.
    terminal: Optional[str] = None

    @property
    def live(self) -> bool:
        return self.terminal is None


@dataclass
class JournalReplay:
    """Everything :func:`replay_journal` reconstructed."""

    #: Jobs in submission order (dict preserves insertion order).
    jobs: Dict[str, JournaledJob]
    #: Highest job sequence number observed (header or parsed from ids).
    seq: int
    #: Total records parsed.
    records: int
    #: Unparseable lines skipped (a torn tail line after a crash is normal).
    skipped: int

    def live_jobs(self) -> List[JournaledJob]:
        return [job for job in self.jobs.values() if job.live]

    def compaction_records(self) -> List[dict]:
        """The minimal record set a compacted journal must keep."""
        records: List[dict] = [
            {"type": "journal", "version": JOURNAL_VERSION, "seq": self.seq}
        ]
        for job in self.live_jobs():
            records.append(job.submitted_record)
            # Completed fuzz sessions are only durable here; campaign
            # shard_done digests are redundant with the ResultCache and
            # dropped (their shard ids are reassigned on re-admission).
            for record in job.shards_done:
                if "session" in record:
                    records.append(record)
        return records


def _job_seq_of(job_id: str) -> int:
    digits = "".join(ch for ch in job_id if ch.isdigit())
    try:
        return int(digits)
    except ValueError:
        return 0


def replay_journal(path: Union[str, Path]) -> JournalReplay:
    """Parse the journal into per-job state.  Missing file → empty replay."""
    jobs: Dict[str, JournaledJob] = {}
    seq = 0
    records = 0
    skipped = 0
    path = Path(path)
    if not path.exists():
        return JournalReplay(jobs=jobs, seq=0, records=0, skipped=0)
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                kind = record["type"]
            except (ValueError, KeyError, TypeError):
                skipped += 1
                continue
            records += 1
            if kind == "journal":
                seq = max(seq, int(record.get("seq", 0)))
                continue
            job_id = record.get("job")
            if not isinstance(job_id, str):
                skipped += 1
                continue
            if kind == "submitted":
                seq = max(seq, _job_seq_of(job_id))
                job_kind = str(record.get("kind", "campaign"))
                payload = record.get("fuzz" if job_kind == "fuzz" else "spec")
                if not isinstance(payload, dict):
                    skipped += 1
                    continue
                timeout_raw = record.get("timeout_s")
                jobs[job_id] = JournaledJob(
                    job_id=job_id,
                    kind=job_kind,
                    priority=int(record.get("priority", 0)),
                    timeout_s=None if timeout_raw is None else float(timeout_raw),
                    payload=payload,
                    idempotency_key=record.get("idempotency_key"),
                    submitted_record=record,
                )
                continue
            job = jobs.get(job_id)
            if job is None:
                skipped += 1
                continue
            if kind == "shard_done":
                job.shards_done.append(record)
                session = record.get("session")
                if isinstance(session, dict) and "seed" in record:
                    job.sessions[int(record["seed"])] = session
            elif kind == "cancelled":
                job.terminal = "cancelled"
            elif kind == "finished":
                job.terminal = str(record.get("state", "done"))
            # shard_dispatched and unknown types carry no recovery state.
    return JournalReplay(jobs=jobs, seq=seq, records=records, skipped=skipped)
