"""Campaign-as-a-service: a long-lived simulation farm.

Where :mod:`repro.campaign` is strictly batch — every ``splice campaign
run`` pays a fresh process pool, re-imports, re-elaborates, re-compiles,
and exits — this package keeps everything warm and puts a queue and an HTTP
API in front of it:

* :class:`~repro.service.farm.SimulationFarm` — persistent worker processes
  holding built runners and compiled programs resident across jobs, a
  priority job queue (FIFO within a priority, cancellation, per-job
  timeouts), and the shared content-addressed result cache in front of it
  all, so repeat submissions short-circuit without touching a worker.
* :func:`~repro.service.api.serve_farm` — the stdlib HTTP/JSON API:
  ``POST /jobs``, ``GET /jobs/<id>``, streaming NDJSON
  ``GET /jobs/<id>/events``, ``DELETE /jobs/<id>``, ``GET /stats``.
* :class:`~repro.service.client.ServiceClient` — the matching stdlib
  client, used by ``splice submit``.

Results served through the API are bit-identical to ``splice campaign run``
on the same spec: jobs expand the identical cell grid, cells execute through
the same registry-built runners, and aggregation shares the batch runner's
:func:`~repro.campaign.result.cell_result` path.

With ``--state-dir`` the farm is additionally *durable*: every job
transition is recorded write-ahead in a
:class:`~repro.service.journal.JobJournal`, so a hard kill of the server
loses nothing — a restart on the same directory replays the journal,
re-enqueues every non-terminal job, and resumes each from its completed
work (campaign cells from the result cache, fuzz sessions from the
journal), bit-identical to an uninterrupted run.  Fuzz jobs
(:class:`~repro.service.jobs.FuzzJobSpec`) are a first-class workload:
seed ranges shard across the warm workers, findings stream back live and
land in the server-side corpus.
"""

from repro.service.api import build_handler, serve_farm, serve_farm_in_thread
from repro.service.client import ServiceClient, ServiceError
from repro.service.farm import (
    DEFAULT_SHARD_SIZE,
    DEFAULT_STUCK_TIMEOUT_S,
    FarmSaturated,
    SimulationFarm,
    resolve_workers,
)
from repro.service.jobs import (
    CAMPAIGN,
    CANCELLED,
    DONE,
    FAILED,
    FUZZ,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    TIMEOUT,
    FuzzJobSpec,
    Job,
    JobQueue,
    Shard,
)
from repro.service.journal import (
    JOURNAL_FILENAME,
    JobJournal,
    JournalReplay,
    append_jsonl,
    replay_journal,
)

__all__ = [
    "SimulationFarm",
    "FarmSaturated",
    "DEFAULT_SHARD_SIZE",
    "DEFAULT_STUCK_TIMEOUT_S",
    "resolve_workers",
    "serve_farm",
    "serve_farm_in_thread",
    "build_handler",
    "ServiceClient",
    "ServiceError",
    "Job",
    "JobQueue",
    "Shard",
    "FuzzJobSpec",
    "CAMPAIGN",
    "FUZZ",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TIMEOUT",
    "TERMINAL_STATES",
    "JobJournal",
    "JournalReplay",
    "JOURNAL_FILENAME",
    "append_jsonl",
    "replay_journal",
]
