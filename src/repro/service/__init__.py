"""Campaign-as-a-service: a long-lived simulation farm.

Where :mod:`repro.campaign` is strictly batch — every ``splice campaign
run`` pays a fresh process pool, re-imports, re-elaborates, re-compiles,
and exits — this package keeps everything warm and puts a queue and an HTTP
API in front of it:

* :class:`~repro.service.farm.SimulationFarm` — persistent worker processes
  holding built runners and compiled programs resident across jobs, a
  priority job queue (FIFO within a priority, cancellation, per-job
  timeouts), and the shared content-addressed result cache in front of it
  all, so repeat submissions short-circuit without touching a worker.
* :func:`~repro.service.api.serve_farm` — the stdlib HTTP/JSON API:
  ``POST /jobs``, ``GET /jobs/<id>``, streaming NDJSON
  ``GET /jobs/<id>/events``, ``DELETE /jobs/<id>``, ``GET /stats``.
* :class:`~repro.service.client.ServiceClient` — the matching stdlib
  client, used by ``splice submit``.

Results served through the API are bit-identical to ``splice campaign run``
on the same spec: jobs expand the identical cell grid, cells execute through
the same registry-built runners, and aggregation shares the batch runner's
:func:`~repro.campaign.result.cell_result` path.
"""

from repro.service.api import build_handler, serve_farm, serve_farm_in_thread
from repro.service.client import ServiceClient, ServiceError
from repro.service.farm import DEFAULT_SHARD_SIZE, SimulationFarm, resolve_workers
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    TIMEOUT,
    Job,
    JobQueue,
    Shard,
)

__all__ = [
    "SimulationFarm",
    "DEFAULT_SHARD_SIZE",
    "resolve_workers",
    "serve_farm",
    "serve_farm_in_thread",
    "build_handler",
    "ServiceClient",
    "ServiceError",
    "Job",
    "JobQueue",
    "Shard",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TIMEOUT",
    "TERMINAL_STATES",
]
