"""HTTP/JSON API over a :class:`~repro.service.farm.SimulationFarm`.

Pure stdlib (``http.server``), no new dependencies.  Endpoints:

* ``POST /jobs`` — submit a job.  Body is JSON: a campaign as either
  ``{"spec": {...}, "priority": 0, "timeout_s": null}`` or a bare spec dict
  (anything with an ``"implementations"`` key), where the spec payload is
  exactly :meth:`repro.campaign.spec.CampaignSpec.describe` — or a fuzz job
  as ``{"fuzz": {"seed_start": 0, "sessions": 8, "budget": 40, ...}}``
  (the payload of :meth:`repro.service.jobs.FuzzJobSpec.describe`).
  Returns 201 with the job snapshot.  An ``Idempotency-Key`` request header
  makes the submission safe to retry: a repeated key returns the original
  job (200, snapshot carries ``"duplicate": true``) instead of enqueuing a
  second one — the key is journaled on durable farms, so the dedupe
  survives server restarts.  When the farm is saturated (bounded queue
  depth reached) the response is 503 with a ``Retry-After`` header.
* ``GET /jobs`` — snapshots of every job the farm has seen.
* ``GET /jobs/<id>`` — one job's snapshot.
* ``GET /jobs/<id>/events[?from=N]`` — NDJSON stream of the job's event log
  (submission, state changes, per-cell completions); the response stays
  open, emitting one JSON object per line, until the job reaches a terminal
  state.
* ``GET /jobs/<id>/result`` — the aggregated result as JSON.  Campaign
  jobs serve the :class:`~repro.campaign.result.CampaignResult` payload,
  bit-identical in its ``cells`` to ``splice campaign run`` on the same
  spec; fuzz jobs serve the deterministic fuzz aggregate (sessions in seed
  order, coverage union, deduplicated counterexamples).  409 while the job
  is still queued/running, 410 for cancelled/timed-out jobs, which never
  have a complete result.
* ``DELETE /jobs/<id>`` — cancel (queued: drops instantly; running: stops
  at the next shard boundary).
* ``GET /stats`` — queue depth, per-worker stats, utilization, cache hit
  rate.
* ``GET /healthz`` — liveness probe.

The server is a :class:`ThreadingHTTPServer`: each request handler runs on
its own thread and talks to the farm under the farm's lock, so many clients
can stream different jobs' events concurrently.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.service.farm import FarmSaturated, SimulationFarm
from repro.service.jobs import CANCELLED, DONE, FAILED, TIMEOUT

_JOB_PATH = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)(/events|/result)?$")


class FarmRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the farm.  Subclassed per server instance so
    the ``farm`` reference is a class attribute (the stdlib instantiates a
    fresh handler per request)."""

    farm: SimulationFarm = None  # injected by build_handler()
    quiet: bool = True
    server_version = "splice-farm/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if not self.quiet:
            super().log_message(format, *args)

    def _send_json(self, code: int, payload: dict,
                   headers: Optional[dict] = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_body(self) -> Optional[dict]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            return None
        if length <= 0:
            return None
        try:
            return json.loads(self.rfile.read(length))
        except (ValueError, UnicodeDecodeError):
            return None

    def _route_job(self, path: str) -> Optional[Tuple[str, Optional[str]]]:
        match = _JOB_PATH.match(path)
        if match is None:
            return None
        return match.group(1), (match.group(2) or "").lstrip("/") or None

    # -- methods -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        parsed = urlparse(self.path)
        if parsed.path == "/healthz":
            self._send_json(200, {"ok": True, "running": self.farm.running})
            return
        if parsed.path == "/stats":
            self._send_json(200, self.farm.stats())
            return
        if parsed.path == "/jobs":
            with self.farm.lock:
                jobs = [job.snapshot() for job in self.farm.jobs()]
            self._send_json(200, {"jobs": jobs})
            return
        routed = self._route_job(parsed.path)
        if routed is None:
            self._error(404, f"no such endpoint: {parsed.path}")
            return
        job_id, sub = routed
        job = self.farm.get(job_id)
        if job is None:
            self._error(404, f"no such job: {job_id}")
            return
        if sub is None:
            with self.farm.lock:
                self._send_json(200, job.snapshot())
            return
        if sub == "result":
            with self.farm.lock:
                state = job.state
            if state in (CANCELLED, TIMEOUT):
                self._error(410, f"job {job_id} is {state}; no complete result exists")
                return
            if state not in (DONE, FAILED):
                self._error(409, f"job {job_id} is still {state}")
                return
            with self.farm.lock:
                payload = job.result_payload()
            self._send_json(200, payload)
            return
        if sub == "events":
            query = parse_qs(parsed.query)
            try:
                start = int(query.get("from", ["0"])[0])
            except ValueError:
                start = 0
            self._stream_events(job, start)
            return
        self._error(404, f"no such endpoint: {parsed.path}")

    def do_POST(self) -> None:  # noqa: N802
        if urlparse(self.path).path != "/jobs":
            self._error(404, f"no such endpoint: {self.path}")
            return
        body = self._read_body()
        if body is None:
            self._error(400, "expected a JSON body")
            return
        fuzz_payload = body.get("fuzz")
        spec_payload = body.get("spec", body)
        if fuzz_payload is None and (
            not isinstance(spec_payload, dict)
            or "implementations" not in spec_payload
        ):
            self._error(400, "body must carry a campaign spec (a 'spec' object "
                             "or a bare spec with 'implementations') or a "
                             "'fuzz' object with seed_start/sessions/budget")
            return
        try:
            priority = int(body.get("priority", 0))
            timeout_raw = body.get("timeout_s")
            timeout_s = None if timeout_raw is None else float(timeout_raw)
        except (TypeError, ValueError):
            self._error(400, "priority must be an int, timeout_s a number or null")
            return
        idempotency_key = self.headers.get("Idempotency-Key") or None
        # Resolved under the farm lock inside submit(); this pre-check only
        # decides whether the response should flag the job as a duplicate.
        duplicate = (
            idempotency_key is not None
            and self.farm.job_for_key(idempotency_key) is not None
        )
        try:
            if fuzz_payload is not None:
                if not isinstance(fuzz_payload, dict):
                    self._error(400, "'fuzz' must be an object")
                    return
                job = self.farm.submit_fuzz(
                    fuzz_payload, priority=priority, timeout_s=timeout_s,
                    idempotency_key=idempotency_key,
                )
            else:
                job = self.farm.submit(
                    spec_payload, priority=priority, timeout_s=timeout_s,
                    idempotency_key=idempotency_key,
                )
        except (KeyError, TypeError, ValueError) as exc:
            self._error(400, f"invalid job spec: {exc}")
            return
        except FarmSaturated as exc:
            self._send_json(
                503, {"error": str(exc), "retry_after_s": exc.retry_after_s},
                headers={"Retry-After": str(max(1, int(exc.retry_after_s)))},
            )
            return
        except RuntimeError as exc:
            self._error(503, str(exc))
            return
        with self.farm.lock:
            snapshot = job.snapshot()
        snapshot["events_url"] = f"/jobs/{job.id}/events"
        snapshot["result_url"] = f"/jobs/{job.id}/result"
        if duplicate:
            snapshot["duplicate"] = True
        self._send_json(200 if duplicate else 201, snapshot)

    def do_DELETE(self) -> None:  # noqa: N802
        routed = self._route_job(urlparse(self.path).path)
        if routed is None or routed[1] is not None:
            self._error(404, f"no such endpoint: {self.path}")
            return
        job_id = routed[0]
        job = self.farm.get(job_id)
        if job is None:
            self._error(404, f"no such job: {job_id}")
            return
        cancelled = self.farm.cancel(job_id)
        with self.farm.lock:
            snapshot = job.snapshot()
        snapshot["cancelled"] = cancelled
        self._send_json(200, snapshot)

    # -- streaming ---------------------------------------------------------------

    def _stream_events(self, job, start: int) -> None:
        """NDJSON: one event object per line until the job is terminal.

        No Content-Length — the response is delimited by connection close
        (we set ``Connection: close`` so HTTP/1.1 clients read to EOF).
        Each line is flushed as the event lands, so a client following a
        running job sees per-cell progress live.
        """
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        try:
            for event in job.iter_events(start):
                self.wfile.write((json.dumps(event, sort_keys=True) + "\n").encode())
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to clean up


class FarmHTTPServer(ThreadingHTTPServer):
    """Threaded server tuned for bursty client pools: the stdlib default
    listen backlog of 5 drops connections (RST) the moment more than a
    handful of clients submit at once."""

    daemon_threads = True
    request_queue_size = 128


def build_handler(farm: SimulationFarm, *, quiet: bool = True):
    """A handler class bound to ``farm`` (one per server)."""
    return type(
        "BoundFarmRequestHandler", (FarmRequestHandler,),
        {"farm": farm, "quiet": quiet},
    )


def serve_farm(
    farm: SimulationFarm,
    host: str = "127.0.0.1",
    port: int = 8032,
    *,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Create (but do not start) an HTTP server bound to ``farm``.

    ``port=0`` picks an ephemeral port; read it back from
    ``server.server_address``.  Call ``serve_forever()`` (possibly on a
    thread) to serve, ``shutdown()`` to stop.
    """
    return FarmHTTPServer((host, port), build_handler(farm, quiet=quiet))


def serve_farm_in_thread(
    farm: SimulationFarm, host: str = "127.0.0.1", port: int = 0, *, quiet: bool = True
) -> Tuple[ThreadingHTTPServer, threading.Thread]:
    """Convenience for tests/examples: server + started daemon thread."""
    server = serve_farm(farm, host, port, quiet=quiet)
    thread = threading.Thread(
        target=server.serve_forever, name="splice-farm-http", daemon=True
    )
    thread.start()
    return server, thread
