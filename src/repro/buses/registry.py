"""Registry mapping bus names onto slave bundles and master models.

The Splice engine and the SoC builder look buses up by the same name used in
the ``%bus_type`` directive.  The extension API registers additional buses
here (Chapter 7).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.buses.apb import APBMaster, APBSlaveBundle
from repro.buses.base import BusMaster, SlaveBundle
from repro.buses.fcb import FCBMaster, FCBSlaveBundle
from repro.buses.opb import OPBMaster, OPBSlaveBundle
from repro.buses.plb import PLBMaster, PLBSlaveBundle

#: Factories building the slave-side signal bundle for each bus.
BUS_SLAVE_BUNDLES: Dict[str, Callable[..., SlaveBundle]] = {
    "plb": PLBSlaveBundle,
    "opb": OPBSlaveBundle,
    "fcb": FCBSlaveBundle,
    "apb": APBSlaveBundle,
}

#: Factories building the master model for each bus.
BUS_MASTERS: Dict[str, Callable[..., BusMaster]] = {
    "plb": PLBMaster,
    "opb": OPBMaster,
    "fcb": FCBMaster,
    "apb": APBMaster,
}


def register_bus(name: str, bundle_factory, master_factory) -> None:
    """Register a new bus model (used by the extension API)."""
    key = name.lower()
    BUS_SLAVE_BUNDLES[key] = bundle_factory
    BUS_MASTERS[key] = master_factory


def create_bus(
    name: str,
    *,
    data_width: int,
    func_id_width: int,
    base_address: int = 0,
    prefix: str = "bus",
) -> Tuple[SlaveBundle, BusMaster]:
    """Instantiate the slave bundle and master model for ``name``.

    The slave bundle is sized from the peripheral's function-identifier width
    so the chip enables / select lines can address every function slot.
    """
    key = name.lower()
    if key not in BUS_SLAVE_BUNDLES:
        known = ", ".join(sorted(BUS_SLAVE_BUNDLES))
        raise KeyError(f"unknown bus {name!r} (known: {known})")

    num_slots = 1 << func_id_width
    if key in ("plb", "opb"):
        bundle = BUS_SLAVE_BUNDLES[key](f"{prefix}.{key}", data_width=data_width, num_slots=num_slots)
    elif key == "fcb":
        bundle = BUS_SLAVE_BUNDLES[key](f"{prefix}.{key}", data_width=data_width, func_id_width=func_id_width)
    elif key == "apb":
        bundle = BUS_SLAVE_BUNDLES[key](f"{prefix}.{key}", data_width=data_width)
    else:
        bundle = BUS_SLAVE_BUNDLES[key](f"{prefix}.{key}", data_width=data_width)

    master = BUS_MASTERS[key](f"{prefix}.{key}_master", bundle, base_address=base_address)
    return bundle, master
