"""IBM CoreConnect Processor Local Bus (PLB) model.

The slave-side protocol follows Figures 4.5 and 4.6: the bus asserts a
one-hot chip-enable (``RD_CE`` / ``WR_CE``) plus ``BE`` and strobes
``RD_REQ`` / ``WR_REQ`` for one cycle, then holds the enables steady until
the peripheral answers with ``RD_ACK`` / ``WR_ACK``.

The master model charges two arbitration cycles per request (the PLB is a
shared, arbitrated processor bus) and supports three transfer styles:

* single-word reads/writes (the only style the PowerPC 405 can issue
  directly, Section 4.3.1),
* back-to-back streaming used for DMA payload movement, and
* DMA block transfers, which first pay the four control transactions the
  Xilinx PLB DMA engine requires (Section 9.2.1) and then stream the payload
  without per-word arbitration.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.buses.base import BusMaster, BusTransaction, SlaveBundle, TransactionKind
from repro.rtl.fsm import (
    Active,
    Call,
    Exec,
    Goto,
    If,
    Pulse,
    Redispatch,
    Schedule,
    ScheduleZero,
)
from repro.buses.base import DMA_KINDS as _DMA_KINDS, WRITE_KINDS as _WRITE_KINDS
from repro.rtl.signal import Signal, schedule_zero

#: Transfer styles that stream beats back-to-back without re-arbitration.
_STREAMING_KINDS = (
    TransactionKind.BURST_READ,
    TransactionKind.BURST_WRITE,
    TransactionKind.DMA_READ,
    TransactionKind.DMA_WRITE,
)


class PLBSlaveBundle(SlaveBundle):
    """Signals visible to a PLB-attached peripheral (slave port)."""

    def __init__(self, name: str, data_width: int = 32, num_slots: int = 16) -> None:
        super().__init__(name, data_width, select_width=num_slots)
        self.num_slots = num_slots
        self.rst = Signal(f"{name}.RST", 1)
        self.rd_req = Signal(f"{name}.RD_REQ", 1)
        self.wr_req = Signal(f"{name}.WR_REQ", 1)
        self.be = Signal(f"{name}.BE", data_width // 8)
        self.rd_ce = Signal(f"{name}.RD_CE", num_slots)
        self.wr_ce = Signal(f"{name}.WR_CE", num_slots)
        self.data_to_slave = Signal(f"{name}.DATA_IN", data_width)
        self.data_from_slave = Signal(f"{name}.DATA_OUT", data_width)
        self.rd_ack = Signal(f"{name}.RD_ACK", 1)
        self.wr_ack = Signal(f"{name}.WR_ACK", 1)

    def signals(self) -> List[Signal]:
        return [
            self.rst,
            self.rd_req,
            self.wr_req,
            self.be,
            self.rd_ce,
            self.wr_ce,
            self.data_to_slave,
            self.data_from_slave,
            self.rd_ack,
            self.wr_ack,
        ]

    def selected_slot(self, write: bool) -> int:
        """Decode the one-hot chip enable into a slot number (-1 when idle)."""
        value = self.wr_ce.value if write else self.rd_ce.value
        if value == 0:
            return -1
        return value.bit_length() - 1


class PLBMaster(BusMaster):
    """Drives a :class:`PLBSlaveBundle` on behalf of the processor."""

    ARBITRATION_CYCLES = 2
    RECOVERY_CYCLES = 1
    #: Cycles charged for each of the DMA engine's control transactions.
    DMA_SETUP_TRANSACTION_CYCLES = 4
    #: Number of control transactions needed to set up / tear down DMA.
    DMA_SETUP_TRANSACTIONS = 4

    def __init__(
        self,
        name: str,
        slave: PLBSlaveBundle,
        base_address: int = 0,
        fsm_backend: Optional[str] = None,
    ) -> None:
        super().__init__(name, slave, fsm_backend=fsm_backend)
        self.base_address = base_address
        self._phase = "idle"
        self._delay = 0
        self._delay_until = None
        self._word_index = 0
        # Per-transaction facts hoisted out of the per-cycle FSM: the write
        # direction and streaming style never change mid-transaction —
        # re-deriving them every cycle (enum properties) was measurable
        # harness overhead on every kernel.
        self._active_write = False
        self._active_streaming = False
        self._request_signals = (
            slave.rd_req, slave.wr_req, slave.rd_ce, slave.wr_ce,
            slave.be, slave.data_to_slave,
        )
        self._register_tick()

    def _wake_signals(self):
        # A parked PLB master resumes only when the peripheral acknowledges.
        return [self.slave.wr_ack, self.slave.rd_ack]

    # -- FSM IR ----------------------------------------------------------------

    def _fsm_signals(self) -> Dict[str, object]:
        slave = self.slave
        return {
            "wr_req": slave.wr_req, "rd_req": slave.rd_req,
            "wr_ce": slave.wr_ce, "rd_ce": slave.rd_ce, "be": slave.be,
            "d2s": slave.data_to_slave, "dfs": slave.data_from_slave,
            "wr_ack": slave.wr_ack, "rd_ack": slave.rd_ack,
        }

    def _fsm_groups(self) -> Dict[str, tuple]:
        return {"req_group": self._request_signals}

    def _fsm_helpers(self) -> Dict[str, object]:
        return {"h_complete": self._complete, "h_slot_for": self._slot_for}

    def _fsm_consts(self) -> Dict[str, int]:
        slave = self.slave
        return {
            **super()._fsm_consts(),
            "BASEADDR": self.base_address,
            "WORDB": slave.data_width // 8,
            "NSLOTS": slave.num_slots,
            "BEMASK": (1 << (slave.data_width // 8)) - 1,
        }

    def _fsm_external_states(self) -> tuple:
        # _begin() enters arbitration (or the DMA control-transaction
        # countdown) from Python when a transaction starts.
        return ("arbitrate", "dma_setup")

    def _fsm_protocol_states(self) -> Dict[str, tuple]:
        """The PLB request/acknowledge protocol as FSM IR.

        States are declared hottest-first (a transaction spends most cycles
        waiting for an acknowledge).  The per-beat advance (``_after_beat``)
        is fully inline: streaming beats keep the enables and present the
        next word; single-word semantics re-arbitrate per beat.
        """
        after_beat = (
            Exec("tot = len(m.active.data) if m._active_write else m.active.word_count"),
            If(
                "m._word_index < tot",
                (
                    If(
                        "m._active_streaming",
                        (
                            # Back-to-back beat: keep the enables, present
                            # the next word; parked until the acknowledge.
                            If(
                                "m._active_write",
                                (
                                    Schedule("d2s", "m.active.data[m._word_index]"),
                                    Pulse("wr_req"),
                                ),
                                orelse=(Pulse("rd_req"),),
                            ),
                            Goto("wait_ack"),
                            Active("False"),
                        ),
                        orelse=(
                            # Single-word semantics: re-arbitrate per beat.
                            ScheduleZero("req_group"),
                            Exec("m._delay = ARB"),
                            Goto("arbitrate"),
                            Active("True"),
                        ),
                    ),
                ),
                orelse=(
                    ScheduleZero("req_group"),
                    Exec("m._delay = RECOV"),
                    Goto("recover"),
                    Active("True"),
                ),
            ),
        )
        request = (
            Exec("txn = m.active"),
            Exec("slot = (txn.address - BASEADDR) // WORDB"),
            If(
                "not (0 <= slot < NSLOTS)",
                # Out-of-range decode: the retained helper raises with the
                # full diagnostic.
                (Call("h_slot_for", args="txn.address"),),
            ),
            Schedule("be", "BEMASK"),
            If(
                "m._active_write",
                (
                    # REQ strobes for a single cycle (pulse); CE/BE/DATA hold.
                    Pulse("wr_req"),
                    Schedule("wr_ce", "1 << slot"),
                    Schedule("d2s", "txn.data[m._word_index]"),
                ),
                orelse=(
                    Pulse("rd_req"),
                    Schedule("rd_ce", "1 << slot"),
                ),
            ),
            Goto("wait_ack"),
            Active("False"),
        )
        return {
            "wait_ack": (
                If(
                    "m._active_write",
                    (
                        If(
                            "wr_ack._value",
                            (Exec("m._word_index += 1"), *after_beat),
                        ),
                    ),
                    orelse=(
                        If(
                            "rd_ack._value",
                            (
                                Exec("m.active.results.append(dfs._value)"),
                                Exec("m._word_index += 1"),
                                *after_beat,
                            ),
                        ),
                    ),
                ),
            ),
            "arbitrate": self._fsm_countdown((Goto("request"), Redispatch())),
            "dma_setup": self._fsm_countdown((Goto("request"), Redispatch())),
            "request": request,
            "recover": self._fsm_countdown(
                (
                    ScheduleZero("req_group"),
                    Call("h_complete", args="m.active"),
                    Goto("idle"),
                    Active("True"),
                )
            ),
        }

    # -- helpers ---------------------------------------------------------------

    def _slot_for(self, address: int) -> int:
        offset = address - self.base_address
        slot = offset // (self.slave.data_width // 8)
        if not 0 <= slot < self.slave.num_slots:
            raise ValueError(
                f"address 0x{address:x} does not decode to a slot of peripheral at "
                f"0x{self.base_address:x} ({self.slave.num_slots} slots)"
            )
        return slot

    def _clear_request(self) -> None:
        schedule_zero(self._request_signals)

    # -- FSM ----------------------------------------------------------------------

    def _begin(self, transaction: BusTransaction) -> None:
        self._word_index = 0
        kind = transaction.kind
        self._active_write = kind in _WRITE_KINDS
        self._active_streaming = kind in _STREAMING_KINDS
        if kind in _DMA_KINDS:
            self._phase = "dma_setup"
            self._delay = self.DMA_SETUP_TRANSACTIONS * self.DMA_SETUP_TRANSACTION_CYCLES
        else:
            self._phase = "arbitrate"
            self._delay = self.ARBITRATION_CYCLES

    def _tick(self, transaction: BusTransaction) -> bool:
        # Ordered by per-cycle frequency: a transaction spends most cycles
        # waiting for an acknowledge, then counting delay cycles.  The return
        # value is the wait-state-elision activity flag: because the REQ
        # strobes are kernel-cleared pulses, the FSM is fully parked (False)
        # from the cycle after the request until the peripheral acknowledges.
        phase = self._phase
        slave = self.slave

        if phase == "wait_ack":
            if self._active_write:
                if slave.wr_ack._value:
                    self._word_index += 1
                    return self._after_beat(transaction)
            elif slave.rd_ack._value:
                transaction.results.append(slave.data_from_slave._value)
                self._word_index += 1
                return self._after_beat(transaction)
            return False

        if phase == "arbitrate" or phase == "dma_setup":
            # Pure countdown, expressed against the (elision-proof) cycle
            # counter so the master can sleep through it under timed wakes.
            until = self._delay_until
            if until is None:
                self._delay_until = until = self._cycle + self._delay
            if self._cycle < until:
                return self._sleep_until(until)
            self._delay_until = None
            self._phase = "request"
            # fall through to issue the first beat this cycle
        elif phase == "recover":
            until = self._delay_until
            if until is None:
                self._delay_until = until = self._cycle + self._delay
            if self._cycle < until:
                return self._sleep_until(until)
            self._delay_until = None
            self._clear_request()
            self._complete(transaction)
            self._phase = "idle"
            return True

        if self._phase == "request":
            slot = self._slot_for(transaction.address)
            onehot = 1 << slot
            slave.be.schedule((1 << (slave.data_width // 8)) - 1)
            if self._active_write:
                # REQ strobes for a single cycle (pulse); CE/BE/DATA stay held.
                slave.wr_req.pulse(1)
                slave.wr_ce.schedule(onehot)
                slave.data_to_slave.schedule(transaction.data[self._word_index])
            else:
                slave.rd_req.pulse(1)
                slave.rd_ce.schedule(onehot)
            self._phase = "wait_ack"
            return False  # parked until the acknowledge wakes us
        return True

    def _after_beat(self, transaction: BusTransaction) -> bool:
        """Advance to the next word or finish; returns the activity flag."""
        slave = self.slave
        total = len(transaction.data) if self._active_write else transaction.word_count
        if self._word_index < total:
            if self._active_streaming:
                # Back-to-back beat: keep the enables, present the next word.
                if self._active_write:
                    slave.data_to_slave.schedule(transaction.data[self._word_index])
                    slave.wr_req.pulse(1)
                else:
                    slave.rd_req.pulse(1)
                self._phase = "wait_ack"
                return False  # parked until the next acknowledge
            # Single-word semantics: re-arbitrate for every beat.
            self._clear_request()
            self._phase = "arbitrate"
            self._delay = self.ARBITRATION_CYCLES
            self._phase_after_arb_request(transaction)
            return True
        self._clear_request()
        self._phase = "recover"
        self._delay = self.RECOVERY_CYCLES
        return True

    def _phase_after_arb_request(self, transaction: BusTransaction) -> None:
        """Hook kept separate so subclasses (OPB) can add bridge latency."""
        self._phase = "arbitrate"
