"""Xilinx Fabric Co-processor Bus (FCB) model.

The FCB is a pseudo-asynchronous 32-bit co-processor interconnect that is
*not* memory mapped: transfers are triggered by FCB-specific opcodes and go
straight to a single attached device, so there is no address decode and no
shared-bus arbitration (Section 2.3.2).  Besides single-word loads and
stores, the interface natively supports double- and quad-word burst
transmissions, which Splice exploits for array transfers.

Because Splice multiplexes several logical functions behind the single FCB
attachment point, the master presents a function-select field alongside each
request; the generated adapter forwards it as the SIS ``FUNC_ID``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.buses.base import BusMaster, BusTransaction, SlaveBundle, TransactionKind
from repro.rtl.fsm import Active, Call, Exec, Goto, If, Pulse, Schedule
from repro.rtl.signal import Signal


class FCBSlaveBundle(SlaveBundle):
    """Signals visible to the FCB-attached peripheral."""

    def __init__(self, name: str, data_width: int = 32, func_id_width: int = 4) -> None:
        super().__init__(name, data_width, select_width=func_id_width)
        self.func_id_width = func_id_width
        self.rst = Signal(f"{name}.RST", 1)
        self.req = Signal(f"{name}.REQ", 1)
        self.is_write = Signal(f"{name}.IS_WRITE", 1)
        self.func_sel = Signal(f"{name}.FUNC_SEL", func_id_width)
        self.burst_len = Signal(f"{name}.BURST_LEN", 3)
        self.data_to_slave = Signal(f"{name}.DATA_IN", data_width)
        self.data_valid = Signal(f"{name}.DATA_VALID", 1)
        self.data_from_slave = Signal(f"{name}.DATA_OUT", data_width)
        self.ack = Signal(f"{name}.ACK", 1)
        self.resp_valid = Signal(f"{name}.RESP_VALID", 1)

    def signals(self) -> List[Signal]:
        return [
            self.rst,
            self.req,
            self.is_write,
            self.func_sel,
            self.burst_len,
            self.data_to_slave,
            self.data_valid,
            self.data_from_slave,
            self.ack,
            self.resp_valid,
        ]


class FCBMaster(BusMaster):
    """Drives an :class:`FCBSlaveBundle` via co-processor opcodes.

    Transaction addresses are interpreted as raw function identifiers (the
    FCB is not memory mapped).  Burst transactions present up to four words
    under a single request; the device acknowledges each beat and the next
    beat is presented immediately, giving the low per-word latency the paper
    attributes to the interface.
    """

    #: The co-processor port is private to the CPU: no arbitration, only the
    #: opcode issue itself.
    ARBITRATION_CYCLES = 0
    RECOVERY_CYCLES = 0
    #: Largest natively supported burst (quad-word, Section 2.3.2).
    MAX_BURST_WORDS = 4

    def __init__(
        self,
        name: str,
        slave: FCBSlaveBundle,
        base_address: int = 0,
        fsm_backend: Optional[str] = None,
    ) -> None:
        super().__init__(name, slave, fsm_backend=fsm_backend)
        self.base_address = base_address  # unused; kept for interface parity
        self._phase = "idle"
        self._word_index = 0
        # Per-transaction facts hoisted out of the per-cycle FSM (see
        # PLBMaster for rationale): direction, total beats, strobe pending.
        self._active_write = False
        self._active_total = 0
        self._register_tick()

    def _wake_signals(self):
        # A parked FCB master resumes on the beat acknowledge or read response.
        return [self.slave.ack, self.slave.resp_valid]

    # -- FSM IR ----------------------------------------------------------------

    def _fsm_signals(self) -> Dict[str, object]:
        slave = self.slave
        return {
            "req": slave.req, "is_write": slave.is_write,
            "func_sel": slave.func_sel, "burst_len": slave.burst_len,
            "d2s": slave.data_to_slave, "data_valid": slave.data_valid,
            "dfs": slave.data_from_slave, "ack": slave.ack,
            "resp_valid": slave.resp_valid,
        }

    def _fsm_helpers(self) -> Dict[str, object]:
        return {"h_complete": self._complete, "h_finish": self._finish}

    def _fsm_consts(self) -> Dict[str, int]:
        return {**super()._fsm_consts(), "MAXB": self.MAX_BURST_WORDS}

    def _fsm_external_states(self) -> tuple:
        return ("request",)  # entered by _begin()

    def _fsm_protocol_states(self) -> Dict[str, tuple]:
        """The FCB opcode protocol as FSM IR (request / wait_ack / next_beat).

        The machine is parked (``Active(False)``) from each request or beat
        presentation until ACK / RESP_VALID wakes it; burst beats drop
        DATA_VALID for one delimiting cycle between acknowledges, exactly as
        the hand-written machine does.
        """
        return {
            "wait_ack": (
                If(
                    "m._active_write",
                    (
                        If(
                            "ack._value",
                            (
                                Exec("m._word_index += 1"),
                                If(
                                    "m._word_index < m._active_total",
                                    (
                                        # Delimit consecutive burst beats.
                                        Schedule("data_valid", "0"),
                                        Goto("next_beat"),
                                    ),
                                    orelse=(Call("h_finish", args="m.active"),),
                                ),
                                Active("True"),
                            ),
                        ),
                    ),
                    orelse=(
                        If(
                            "resp_valid._value",
                            (
                                Exec("m.active.results.append(dfs._value)"),
                                Exec("m._word_index += 1"),
                                If(
                                    "m._word_index >= m._active_total",
                                    (Call("h_finish", args="m.active"),),
                                ),
                                Active("True"),
                            ),
                        ),
                    ),
                ),
            ),
            "request": (
                # REQ strobes for one cycle (kernel-cleared pulse).
                Pulse("req"),
                Schedule("is_write", "1 if m._active_write else 0"),
                Schedule("func_sel", "m.active.address"),
                Schedule("burst_len", "min(m._active_total, MAXB)"),
                If(
                    "m._active_write",
                    (
                        Schedule("d2s", "m.active.data[0]"),
                        Schedule("data_valid", "1"),
                    ),
                ),
                Goto("wait_ack"),
                Active("False"),
            ),
            "next_beat": (
                Schedule("d2s", "m.active.data[m._word_index]"),
                Schedule("data_valid", "1"),
                Goto("wait_ack"),
                Active("False"),
            ),
        }

    def _begin(self, transaction: BusTransaction) -> None:
        if transaction.kind.is_dma:
            raise ValueError("the FCB is not memory accessible and therefore has no DMA support")
        is_write = transaction.kind.is_write
        word_total = len(transaction.data) if is_write else transaction.word_count
        if word_total > self.MAX_BURST_WORDS and transaction.kind in (
            TransactionKind.BURST_READ,
            TransactionKind.BURST_WRITE,
        ):
            raise ValueError(
                f"FCB bursts move at most {self.MAX_BURST_WORDS} words, got {word_total}"
            )
        self._word_index = 0
        self._active_write = is_write
        self._active_total = word_total
        self._phase = "request"

    def _tick(self, transaction: BusTransaction) -> bool:
        # Returns the wait-state-elision activity flag: False only while the
        # request is held waiting for ACK / RESP_VALID (see PLBMaster._tick).
        slave = self.slave
        phase = self._phase
        total = self._active_total

        if phase == "wait_ack":
            if self._active_write:
                if slave.ack._value:
                    self._word_index += 1
                    if self._word_index < total:
                        # Drop DATA_VALID for one cycle so the peripheral can
                        # delimit consecutive beats of a burst.
                        slave.data_valid.schedule(0)
                        self._phase = "next_beat"
                    else:
                        self._finish(transaction)
                    return True
            elif slave.resp_valid._value:
                transaction.results.append(slave.data_from_slave._value)
                self._word_index += 1
                if self._word_index >= total:
                    self._finish(transaction)
                return True
            return False

        if phase == "request":
            # REQ strobes for one cycle (kernel-cleared pulse).
            slave.req.pulse(1)
            slave.is_write.schedule(1 if self._active_write else 0)
            slave.func_sel.schedule(transaction.address)
            slave.burst_len.schedule(min(total, self.MAX_BURST_WORDS))
            if self._active_write:
                slave.data_to_slave.schedule(transaction.data[0])
                slave.data_valid.schedule(1)
            self._phase = "wait_ack"
            return False  # parked until ACK / RESP_VALID wakes us

        if phase == "next_beat":
            slave.data_to_slave.schedule(transaction.data[self._word_index])
            slave.data_valid.schedule(1)
            self._phase = "wait_ack"
            return False  # parked until the next beat acknowledge
        return True

    def _finish(self, transaction: BusTransaction) -> None:
        slave = self.slave
        slave.data_valid.next = 0
        slave.data_to_slave.next = 0
        slave.is_write.next = 0
        slave.func_sel.next = 0
        slave.burst_len.next = 0
        self._complete(transaction)
        self._phase = "idle"
