"""IBM CoreConnect On-chip Peripheral Bus (OPB) model.

The OPB carries the same request/acknowledge slave protocol as the PLB but
peripherals reach the processor through a PLB-to-OPB bridge, so every
transaction pays additional arbitration latency (Section 2.3.2: "feature
equality with the more complex PLB albeit at a somewhat reduced level of
performance").  Splice only generates simple read/write support for the OPB,
so the master model rejects burst and DMA transactions outright.
"""

from __future__ import annotations

from repro.buses.base import BusTransaction
from repro.buses.plb import PLBMaster, PLBSlaveBundle


class OPBSlaveBundle(PLBSlaveBundle):
    """OPB slave signals (structurally identical to the PLB slave port)."""


class OPBMaster(PLBMaster):
    """Drives an :class:`OPBSlaveBundle`, adding bridge latency per request.

    The five-cycle arbitration charge makes this master the biggest
    beneficiary of the inherited timed-wake countdown: under the compiled
    kernel it sleeps through the bridge crossing of every beat instead of
    decrementing a counter per cycle.
    """

    #: PLB arbitration plus the PLB-to-OPB bridge crossing.
    ARBITRATION_CYCLES = 5
    RECOVERY_CYCLES = 1

    def _begin(self, transaction: BusTransaction) -> None:
        if transaction.kind.is_dma:
            raise ValueError("the OPB has no DMA support in this Splice implementation")
        if transaction.kind.name.startswith("BURST"):
            raise ValueError("the OPB adapter only supports simple read and write operations")
        super()._begin(transaction)
