"""Cycle-accurate models of the embedded bus interfaces discussed in the paper.

Each bus is split into a *slave bundle* (the signals a peripheral sees) and a
*bus master* (an RTL module that drives the slave bundle according to the
native protocol on behalf of the processor).  Generated Splice adapters and
hand-coded baseline peripherals both sit on the slave side; the
:mod:`repro.soc` processor model submits :class:`BusTransaction` objects to
the master side.

Supported interfaces:

* ``plb`` — IBM CoreConnect Processor Local Bus (Sections 2.3.2, 4.3.1)
* ``opb`` — IBM CoreConnect On-chip Peripheral Bus (bridged off the PLB)
* ``fcb`` — Xilinx Fabric Co-processor Bus (opcode-driven, burst capable)
* ``apb`` — AMBA Peripheral Bus (strictly synchronous)
"""

from repro.buses.base import (
    BusMaster,
    BusTransaction,
    PollOp,
    SlaveBundle,
    TransactionKind,
    TransactionOp,
    TransactionScript,
)
from repro.buses.plb import PLBMaster, PLBSlaveBundle
from repro.buses.opb import OPBMaster, OPBSlaveBundle
from repro.buses.fcb import FCBMaster, FCBSlaveBundle
from repro.buses.apb import APBMaster, APBSlaveBundle
from repro.buses.memory import SystemMemory
from repro.buses.registry import BUS_MASTERS, BUS_SLAVE_BUNDLES, create_bus

__all__ = [
    "BusMaster",
    "BusTransaction",
    "TransactionKind",
    "TransactionOp",
    "PollOp",
    "TransactionScript",
    "SlaveBundle",
    "PLBMaster",
    "PLBSlaveBundle",
    "OPBMaster",
    "OPBSlaveBundle",
    "FCBMaster",
    "FCBSlaveBundle",
    "APBMaster",
    "APBSlaveBundle",
    "SystemMemory",
    "BUS_MASTERS",
    "BUS_SLAVE_BUNDLES",
    "create_bus",
]
