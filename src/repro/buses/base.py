"""Shared machinery for bus masters and slave bundles.

A :class:`BusTransaction` describes one logical bus operation (a single-word
read or write, a burst, or a DMA block transfer).  A :class:`BusMaster`
consumes queued transactions and drives its slave bundle cycle-by-cycle per
the native protocol; the processor model waits for ``transaction.done``.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.rtl.module import Module


class TransactionKind(enum.Enum):
    """The kinds of bus operations generated drivers can issue."""

    READ = "read"
    WRITE = "write"
    BURST_READ = "burst_read"
    BURST_WRITE = "burst_write"
    DMA_READ = "dma_read"
    DMA_WRITE = "dma_write"

    @property
    def is_write(self) -> bool:
        return self in (TransactionKind.WRITE, TransactionKind.BURST_WRITE, TransactionKind.DMA_WRITE)

    @property
    def is_dma(self) -> bool:
        return self in (TransactionKind.DMA_READ, TransactionKind.DMA_WRITE)


@dataclass
class BusTransaction:
    """One logical bus operation submitted by a driver.

    ``address`` is the byte address of the targeted function slot on memory
    mapped buses; on the FCB it is the raw function identifier.  Write data
    is supplied in ``data`` (one entry per bus word); read results are filled
    into ``results``.
    """

    kind: TransactionKind
    address: int
    data: List[int] = field(default_factory=list)
    word_count: int = 1
    done: bool = False
    results: List[int] = field(default_factory=list)
    issue_cycle: Optional[int] = None
    complete_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind.is_write and not self.data:
            raise ValueError("write transactions require data")
        if self.kind.is_write:
            self.word_count = len(self.data)
        if self.word_count < 1:
            raise ValueError("transactions must move at least one word")

    @property
    def latency(self) -> Optional[int]:
        """Cycles from submission to completion (``None`` until done)."""
        if self.issue_cycle is None or self.complete_cycle is None:
            return None
        return self.complete_cycle - self.issue_cycle

    @property
    def result(self) -> int:
        """First result word of a completed read."""
        if not self.results:
            raise ValueError("transaction has no results (not a read, or not complete)")
        return self.results[0]


class SlaveBundle:
    """Base class for the signal bundle a peripheral's slave port exposes."""

    def __init__(self, name: str, data_width: int, select_width: int) -> None:
        self.name = name
        self.data_width = data_width
        self.select_width = select_width

    def signals(self):  # pragma: no cover - overridden by each bus
        raise NotImplementedError


class BusMaster(Module):
    """Common transaction queue / bookkeeping for every bus master model.

    Subclasses implement :meth:`_tick`, a clocked process advancing the
    native-protocol state machine one cycle.  Masters are fully clocked —
    they register no combinational processes — so on cycles where a master
    sits idle and schedules no differing signal value, the event-driven
    kernel's settle-skipping fast path applies.
    """

    #: Cycles of master-side overhead (arbitration, address decode) charged
    #: before the slave sees each new request.  Subclasses override.
    ARBITRATION_CYCLES = 0
    #: Idle cycles inserted after a transaction completes.
    RECOVERY_CYCLES = 1

    def __init__(self, name: str, slave: SlaveBundle) -> None:
        super().__init__(name)
        self.slave = slave
        self._queue: Deque[BusTransaction] = deque()
        self.active: Optional[BusTransaction] = None
        self.completed: List[BusTransaction] = []
        self._cycle = 0
        self.total_busy_cycles = 0
        self.clocked(self._base_tick)

    # -- driver-facing API ----------------------------------------------------

    def submit(self, transaction: BusTransaction) -> BusTransaction:
        """Queue ``transaction`` for execution; returns it for convenience."""
        transaction.issue_cycle = self._cycle
        self._queue.append(transaction)
        return transaction

    @property
    def idle(self) -> bool:
        """True when no transaction is active or pending."""
        return self.active is None and not self._queue

    @property
    def pending(self) -> int:
        return len(self._queue) + (1 if self.active is not None else 0)

    # -- statistics -----------------------------------------------------------

    @property
    def transactions_completed(self) -> int:
        return len(self.completed)

    def utilization(self) -> float:
        """Fraction of simulated cycles during which the bus was busy."""
        if self._cycle == 0:
            return 0.0
        return self.total_busy_cycles / self._cycle

    # -- simulation -------------------------------------------------------------

    def _base_tick(self) -> None:
        self._cycle += 1
        if self.active is None and self._queue:
            self.active = self._queue.popleft()
            if self.active.issue_cycle is None:
                self.active.issue_cycle = self._cycle
            self._begin(self.active)
        if self.active is not None:
            self.total_busy_cycles += 1
            self._tick(self.active)

    def _complete(self, transaction: BusTransaction) -> None:
        """Mark the active transaction finished."""
        transaction.done = True
        transaction.complete_cycle = self._cycle
        self.completed.append(transaction)
        self.active = None

    # -- subclass hooks -------------------------------------------------------

    def _begin(self, transaction: BusTransaction) -> None:
        """Called once when ``transaction`` becomes active."""

    def _tick(self, transaction: BusTransaction) -> None:  # pragma: no cover - abstract
        raise NotImplementedError
