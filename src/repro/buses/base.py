"""Shared machinery for bus masters and slave bundles.

A :class:`BusTransaction` describes one logical bus operation (a single-word
read or write, a burst, or a DMA block transfer).  A :class:`BusMaster`
consumes queued transactions and drives its slave bundle cycle-by-cycle per
the native protocol; the processor model waits for ``transaction.done``.

Transaction scripts
-------------------

A driver call is not one transaction but a *sequence* — every input write
beat, an optional ``CALC_DONE`` poll loop, every result read beat, with the
processor's inter-operation gap between consecutive operations.  Driving
that sequence one ``submit``/wait/``step(gap)`` round trip at a time keeps
the whole call on the Python side of the kernel boundary.  A
:class:`TransactionScript` instead hands the master the full sequence up
front (:meth:`BusMaster.submit_script`): the master consumes it inside its
own clocked process — charging the same inter-operation gaps, re-issuing
poll reads until the polled bit is set, and aborting the remainder when the
poll limit is hit — and reports completion by incrementing its
``script_count`` signal, which the processor waits on with a single
:class:`~repro.rtl.simulator.WaitCondition`.  The scripted execution is
cycle-for-cycle identical to the equivalent sequence of blocking
``execute`` calls (proven by ``tests/test_harness_scripting.py``).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Union

from repro.rtl.fsm import (
    Active,
    BoundFsm,
    Call,
    Exec,
    FsmSpec,
    If,
    Sleep,
    StateDispatch,
    resolve_backend,
)
from repro.rtl.module import Module


class TransactionKind(enum.Enum):
    """The kinds of bus operations generated drivers can issue."""

    READ = "read"
    WRITE = "write"
    BURST_READ = "burst_read"
    BURST_WRITE = "burst_write"
    DMA_READ = "dma_read"
    DMA_WRITE = "dma_write"

    @property
    def is_write(self) -> bool:
        return self in WRITE_KINDS

    @property
    def is_dma(self) -> bool:
        return self in DMA_KINDS


#: Membership tuples for the hot per-transaction checks: the enum properties
#: above stay as API, but per-call tuple construction was measurable in the
#: transaction-construction path on every kernel.  Tuples beat frozensets
#: here — ``in`` short-circuits on identity for enum members, skipping the
#: (surprisingly slow) Enum.__hash__.
WRITE_KINDS = (TransactionKind.WRITE, TransactionKind.BURST_WRITE, TransactionKind.DMA_WRITE)
DMA_KINDS = (TransactionKind.DMA_READ, TransactionKind.DMA_WRITE)


@dataclass(slots=True)
class BusTransaction:
    """One logical bus operation submitted by a driver.

    ``address`` is the byte address of the targeted function slot on memory
    mapped buses; on the FCB it is the raw function identifier.  Write data
    is supplied in ``data`` (one entry per bus word); read results are filled
    into ``results``.
    """

    kind: TransactionKind
    address: int
    data: List[int] = field(default_factory=list)
    word_count: int = 1
    done: bool = False
    results: List[int] = field(default_factory=list)
    issue_cycle: Optional[int] = None
    complete_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind in WRITE_KINDS:
            if not self.data:
                raise ValueError("write transactions require data")
            self.word_count = len(self.data)
        if self.word_count < 1:
            raise ValueError("transactions must move at least one word")

    @property
    def latency(self) -> Optional[int]:
        """Cycles from submission to completion (``None`` until done)."""
        if self.issue_cycle is None or self.complete_cycle is None:
            return None
        return self.complete_cycle - self.issue_cycle

    @property
    def result(self) -> int:
        """First result word of a completed read."""
        if not self.results:
            raise ValueError("transaction has no results (not a read, or not complete)")
        return self.results[0]


@dataclass(slots=True)
class TransactionOp:
    """One scripted bus operation: run ``transaction`` to completion."""

    transaction: BusTransaction


@dataclass(slots=True)
class PollOp:
    """One scripted poll loop: re-issue a single-word read until satisfied.

    The master clones a fresh ``(kind, address)`` read for each attempt (so
    per-attempt results never accumulate), charges the script's gap between
    attempts exactly as software polling did, and considers the loop finished
    when ``result & mask`` is non-zero.  After ``limit`` unsatisfied attempts
    the script's remaining operations are skipped and
    ``TransactionScript.poll_failed`` is set — the caller raises, matching
    the software ``WAIT_FOR_RESULTS`` failure path.
    """

    kind: TransactionKind
    address: int
    mask: int
    limit: int


ScriptOp = Union[TransactionOp, PollOp]


class TransactionScript:
    """A full driver-call beat sequence queued on a master at once.

    ``gap`` is the inter-operation gap (in cycles) charged after every
    completed operation, including the last — mirroring the blocking
    processor model, which steps the gap after every ``execute``.  ``done``
    flips when the trailing gap has elapsed; ``transactions`` counts every
    completed bus transaction (poll attempts included), ``polls`` counts
    poll attempts alone.  With ``record`` set, every completed transaction
    object is kept in ``executed`` (off by default: campaign-scale runs must
    not grow memory per transaction).
    """

    __slots__ = (
        "ops",
        "gap",
        "record",
        "done",
        "poll_failed",
        "transactions",
        "polls",
        "executed",
    )

    def __init__(self, ops: Sequence[ScriptOp], gap: int = 0, record: bool = False) -> None:
        self.ops: List[ScriptOp] = list(ops)
        self.gap = int(gap)
        self.record = record
        self.done = False
        self.poll_failed = False
        self.transactions = 0
        self.polls = 0
        self.executed: List[BusTransaction] = []


class SlaveBundle:
    """Base class for the signal bundle a peripheral's slave port exposes."""

    def __init__(self, name: str, data_width: int, select_width: int) -> None:
        self.name = name
        self.data_width = data_width
        self.select_width = select_width

    def signals(self):  # pragma: no cover - overridden by each bus
        raise NotImplementedError


class BusMaster(Module):
    """Common transaction queue / bookkeeping for every bus master model.

    Subclasses implement :meth:`_tick`, a clocked process advancing the
    native-protocol state machine one cycle.  Masters are fully clocked —
    they register no combinational processes — so on cycles where a master
    sits idle and schedules no differing signal value, the event-driven
    kernel's settle-skipping fast path applies.

    Masters also opt into the compiled kernel's wait-state elision: the
    clocked process declares the slave handshake signals it reacts to (the
    :meth:`_wake_signals` hook) plus an internal ``WAKE`` signal toggled by
    :meth:`submit` / :meth:`submit_script`, and reports quiescence whenever
    it is parked — idle with nothing queued, or holding a request steady
    while the peripheral has not yet acknowledged.  Cycle bookkeeping
    (``_cycle``, ``total_busy_cycles``) is resynchronised from the
    simulator's cycle counter on wake-up, so the elided cycles are accounted
    exactly as if the process had run.
    """

    #: Cycles of master-side overhead (arbitration, address decode) charged
    #: before the slave sees each new request.  Subclasses override.
    ARBITRATION_CYCLES = 0
    #: Idle cycles inserted after a transaction completes.
    RECOVERY_CYCLES = 1

    #: Width of the completion/script count signals; counts wrap, so waits
    #: use equality against a masked target (wrap-safe for a blocking CPU).
    COUNT_WIDTH = 32

    def __init__(
        self, name: str, slave: SlaveBundle, fsm_backend: Optional[str] = None
    ) -> None:
        super().__init__(name)
        self.slave = slave
        self._queue: Deque[BusTransaction] = deque()
        self.active: Optional[BusTransaction] = None
        self.completed: List[BusTransaction] = []
        self._cycle = 0
        self.total_busy_cycles = 0
        #: Keep completed transaction objects in ``completed``.  Campaign
        #: runs switch this off: the counters below keep counting either way.
        self.record_transactions = True
        self._completed_total = 0
        self._scripts_total = 0
        #: Completion-count signal: increments (mod 2**COUNT_WIDTH) when a
        #: transaction completes, visible the same cycle ``done`` is set.
        #: The processor waits on it instead of polling a Python lambda.
        self.completion_count = self.signal("COMPLETIONS", width=self.COUNT_WIDTH)
        #: Script-count signal: increments when a queued script (trailing
        #: gap included) finishes.
        self.script_count = self.signal("SCRIPTS", width=self.COUNT_WIDTH)
        self._script: Optional[TransactionScript] = None
        self._script_pc = 0
        self._script_attempts = 0
        self._gap_left = 0
        #: Toggled by submit()/submit_script() so a sleeping (elided) master
        #: wakes on the very next cycle — the same cycle it would have popped
        #: the queue had it been running.
        self._wake = self.signal("WAKE", width=1)
        self._fsm_backend = resolve_backend(fsm_backend)
        self.fsm: Optional[BoundFsm] = None
        # Subclasses finish their own construction (protocol registers,
        # request-signal groups) and then call _register_tick(), which
        # builds the FSM-IR machine (or registers the retained Python tick).

    def _register_tick(self) -> None:
        """Register the clocked process — IR machine or retained Python tick.

        Called at the end of every subclass ``__init__`` (the IR machine's
        bindings reference protocol registers the subclass creates after
        ``super().__init__``).
        """
        sensitivity = [self._wake] + list(self._wake_signals())
        if self._fsm_backend == "ir":
            self.fsm = BoundFsm(
                self._fsm_spec(),
                self,
                signals=self._fsm_signals(),
                groups=self._fsm_groups(),
                helpers={
                    "h_finish_script": self._finish_script,
                    "h_start_script_op": self._start_script_op,
                    "h_pop_queue": self._pop_queue,
                    **self._fsm_helpers(),
                },
                consts=self._fsm_consts(),
            )
            self.clocked(self.fsm.tick, sensitive_to=sensitivity)
        else:
            self.clocked(self._base_tick, sensitive_to=sensitivity)

    # -- FSM IR assembly ------------------------------------------------------

    #: Scratch names shared by the base frame and every protocol spec.
    _FSM_BASE_TEMPS = ("go", "c1", "sk", "tx", "txn", "tot", "slot")

    def _fsm_spec(self) -> FsmSpec:
        """Assemble the master's machine: shared base frame + protocol states.

        The spec depends only on the concrete master class (instance facts —
        base address, widths — are const *bindings*, not spec structure), so
        it is built once per class and shared: spec validation and the
        standalone-tick codegen are amortised across every instance.

        The entry tree is the exact transliteration of :meth:`_base_tick` —
        elision-proof cycle resynchronisation, skipped-busy crediting, the
        inter-operation gap countdown, script-op start and queue pop — and
        dispatches into the subclass's protocol states only when a
        transaction is (or just became) active.  Transaction-boundary work
        (``_begin`` via the pop/start helpers, ``_complete``, script
        bookkeeping) stays in the retained Python helpers; everything that
        runs on ordinary bus cycles is IR.
        """
        cached = type(self).__dict__.get("_fsm_spec_cache")
        if cached is not None:
            return cached
        entry = (
            Exec("go = 0"),
            Exec("c1 = CYCLE + 1"),
            If(
                "m.active is not None",
                (
                    Exec("sk = c1 - m._cycle - 1"),
                    If("sk > 0", (Exec("m.total_busy_cycles += sk"),)),
                ),
            ),
            Exec("m._cycle = c1"),
            If(
                "m.active is None",
                (
                    If(
                        "m._gap_left",
                        (
                            Exec("m._gap_left -= 1"),
                            If(
                                "not m._gap_left and m._script is not None "
                                "and m._script_pc >= len(m._script.ops)",
                                (Call("h_finish_script"),),
                            ),
                            Active("True"),
                        ),
                        orelse=(
                            If(
                                "m._script is not None",
                                (
                                    Call("h_start_script_op", store="tx"),
                                    If(
                                        "tx is None",
                                        (Active("True"),),
                                        orelse=(
                                            Exec("m.total_busy_cycles += 1; go = 1"),
                                        ),
                                    ),
                                ),
                                orelse=(
                                    If(
                                        "m._queue",
                                        (
                                            Call("h_pop_queue"),
                                            Exec("m.total_busy_cycles += 1; go = 1"),
                                        ),
                                        orelse=(Active("False"),),
                                    ),
                                ),
                            ),
                        ),
                    ),
                ),
                orelse=(Exec("m.total_busy_cycles += 1; go = 1"),),
            ),
            If("go", (StateDispatch(),)),
        )
        states = dict(self._fsm_protocol_states())
        states["idle"] = ()
        spec = FsmSpec(
            name=f"{type(self).__name__.lower()}",
            entry=entry,
            states=states,
            initial="idle",
            state_attr="_phase",
            external_states=self._fsm_external_states(),
            signals=tuple(self._fsm_signals()),
            groups=tuple(self._fsm_groups()),
            helpers=(
                "h_finish_script",
                "h_start_script_op",
                "h_pop_queue",
                *self._fsm_helpers(),
            ),
            consts=tuple(self._fsm_consts()),
            temps=self._FSM_BASE_TEMPS,
        )
        type(self)._fsm_spec_cache = spec
        return spec

    @staticmethod
    def _fsm_countdown(next_ops) -> tuple:
        """The shared delay-countdown pattern (arbitration, bridge, recovery).

        Expressed against the elision-proof cycle counter so the machine can
        sleep through the wait on kernels with timed wakes — the lowered
        form of :meth:`_sleep_until`.
        """
        return (
            If(
                "m._delay_until is None",
                (Exec("m._delay_until = m._cycle + m._delay"),),
            ),
            If(
                "m._cycle < m._delay_until",
                (Sleep("m._delay_until - m._cycle"),),
                orelse=(Exec("m._delay_until = None"), *next_ops),
            ),
        )

    def _fsm_protocol_states(self) -> Dict[str, tuple]:  # pragma: no cover - abstract
        raise NotImplementedError(
            f"{type(self).__name__} does not describe its protocol as FSM IR; "
            f"construct it with fsm_backend='python'"
        )

    def _fsm_external_states(self) -> tuple:
        """Protocol states entered by Python helpers (``_begin``) rather
        than by an IR transition."""
        return ()

    def _fsm_signals(self) -> Dict[str, object]:
        return {}

    def _fsm_groups(self) -> Dict[str, tuple]:
        return {}

    def _fsm_helpers(self) -> Dict[str, object]:
        return {"h_complete": self._complete}

    def _fsm_consts(self) -> Dict[str, int]:
        return {
            "ARB": type(self).ARBITRATION_CYCLES,
            "RECOV": type(self).RECOVERY_CYCLES,
        }

    def attach(self, simulator) -> None:
        # Safety net for third-party masters predating the FSM-IR port: a
        # subclass that never called _register_tick() still gets the retained
        # Python tick registered, exactly as before.
        if not self._clocked:
            self.clocked(
                self._base_tick,
                sensitive_to=[self._wake] + list(self._wake_signals()),
            )
        super().attach(simulator)

    def _wake_signals(self) -> List:
        """Slave-side signals whose changes must wake a parked master.

        Subclasses with request/acknowledge protocols return their ack /
        response signals; strictly synchronous masters (fixed-latency FSMs
        that are active on every busy cycle) can return nothing.
        """
        return []

    def _now(self) -> int:
        """The current bus cycle, valid even while this process is elided."""
        sim = self._simulator
        return sim.cycle if sim is not None else self._cycle

    def _sleep_until(self, target: int) -> bool:
        """Park a pure countdown until master-cycle ``target``; return False.

        On kernels with timed wakes the master is skipped until the target
        cycle (its cycle counter resynchronises on wake-up); scan kernels run
        it every cycle regardless, and the countdown re-checks the target —
        identical externally either way.  Returns the activity flag to hand
        back from ``_tick`` (True when the target is next cycle anyway).
        """
        sim = self._simulator
        if sim is None or not sim.timed_wakes:
            return True
        delta = target - self._cycle
        if delta <= 1:
            return True
        sim.wake_after(self._base_tick, delta)
        return False

    # -- driver-facing API ----------------------------------------------------

    def submit(self, transaction: BusTransaction) -> BusTransaction:
        """Queue ``transaction`` for execution; returns it for convenience."""
        transaction.issue_cycle = self._now()
        self._queue.append(transaction)
        wake = self._wake
        wake.drive(1 - wake._value)
        return transaction

    def submit_script(self, script: TransactionScript) -> TransactionScript:
        """Queue a full transaction script for in-master execution.

        Only one script may be in flight, and it takes priority over plainly
        queued transactions (the blocking processor model never mixes the
        two).  An empty script is completed by the caller without touching
        the simulation.
        """
        if self._script is not None:
            raise ValueError(f"master {self.name!r} already has a script in flight")
        self._script = script
        self._script_pc = 0
        self._script_attempts = 0
        wake = self._wake
        wake.drive(1 - wake._value)
        return script

    @property
    def idle(self) -> bool:
        """True when no transaction or script is active or pending."""
        return self.active is None and not self._queue and self._script is None

    @property
    def pending(self) -> int:
        return len(self._queue) + (1 if self.active is not None else 0)

    # -- statistics -----------------------------------------------------------

    @property
    def transactions_completed(self) -> int:
        return self._completed_total

    def utilization(self) -> float:
        """Fraction of simulated cycles during which the bus was busy."""
        cycles = self._now()
        if cycles == 0:
            return 0.0
        return self.total_busy_cycles / cycles

    # -- simulation -------------------------------------------------------------

    def _base_tick(self) -> bool:
        # Elision-proof cycle accounting: the counter is resynchronised from
        # the simulator, and busy cycles skipped while parked mid-transaction
        # (possible only in an acknowledge wait, where the bus stays busy)
        # are credited on wake-up — identical totals to running every cycle.
        sim = self._simulator
        cycle = (sim.cycle + 1) if sim is not None else (self._cycle + 1)
        active = self.active
        skipped = cycle - self._cycle - 1
        if skipped > 0 and active is not None:
            self.total_busy_cycles += skipped
        self._cycle = cycle
        if active is None:
            if self._gap_left:
                # Inter-operation gap: the bus sits idle exactly as it did
                # between blocking execute() calls.
                self._gap_left -= 1
                if (
                    not self._gap_left
                    and self._script is not None
                    and self._script_pc >= len(self._script.ops)
                ):
                    self._finish_script()
                return True
            if self._script is not None:
                active = self._start_script_op()
                if active is None:
                    return True
            elif self._queue:
                active = self._pop_queue()
            else:
                # Idle and empty: sleep until a submit toggles WAKE.
                return False
        self.total_busy_cycles += 1
        return self._tick(active) is not False

    def _pop_queue(self) -> BusTransaction:
        """Pop the next queued transaction and begin it (IR helper)."""
        active = self.active = self._queue.popleft()
        if active.issue_cycle is None:
            active.issue_cycle = self._cycle
        self._begin(active)
        return active

    def _start_script_op(self) -> Optional[BusTransaction]:
        script = self._script
        if self._script_pc >= len(script.ops):
            # Only reachable with gap == 0 (otherwise the gap countdown
            # finishes the script): complete it without consuming a cycle.
            self._finish_script()
            return None
        op = script.ops[self._script_pc]
        if type(op) is PollOp:
            transaction = BusTransaction(op.kind, op.address, word_count=1)
        else:
            transaction = op.transaction
        self.active = transaction
        if transaction.issue_cycle is None:
            transaction.issue_cycle = self._cycle
        self._begin(transaction)
        return transaction

    def _script_txn_done(self, script: TransactionScript, transaction: BusTransaction) -> None:
        script.transactions += 1
        if script.record:
            script.executed.append(transaction)
        op = script.ops[self._script_pc]
        if type(op) is PollOp:
            script.polls += 1
            self._script_attempts += 1
            if transaction.results and (transaction.results[0] & op.mask):
                self._script_pc += 1
                self._script_attempts = 0
            elif self._script_attempts >= op.limit:
                # Poll limit exhausted: skip the remaining operations; the
                # caller observes poll_failed and raises, exactly where the
                # software poll loop would have.
                script.poll_failed = True
                self._script_pc = len(script.ops)
                self._script_attempts = 0
        else:
            self._script_pc += 1
        if script.gap:
            self._gap_left = script.gap
        elif self._script_pc >= len(script.ops):
            self._finish_script()

    def _finish_script(self) -> None:
        script = self._script
        self._script = None
        script.done = True
        self._scripts_total += 1
        self.script_count.next = self._scripts_total

    def _complete(self, transaction: BusTransaction) -> None:
        """Mark the active transaction finished."""
        transaction.done = True
        transaction.complete_cycle = self._cycle
        self._completed_total += 1
        self.completion_count.schedule(self._completed_total)
        if self.record_transactions:
            self.completed.append(transaction)
        self.active = None
        if self._script is not None:
            self._script_txn_done(self._script, transaction)

    # -- subclass hooks -------------------------------------------------------

    def _begin(self, transaction: BusTransaction) -> None:
        """Called once when ``transaction`` becomes active."""

    def _tick(self, transaction: BusTransaction) -> None:  # pragma: no cover - abstract
        raise NotImplementedError
