"""Word-addressed system memory used by DMA transfers.

DMA transactions move data between main memory and the peripheral without
per-word processor involvement.  :class:`SystemMemory` is the backing store
the drivers populate before launching a DMA transfer and inspect afterwards;
the DMA payload itself is streamed by the bus master.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.rtl.signal import mask_for_width


class SystemMemory:
    """A sparse, word-addressed memory model.

    Addresses are byte addresses; accesses must be aligned to the word size.
    """

    def __init__(self, word_bytes: int = 4) -> None:
        if word_bytes not in (1, 2, 4, 8):
            raise ValueError(f"unsupported word size {word_bytes} bytes")
        self.word_bytes = word_bytes
        self._mask = mask_for_width(word_bytes * 8)
        self._words: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    def _check_aligned(self, address: int) -> None:
        if address % self.word_bytes:
            raise ValueError(
                f"address 0x{address:x} is not aligned to the {self.word_bytes}-byte word size"
            )

    def read_word(self, address: int) -> int:
        """Read one word (unwritten locations read as zero)."""
        self._check_aligned(address)
        self.reads += 1
        return self._words.get(address, 0)

    def write_word(self, address: int, value: int) -> None:
        """Write one word."""
        self._check_aligned(address)
        self.writes += 1
        self._words[address] = int(value) & self._mask

    def read_block(self, address: int, count: int) -> List[int]:
        """Read ``count`` consecutive words starting at ``address``."""
        return [self.read_word(address + i * self.word_bytes) for i in range(count)]

    def write_block(self, address: int, values: Iterable[int]) -> int:
        """Write consecutive words starting at ``address``; returns words written."""
        count = 0
        for offset, value in enumerate(values):
            self.write_word(address + offset * self.word_bytes, value)
            count += 1
        return count

    def clear(self) -> None:
        self._words.clear()
        self.reads = 0
        self.writes = 0

    def __len__(self) -> int:
        return len(self._words)
