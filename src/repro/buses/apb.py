"""AMBA Peripheral Bus (APB) model.

The APB is the paper's example of a *strictly synchronous* interface
(Section 2.3.1): peripherals are not allowed to pause the bus, every access
completes in a fixed setup + access cycle pair, and read data must be valid
during the access cycle.  Consequently the generated software drivers must
poll the ``CALC_DONE`` status register (function identifier zero) before
reading results (Section 4.2.2).

Peripherals hang off an AHB-to-APB bridge, which adds a small fixed latency
to every transaction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.buses.base import BusMaster, BusTransaction, SlaveBundle
from repro.rtl.fsm import Active, Call, Exec, Goto, If, Redispatch, Schedule
from repro.rtl.signal import Signal


class APBSlaveBundle(SlaveBundle):
    """Signals visible to an APB-attached peripheral."""

    def __init__(self, name: str, data_width: int = 32, addr_width: int = 32) -> None:
        super().__init__(name, data_width, select_width=addr_width)
        self.addr_width = addr_width
        self.rst = Signal(f"{name}.RST", 1)
        self.psel = Signal(f"{name}.PSEL", 1)
        self.penable = Signal(f"{name}.PENABLE", 1)
        self.pwrite = Signal(f"{name}.PWRITE", 1)
        self.paddr = Signal(f"{name}.PADDR", addr_width)
        self.pwdata = Signal(f"{name}.PWDATA", data_width)
        self.prdata = Signal(f"{name}.PRDATA", data_width)

    def signals(self) -> List[Signal]:
        return [
            self.rst,
            self.psel,
            self.penable,
            self.pwrite,
            self.paddr,
            self.pwdata,
            self.prdata,
        ]


class APBMaster(BusMaster):
    """Drives an :class:`APBSlaveBundle` with fixed two-cycle accesses."""

    #: AHB access plus the AHB-to-APB bridge crossing.
    ARBITRATION_CYCLES = 3
    RECOVERY_CYCLES = 1

    def __init__(
        self,
        name: str,
        slave: APBSlaveBundle,
        base_address: int = 0,
        fsm_backend: Optional[str] = None,
    ) -> None:
        super().__init__(name, slave, fsm_backend=fsm_backend)
        self.base_address = base_address
        self._phase = "idle"
        self._delay = 0
        self._delay_until = None
        self._word_index = 0
        # Per-transaction facts hoisted out of the per-cycle FSM (see
        # PLBMaster for rationale).
        self._active_write = False
        self._active_total = 0
        self._register_tick()

    # -- FSM IR ----------------------------------------------------------------

    def _fsm_signals(self) -> Dict[str, object]:
        slave = self.slave
        return {
            "psel": slave.psel, "penable": slave.penable,
            "pwrite": slave.pwrite, "paddr": slave.paddr,
            "pwdata": slave.pwdata, "prdata": slave.prdata,
        }

    def _fsm_consts(self) -> Dict[str, int]:
        return {**super()._fsm_consts(), "WORDB": self.slave.data_width // 8}

    def _fsm_external_states(self) -> tuple:
        return ("bridge",)  # entered by _begin()

    def _fsm_protocol_states(self) -> Dict[str, tuple]:
        """The strictly synchronous APB transfer as FSM IR.

        Outside the bridge/recovery countdowns (which sleep under timed
        wakes), every phase makes progress each cycle — the machine is
        active on every access cycle and declares no wake signals.
        """
        return {
            "setup": (
                Schedule("psel", "1"),
                Schedule("penable", "0"),
                Schedule("pwrite", "1 if m._active_write else 0"),
                Schedule("paddr", "m.active.address + m._word_index * WORDB"),
                If(
                    "m._active_write",
                    (Schedule("pwdata", "m.active.data[m._word_index]"),),
                ),
                Goto("access"),
                Active("True"),
            ),
            "access": (
                Schedule("penable", "1"),
                Goto("complete"),
                Active("True"),
            ),
            "complete": (
                # The access cycle has committed: the slave saw PENABLE this
                # cycle and read data (if any) is now on PRDATA.
                If(
                    "not m._active_write",
                    (Exec("m.active.results.append(prdata._value)"),),
                ),
                Schedule("psel", "0"),
                Schedule("penable", "0"),
                Schedule("pwrite", "0"),
                Schedule("pwdata", "0"),
                Exec("m._word_index += 1"),
                If(
                    "m._word_index < m._active_total",
                    (Goto("setup"),),
                    orelse=(Exec("m._delay = RECOV"), Goto("recover")),
                ),
                Active("True"),
            ),
            "bridge": self._fsm_countdown((Goto("setup"), Redispatch())),
            "recover": self._fsm_countdown(
                (
                    Call("h_complete", args="m.active"),
                    Goto("idle"),
                    Active("True"),
                )
            ),
        }

    def _begin(self, transaction: BusTransaction) -> None:
        if transaction.kind.is_dma:
            raise ValueError("the APB has no DMA support")
        self._word_index = 0
        self._active_write = transaction.kind.is_write
        self._active_total = (
            len(transaction.data) if self._active_write else transaction.word_count
        )
        self._phase = "bridge"
        self._delay = self.ARBITRATION_CYCLES

    def _tick(self, transaction: BusTransaction) -> bool:
        # The APB never waits on the peripheral: outside the bridge/recovery
        # countdowns (which sleep under timed wakes) every phase of a
        # transfer makes progress, so the FSM is active on every access
        # cycle and has no _wake_signals().
        slave = self.slave
        phase = self._phase

        if phase == "bridge":
            until = self._delay_until
            if until is None:
                self._delay_until = until = self._cycle + self._delay
            if self._cycle < until:
                return self._sleep_until(until)
            self._delay_until = None
            phase = self._phase = "setup"
            # fall through

        if phase == "setup":
            slave.psel.schedule(1)
            slave.penable.schedule(0)
            slave.pwrite.schedule(1 if self._active_write else 0)
            slave.paddr.schedule(transaction.address + self._word_index * (slave.data_width // 8))
            if self._active_write:
                slave.pwdata.schedule(transaction.data[self._word_index])
            self._phase = "access"
            return True

        if phase == "access":
            slave.penable.schedule(1)
            self._phase = "complete"
            return True

        if phase == "complete":
            # The access cycle has committed: the slave saw PENABLE this
            # cycle and read data (if any) is now on PRDATA.
            if not self._active_write:
                transaction.results.append(slave.prdata._value)
            slave.psel.schedule(0)
            slave.penable.schedule(0)
            slave.pwrite.schedule(0)
            slave.pwdata.schedule(0)
            self._word_index += 1
            if self._word_index < self._active_total:
                self._phase = "setup"
            else:
                self._phase = "recover"
                self._delay = self.RECOVERY_CYCLES
            return True

        if phase == "recover":
            until = self._delay_until
            if until is None:
                self._delay_until = until = self._cycle + self._delay
            if self._cycle < until:
                return self._sleep_until(until)
            self._delay_until = None
            self._complete(transaction)
            self._phase = "idle"
        return True
