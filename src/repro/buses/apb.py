"""AMBA Peripheral Bus (APB) model.

The APB is the paper's example of a *strictly synchronous* interface
(Section 2.3.1): peripherals are not allowed to pause the bus, every access
completes in a fixed setup + access cycle pair, and read data must be valid
during the access cycle.  Consequently the generated software drivers must
poll the ``CALC_DONE`` status register (function identifier zero) before
reading results (Section 4.2.2).

Peripherals hang off an AHB-to-APB bridge, which adds a small fixed latency
to every transaction.
"""

from __future__ import annotations

from typing import List

from repro.buses.base import BusMaster, BusTransaction, SlaveBundle
from repro.rtl.signal import Signal


class APBSlaveBundle(SlaveBundle):
    """Signals visible to an APB-attached peripheral."""

    def __init__(self, name: str, data_width: int = 32, addr_width: int = 32) -> None:
        super().__init__(name, data_width, select_width=addr_width)
        self.addr_width = addr_width
        self.rst = Signal(f"{name}.RST", 1)
        self.psel = Signal(f"{name}.PSEL", 1)
        self.penable = Signal(f"{name}.PENABLE", 1)
        self.pwrite = Signal(f"{name}.PWRITE", 1)
        self.paddr = Signal(f"{name}.PADDR", addr_width)
        self.pwdata = Signal(f"{name}.PWDATA", data_width)
        self.prdata = Signal(f"{name}.PRDATA", data_width)

    def signals(self) -> List[Signal]:
        return [
            self.rst,
            self.psel,
            self.penable,
            self.pwrite,
            self.paddr,
            self.pwdata,
            self.prdata,
        ]


class APBMaster(BusMaster):
    """Drives an :class:`APBSlaveBundle` with fixed two-cycle accesses."""

    #: AHB access plus the AHB-to-APB bridge crossing.
    ARBITRATION_CYCLES = 3
    RECOVERY_CYCLES = 1

    def __init__(self, name: str, slave: APBSlaveBundle, base_address: int = 0) -> None:
        super().__init__(name, slave)
        self.base_address = base_address
        self._phase = "idle"
        self._delay = 0
        self._word_index = 0

    def _begin(self, transaction: BusTransaction) -> None:
        if transaction.kind.is_dma:
            raise ValueError("the APB has no DMA support")
        self._word_index = 0
        self._phase = "bridge"
        self._delay = self.ARBITRATION_CYCLES

    def _tick(self, transaction: BusTransaction) -> None:
        slave = self.slave
        total = len(transaction.data) if transaction.kind.is_write else transaction.word_count

        if self._phase == "bridge":
            if self._delay > 0:
                self._delay -= 1
                return
            self._phase = "setup"
            # fall through

        if self._phase == "setup":
            slave.psel.next = 1
            slave.penable.next = 0
            slave.pwrite.next = 1 if transaction.kind.is_write else 0
            slave.paddr.next = transaction.address + self._word_index * (slave.data_width // 8)
            if transaction.kind.is_write:
                slave.pwdata.next = transaction.data[self._word_index]
            self._phase = "access"
            return

        if self._phase == "access":
            slave.penable.next = 1
            self._phase = "complete"
            return

        if self._phase == "complete":
            # The access cycle has committed: the slave saw PENABLE this
            # cycle and read data (if any) is now on PRDATA.
            if not transaction.kind.is_write:
                transaction.results.append(slave.prdata.value)
            slave.psel.next = 0
            slave.penable.next = 0
            slave.pwrite.next = 0
            slave.pwdata.next = 0
            self._word_index += 1
            if self._word_index < total:
                self._phase = "setup"
            else:
                self._phase = "recover"
                self._delay = self.RECOVERY_CYCLES
            return

        if self._phase == "recover":
            if self._delay > 0:
                self._delay -= 1
                return
            self._complete(transaction)
            self._phase = "idle"
