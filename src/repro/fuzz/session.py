"""The fuzz session: deterministic rounds, contained failures, shrunk output.

A session spends a *budget* of generated cases against the differential
oracle, in rounds.  Each round is one Hypothesis ``@given`` execution with
an explicit derived seed and no example database, which makes the whole
session a pure function of ``(seed, budget, profile, with_faults)``: the
same inputs generate the same case tokens with the same verdicts on every
platform, which is what lets CI assert "zero counterexamples at seed S" and
lets a human replay finding N of session S exactly.

Failures never abort the session.  A failing case ends its round (Hypothesis
shrinks it first), is minimised further by the domain-aware
:func:`~repro.fuzz.shrink.minimize`, deduplicated by ``(kind, token)``,
recorded as a :class:`~repro.fuzz.corpus.Counterexample`, optionally saved
into the corpus, and the session moves on to the next round with whatever
budget remains.  The session's exit code is nonzero only at the end, and
only if counterexamples were found.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from hypothesis import HealthCheck, Phase, Verbosity, given
from hypothesis import seed as hyp_seed
from hypothesis import settings as hyp_settings

from repro.fuzz.case import FuzzCase
from repro.fuzz.corpus import Counterexample, save_case
from repro.fuzz.oracle import (
    DEFAULT_TIMEOUT_S,
    CaseVerdict,
    coverage_cells,
    default_kernel_factories,
    run_case,
)
from repro.fuzz.shrink import minimize
from repro.fuzz.strategies import PROFILES, FuzzProfile, cases

#: Cases per Hypothesis round.  Small rounds bound how much budget one
#: failure's shrink phase can consume and give each failure a fresh seed.
ROUND_SIZE = 25

#: Domain-shrink oracle-run caps (hangs pay the watchdog timeout per run,
#: so they get a much smaller allowance).
SHRINK_ATTEMPTS = 120
SHRINK_ATTEMPTS_HANG = 24


class _CaseFailed(Exception):
    """Raised inside the Hypothesis property to capture (case, verdict)."""

    def __init__(self, case: FuzzCase, verdict: CaseVerdict):
        super().__init__(verdict.kind)
        self.case = case
        self.verdict = verdict


@dataclass
class FuzzReport:
    """Everything one session did, in JSON-friendly form."""

    seed: int
    budget: int
    profile: str
    with_faults: bool
    executed: int = 0
    rounds: int = 0
    case_tokens: List[str] = field(default_factory=list)
    counterexamples: List[Counterexample] = field(default_factory=list)
    saved_paths: List[str] = field(default_factory=list)
    #: Sorted union of :func:`~repro.fuzz.oracle.coverage_cells` over every
    #: budget-counted case — which bus × family × fault-class corners this
    #: session touched.  Deterministic for (seed, budget, profile, faults).
    coverage: List[str] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def exit_code(self) -> int:
        return 1 if self.counterexamples else 0

    @property
    def cases_per_second(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.executed / self.duration_s

    def describe(self) -> Dict[str, object]:
        return {
            "version": 1,
            "seed": self.seed,
            "budget": self.budget,
            "profile": self.profile,
            "with_faults": self.with_faults,
            "executed": self.executed,
            "rounds": self.rounds,
            "case_tokens": list(self.case_tokens),
            "counterexamples": [ce.describe() for ce in self.counterexamples],
            "saved_paths": list(self.saved_paths),
            "coverage": list(self.coverage),
            "duration_s": round(self.duration_s, 3),
            "cases_per_second": round(self.cases_per_second, 2),
            "exit_code": self.exit_code,
        }

    def render(self) -> str:
        lines = [
            f"fuzz session: seed={self.seed} budget={self.budget} "
            f"profile={self.profile} faults={'on' if self.with_faults else 'off'}",
            f"executed {self.executed} cases in {self.rounds} rounds "
            f"({self.duration_s:.1f}s, {self.cases_per_second:.1f} cases/s)",
        ]
        if not self.counterexamples:
            lines.append("no counterexamples — all kernels agree")
        else:
            lines.append(f"{len(self.counterexamples)} counterexample(s):")
            for ce in self.counterexamples:
                lines.append(
                    f"  [{ce.verdict.kind}] {ce.token} "
                    f"kernel={ce.verdict.kernel or '-'} {ce.verdict.detail}"
                )
            for path in self.saved_paths:
                lines.append(f"  saved {path}")
        return "\n".join(lines)


def _factories_for(kernel_factories, case: FuzzCase) -> Dict[str, Callable]:
    if kernel_factories is None:
        return default_kernel_factories(case)
    if callable(kernel_factories):
        return kernel_factories(case)
    return kernel_factories


def _round_seed(seed: int, round_index: int) -> int:
    # Splitmix-style spread so consecutive sessions' rounds never collide.
    value = (seed * 0x9E3779B97F4A7C15 + round_index * 0xBF58476D1CE4E5B9) & (1 << 63) - 1
    return value or 1


def _run_round(
    strategy,
    round_seed: int,
    examples: int,
    execute: Callable[[FuzzCase], None],
) -> Optional[_CaseFailed]:
    """One deterministic Hypothesis round; returns the shrunk failure if any."""

    @hyp_settings(
        max_examples=examples,
        database=None,
        deadline=None,
        derandomize=False,
        phases=(Phase.generate, Phase.shrink),
        verbosity=Verbosity.quiet,
        suppress_health_check=list(HealthCheck),
        print_blob=False,
    )
    @hyp_seed(round_seed)
    @given(strategy)
    def property_(case):
        execute(case)

    try:
        property_()
    except _CaseFailed as failure:
        return failure
    return None


def run_session(
    budget: int,
    seed: int,
    *,
    profile: Union[str, FuzzProfile] = "quick",
    with_faults: bool = False,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    corpus_dir=None,
    kernel_factories=None,
    shrink_attempts: int = SHRINK_ATTEMPTS,
    round_size: int = ROUND_SIZE,
    on_case: Optional[Callable[[FuzzCase, CaseVerdict], None]] = None,
    on_finding: Optional[Callable[[Counterexample], None]] = None,
) -> FuzzReport:
    """Run one deterministic fuzz session and return its report.

    ``kernel_factories`` may be a dict (as :func:`run_case` takes), a
    callable ``case -> dict`` (needed when the kernel set depends on the
    case's leap flag, as the default does), or ``None`` for the three
    production kernels.  ``corpus_dir=None`` disables saving (dry sessions,
    unit tests); pass :data:`~repro.fuzz.corpus.DEFAULT_CORPUS_DIR` to grow
    the real corpus.  ``on_finding`` fires once per *deduplicated, shrunk*
    counterexample as it is recorded — the farm's fuzz workers use it to
    stream findings to watching clients while the session keeps running.
    """
    if budget < 1:
        raise ValueError(f"fuzz budget must be >= 1, got {budget}")
    prof = PROFILES[profile] if isinstance(profile, str) else profile
    report = FuzzReport(
        seed=seed, budget=budget, profile=prof.name, with_faults=with_faults
    )
    strategy = cases(profile=prof, with_faults=with_faults)
    seen: set = set()
    coverage: set = set()
    started = time.perf_counter()

    round_index = 0
    while report.executed < budget:
        examples = min(round_size, budget - report.executed)
        state = {"failed": False, "ran": 0}

        def execute(case: FuzzCase) -> None:
            verdict = run_case(
                case,
                kernel_factories=_factories_for(kernel_factories, case),
                timeout_s=timeout_s,
            )
            if not state["failed"]:
                # Shrink-phase replays re-enter here after the first failure;
                # only generate-phase cases count against the budget or the
                # deterministic token trail.
                state["ran"] += 1
                report.case_tokens.append(case.token)
                coverage.update(coverage_cells(case))
                if on_case is not None:
                    on_case(case, verdict)
            if not verdict.ok:
                state["failed"] = True
                raise _CaseFailed(case, verdict)

        failure = _run_round(strategy, _round_seed(seed, round_index), examples, execute)
        report.rounds += 1
        report.executed += state["ran"]
        round_index += 1

        if failure is None:
            continue
        kind = failure.verdict.kind
        attempts_cap = SHRINK_ATTEMPTS_HANG if kind == "hang" else shrink_attempts

        def reproduces(candidate: FuzzCase) -> bool:
            verdict = run_case(
                candidate,
                kernel_factories=_factories_for(kernel_factories, candidate),
                timeout_s=timeout_s,
            )
            return verdict.kind == kind

        shrunk, attempts = minimize(failure.case, reproduces, max_attempts=attempts_cap)
        final_verdict = (
            failure.verdict
            if shrunk is failure.case
            else run_case(
                shrunk,
                kernel_factories=_factories_for(kernel_factories, shrunk),
                timeout_s=timeout_s,
            )
        )
        key = (final_verdict.kind, shrunk.token)
        if key in seen:
            continue
        seen.add(key)
        counterexample = Counterexample(
            case=shrunk,
            verdict=final_verdict,
            discovered={
                "seed": seed,
                "round": round_index - 1,
                "round_seed": _round_seed(seed, round_index - 1),
                "profile": prof.name,
                "with_faults": with_faults,
                "shrink_attempts": attempts,
            },
        )
        report.counterexamples.append(counterexample)
        if on_finding is not None:
            on_finding(counterexample)
        if corpus_dir is not None:
            report.saved_paths.append(str(save_case(counterexample, corpus_dir)))

    report.coverage = sorted(coverage)
    report.duration_s = time.perf_counter() - started
    return report
