"""Domain-aware counterexample minimizer.

Hypothesis shrinks within its own choice sequence, which already gets most
of the way down — but it cannot exploit domain structure it does not know
about (a function nobody calls can vanish from the topology; a fault
schedule can lose whole specs; DMA/burst flags can drop if the failure
survives without them).  :func:`minimize` runs a greedy, bounded,
verdict-preserving pass over exactly those moves, so corpus cases end up
small enough that a human can read the JSON and see the bug.

The contract is deliberately narrow: ``reproduces(case)`` must return
``True`` when the candidate still fails *the same way* (same verdict kind)
— the caller owns that check, typically by re-running the oracle with the
same kernel set — and the minimizer only keeps candidates that both shrink
the case's :func:`cost` and still reproduce.  Every candidate costs one
oracle run, so the whole pass is capped by ``max_attempts``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, Tuple

from repro.fuzz.case import IDLE, FuzzCall, FuzzCase, FuzzTopology


def cost(case: FuzzCase) -> int:
    """A scalar "size" for greedy descent (smaller = simpler to triage)."""
    total = len(case.topology.functions) * 10
    total += sum(fn.calc_latency for fn in case.topology.functions)
    total += case.topology.inter_op_gap
    total += 5 * (case.topology.dma + case.topology.burst)
    for call in case.calls:
        total += 10
        for arg in call.args:
            if isinstance(arg, tuple):
                total += len(arg) + sum(1 for v in arg if v)
            else:
                total += min(int(arg).bit_length(), 8)
    if case.faults:
        total += 20 * (case.faults.count(";") + 1)
    return total


def _with_calls(case: FuzzCase, calls) -> FuzzCase:
    return replace(case, calls=tuple(calls))


def _prune_topology(case: FuzzCase) -> FuzzCase:
    """Drop functions no remaining call references (if any remain)."""
    used = {call.func for call in case.calls if call.func != IDLE}
    kept = tuple(fn for fn in case.topology.functions if fn.name in used)
    if not kept or len(kept) == len(case.topology.functions):
        return case
    topology = FuzzTopology(
        bus=case.topology.bus,
        functions=kept,
        dma=case.topology.dma and any(f.family in ("stream", "pair") for f in kept),
        burst=case.topology.burst,
        inter_op_gap=case.topology.inter_op_gap,
    )
    return replace(case, topology=topology)


def _call_variants(call: FuzzCall) -> Iterator[FuzzCall]:
    """Smaller versions of one workload step, most aggressive first."""
    if call.func == IDLE:
        span = call.args[0]
        for smaller in (1, span // 2):
            if 1 <= smaller < span:
                yield FuzzCall.idle(smaller)
        return
    for index, arg in enumerate(call.args):
        if isinstance(arg, tuple):
            candidates = [(), arg[: len(arg) // 2], arg[1:], arg[:-1],
                          tuple(0 for _ in arg)]
        else:
            candidates = [0, int(arg) // 2, 1]
        for candidate in candidates:
            if tuple(candidate) == arg if isinstance(arg, tuple) else candidate == arg:
                continue
            args = list(call.args)
            args[index] = candidate
            yield FuzzCall(func=call.func, args=tuple(args))


def _variants(case: FuzzCase) -> Iterator[FuzzCase]:
    """Candidate simplifications, roughly most-aggressive first."""
    calls = case.calls
    # 1. Chop the workload: halves, then single-call deletions.
    if len(calls) > 1:
        half = len(calls) // 2
        yield _prune_topology(_with_calls(case, calls[:half]))
        yield _prune_topology(_with_calls(case, calls[half:]))
        for index in range(len(calls)):
            yield _prune_topology(_with_calls(case, calls[:index] + calls[index + 1 :]))
    # 2. Drop the fault schedule, then individual specs.
    if case.faults:
        yield replace(case, faults=None)
        specs = case.faults.split(";")
        if len(specs) > 1:
            for index in range(len(specs)):
                kept = specs[:index] + specs[index + 1 :]
                yield replace(case, faults=";".join(kept))
    # 3. Simplify the topology: flags off, gap down, latencies down.
    topo = case.topology
    if topo.dma or topo.burst:
        try:
            yield replace(case, topology=replace(topo, dma=False, burst=False))
        except ValueError:
            pass
    if topo.inter_op_gap:
        yield replace(case, topology=replace(topo, inter_op_gap=0))
    for index, fn in enumerate(topo.functions):
        if fn.calc_latency > 1:
            functions = list(topo.functions)
            functions[index] = replace(fn, calc_latency=1)
            yield replace(case, topology=replace(topo, functions=tuple(functions)))
    # 4. Shrink individual calls (streams, scalars, idle spans).
    for index, call in enumerate(calls):
        for variant in _call_variants(call):
            yield _with_calls(case, calls[:index] + (variant,) + calls[index + 1 :])


def minimize(
    case: FuzzCase,
    reproduces: Callable[[FuzzCase], bool],
    max_attempts: int = 200,
) -> Tuple[FuzzCase, int]:
    """Greedy verdict-preserving descent; returns (smaller case, attempts).

    Restarts the variant scan after every accepted candidate (an accepted
    chop usually unlocks further chops), and stops at a fixpoint or when
    ``max_attempts`` oracle runs have been spent.
    """
    attempts = 0
    current = case
    current_cost = cost(case)
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _variants(current):
            if attempts >= max_attempts:
                break
            try:
                candidate_cost = cost(candidate)
            except Exception:  # noqa: BLE001 - invalid candidate, skip
                continue
            if candidate_cost >= current_cost:
                continue
            attempts += 1
            try:
                keep = reproduces(candidate)
            except Exception:  # noqa: BLE001 - reproducer must not kill the pass
                keep = False
            if keep:
                current = candidate
                current_cost = candidate_cost
                improved = True
                break
    return current, attempts
