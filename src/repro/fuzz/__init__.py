"""Property-based scenario fuzzing with the kernels as the oracle.

The package splits along one dependency line:

* always importable — :mod:`~repro.fuzz.case` (the case model),
  :mod:`~repro.fuzz.oracle` (the differential property),
  :mod:`~repro.fuzz.watchdog`, :mod:`~repro.fuzz.shrink`, and
  :mod:`~repro.fuzz.corpus` (serialize / load / replay);
* Hypothesis-backed — :mod:`~repro.fuzz.strategies` and
  :mod:`~repro.fuzz.session` (generation and the fuzz loop).

Corpus replay must keep working where Hypothesis is absent (the corpus is
part of the tier-1 suite), so the Hypothesis-backed names are re-exported
lazily: importing :mod:`repro.fuzz` never pulls in Hypothesis, and touching
``run_session`` / ``cases`` / ``PROFILES`` without it installed raises one
actionable ImportError instead of a deep stack.
"""

from repro.fuzz.case import (
    FUNCTION_FAMILIES,
    FUZZ_BUSES,
    IDLE,
    FuzzCall,
    FuzzCase,
    FuzzFunction,
    FuzzTopology,
)
from repro.fuzz.corpus import (
    DEFAULT_CORPUS_DIR,
    Counterexample,
    corpus_files,
    load_corpus,
    replay_case,
    save_case,
)
from repro.fuzz.oracle import (
    DEFAULT_TIMEOUT_S,
    VERDICT_KINDS,
    CaseVerdict,
    default_kernel_factories,
    run_case,
)
from repro.fuzz.shrink import cost, minimize
from repro.fuzz.watchdog import CaseHang, case_watchdog, watchdog_available

_HYPOTHESIS_EXPORTS = {
    "run_session": "repro.fuzz.session",
    "FuzzReport": "repro.fuzz.session",
    "ROUND_SIZE": "repro.fuzz.session",
    "cases": "repro.fuzz.strategies",
    "PROFILES": "repro.fuzz.strategies",
    "FuzzProfile": "repro.fuzz.strategies",
    "CORNER_WORDS": "repro.fuzz.strategies",
    "FAULT_TARGETS": "repro.fuzz.strategies",
}


def __getattr__(name):
    module_name = _HYPOTHESIS_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    try:
        import importlib

        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ImportError(
            f"repro.fuzz.{name} requires the 'hypothesis' package "
            "(install the test extras: pip install -e '.[test]')"
        ) from exc
    return getattr(module, name)


__all__ = [
    "FUNCTION_FAMILIES",
    "FUZZ_BUSES",
    "IDLE",
    "FuzzCall",
    "FuzzCase",
    "FuzzFunction",
    "FuzzTopology",
    "DEFAULT_CORPUS_DIR",
    "Counterexample",
    "corpus_files",
    "load_corpus",
    "replay_case",
    "save_case",
    "DEFAULT_TIMEOUT_S",
    "VERDICT_KINDS",
    "CaseVerdict",
    "default_kernel_factories",
    "run_case",
    "cost",
    "minimize",
    "CaseHang",
    "case_watchdog",
    "watchdog_available",
    *sorted(_HYPOTHESIS_EXPORTS),
]
