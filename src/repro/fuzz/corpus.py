"""The regression corpus: shrunk counterexamples as canonical JSON files.

Every failure a fuzz session finds is serialized here as one self-contained
JSON record — the full case (topology, workload, faults, leap flag), the
verdict it produced, and provenance (session seed, round, profile, shrink
effort).  ``tests/test_fuzz_regressions.py`` replays every file on every
tier-1 run, so a counterexample found once can never silently regress: the
corpus is a permanent, growing test suite distilled from fuzzing.

This module deliberately has **no Hypothesis dependency** — loading and
replaying the corpus must work in minimal environments (CI replay jobs,
the bare test extras) even where the generation stack is absent.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.fuzz.case import FuzzCase
from repro.fuzz.oracle import DEFAULT_TIMEOUT_S, CaseVerdict, run_case

#: Where shrunk counterexamples live, relative to the repo root.
DEFAULT_CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "corpus"


@dataclass(frozen=True)
class Counterexample:
    """One shrunk failing case plus the verdict and provenance."""

    case: FuzzCase
    verdict: CaseVerdict
    discovered: Dict[str, object] = field(default_factory=dict)

    @property
    def token(self) -> str:
        return self.case.token

    @property
    def filename(self) -> str:
        return f"{self.verdict.kind}-{self.token}.json"

    def describe(self) -> Dict[str, object]:
        return {
            "version": 1,
            "kind": self.verdict.kind,
            "token": self.token,
            "case": self.case.describe(),
            "verdict": self.verdict.describe(),
            "discovered": dict(self.discovered),
        }

    def to_json(self) -> str:
        return json.dumps(self.describe(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Counterexample":
        record = cls(
            case=FuzzCase.from_dict(data["case"]),
            verdict=CaseVerdict.from_dict(data["verdict"]),
            discovered=dict(data.get("discovered", {})),
        )
        stored = data.get("token")
        if stored is not None and stored != record.token:
            raise ValueError(
                f"corpus record token {stored!r} does not match its case "
                f"({record.token!r}) — the case was edited without re-canonicalising"
            )
        return record

    @classmethod
    def from_json(cls, text: str) -> "Counterexample":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Counterexample":
        return cls.from_json(Path(path).read_text())


def save_case(counterexample: Counterexample, directory: Union[str, Path]) -> Path:
    """Write one record into the corpus; returns the file path.

    The filename embeds kind + case token, so re-discovering a known
    counterexample overwrites its own file instead of duplicating it.  The
    write goes through a per-writer-unique temp file + ``os.replace`` so a
    crash mid-write (or two farm workers landing the same finding at once)
    can never leave a torn record for the replay suite to choke on.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / counterexample.filename
    tmp = path.with_name(
        f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    tmp.write_text(counterexample.to_json())
    os.replace(tmp, path)
    return path


def corpus_files(directory: Union[str, Path] = DEFAULT_CORPUS_DIR) -> List[Path]:
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))


def load_corpus(directory: Union[str, Path] = DEFAULT_CORPUS_DIR) -> List[Counterexample]:
    return [Counterexample.load(path) for path in corpus_files(directory)]


def replay_case(
    record: Union[Counterexample, FuzzCase, str, Path],
    *,
    kernel_factories: Optional[Dict[str, Callable]] = None,
    timeout_s: float = DEFAULT_TIMEOUT_S,
) -> CaseVerdict:
    """Re-run a corpus record (or raw case / path) through the oracle.

    On current kernels a corpus case should verdict ``pass`` — that is the
    regression property.  The historical verdict stays in the record for
    triage; it is *not* what replay asserts against.
    """
    if isinstance(record, (str, Path)):
        path = Path(record)
        text = path.read_text()
        data = json.loads(text)
        case = (
            Counterexample.from_dict(data).case
            if "case" in data
            else FuzzCase.from_dict(data)
        )
    elif isinstance(record, Counterexample):
        case = record.case
    else:
        case = record
    return run_case(case, kernel_factories=kernel_factories, timeout_s=timeout_s)
