"""The differential oracle: execute one fuzz case on every kernel and judge.

This is the property the whole fuzz subsystem exists to check, lifted from
``tests/test_kernel_equivalence.py`` into a library: build the *same*
generated SoC once per kernel (reference / event / compiled), drive all of
them with the case's workload, and demand that

* the full-signal traces are identical, cycle for cycle and bit for bit,
* the driver-call outcomes and transaction counts are identical,
* the SIS monitor violation lists are element-for-element identical, and
* every kernel's leap accounting balances
  (``leaped + executed == cycles``, traces cover every cycle, and only a
  leap-enabled compiled kernel may leap at all).

Any disagreement becomes a typed :class:`CaseVerdict` rather than an
assertion: the fuzz session records it, the shrinker minimises against it,
and the corpus replays it.  The oracle itself must survive hostile cases —
a builder that raises is a ``builder_error`` finding, a kernel that raises
mid-run is a ``crash``, and a kernel that never comes back is killed by the
:mod:`~repro.fuzz.watchdog` and recorded as a ``hang``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.fuzz.case import IDLE, FuzzCase
from repro.fuzz.watchdog import CaseHang, case_watchdog
from repro.rtl import ReferenceSimulator, Simulator, TraceRecorder, kernel_factory
from repro.soc.system import build_system

#: Every verdict kind, in triage-priority order (``pass`` last).
VERDICT_KINDS: Tuple[str, ...] = (
    "builder_error",
    "hang",
    "crash",
    "divergence",
    "monitor_mismatch",
    "leap_miscount",
    "pass",
)

#: Default per-case wall-clock budget.  The biggest quick-profile cases
#: build + run in well under a second per kernel; anything that takes 10s
#: is stuck, not slow.
DEFAULT_TIMEOUT_S = 10.0


@dataclass(frozen=True)
class CaseVerdict:
    """The oracle's judgement of one case."""

    kind: str
    detail: str = ""
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in VERDICT_KINDS:
            raise ValueError(
                f"unknown verdict kind {self.kind!r} (known: {VERDICT_KINDS})"
            )

    @property
    def ok(self) -> bool:
        return self.kind == "pass"

    def describe(self) -> Dict[str, object]:
        data: Dict[str, object] = {"kind": self.kind, "detail": self.detail}
        if self.kernel is not None:
            data["kernel"] = self.kernel
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CaseVerdict":
        return cls(
            kind=str(data["kind"]),
            detail=str(data.get("detail", "")),
            kernel=data.get("kernel"),
        )


def coverage_cells(case: FuzzCase) -> Tuple[str, ...]:
    """The ``bus:family:fault-class`` coverage cells one case touches.

    This is the fuzz layer's coverage signal: the cross product of the
    case's bus, the function families its workload actually exercises
    (plus ``idle`` for leap-window spans), and the fault kinds its schedule
    injects (``clean`` when unfaulted).  Sessions union these per case, so
    a session's coverage summary says which corners of the
    bus × family × fault-class space its seed range reached — deterministic
    for a given ``(seed, budget, profile)``, which is what lets CI pin it
    and the perf trajectory track strategy regressions.
    """
    families = set()
    for call in case.calls:
        if call.func == IDLE:
            families.add("idle")
        else:
            families.add(case.topology.function(call.func).family)
    if case.faults:
        from repro.faults.spec import FaultSchedule

        kinds = sorted({spec.kind for spec in FaultSchedule.parse(case.faults)})
        fault_classes = kinds or ["clean"]
    else:
        fault_classes = ["clean"]
    return tuple(sorted(
        f"{case.topology.bus}:{family}:{fault}"
        for family in families
        for fault in fault_classes
    ))


def default_kernel_factories(case: FuzzCase) -> Dict[str, Callable]:
    """The three production kernels, oracle first.

    Exposed (and overridable via ``run_case(kernel_factories=...)``) so the
    acceptance tests can swap in a deliberately broken kernel and watch the
    oracle convict it.
    """
    return {
        "reference": ReferenceSimulator,
        "event": Simulator,
        "compiled": kernel_factory("compiled", leap=case.leap),
    }


def _build(case: FuzzCase, factory) -> object:
    """Build one system for the case (fresh behaviours/state per kernel)."""
    topology = case.topology
    system = build_system(
        topology.spec_source(),
        behaviors=topology.behaviors(),
        calc_latencies=topology.calc_latencies(),
        inter_op_gap=topology.inter_op_gap,
        simulator_factory=factory,
    )
    if case.faults is not None:
        from repro.faults.inject import FaultController, sis_targets

        controller = FaultController(case.faults, sis_targets(system.peripheral.sis))
        # inject_faults rebases to the current cycle (0, post-reset), so the
        # schedule's relative cycles count from the start of the workload.
        system.simulator.inject_faults(controller)
    return system


def _drive(system, case: FuzzCase) -> Tuple:
    """Execute the workload; return the comparable outcome tuple."""
    results = []
    for call in case.calls:
        if call.func == IDLE:
            system.run(call.args[0])
            results.append(("idle", call.args[0]))
            continue
        family = case.topology.function(call.func).family
        driver = system.drivers[call.func]
        if family == "poke":
            results.append(driver(call.args[0], call.args[1]))
        elif family == "peek":
            results.append(driver(call.args[0]))
        elif family == "stream":
            data = list(call.args[0])
            results.append(driver(len(data), data))
        else:  # pair
            a, b = list(call.args[0]), list(call.args[1])
            results.append(driver(len(a), a, len(b), b))
    return tuple(results)


def _violations(system):
    monitor = getattr(system, "monitor", None)
    if monitor is None:
        return None
    return [(v.cycle, v.rule, v.detail) for v in monitor.violations]


def _first_trace_divergence(ref_trace, other_trace) -> Optional[str]:
    """Describe the first divergent cycle, or ``None`` if traces match."""
    for cycle, (ref_sample, other_sample) in enumerate(
        zip(ref_trace.samples, other_trace.samples)
    ):
        if ref_sample != other_sample:
            names = set(ref_sample) | set(other_sample)
            diff = {
                name: (ref_sample.get(name), other_sample.get(name))
                for name in sorted(names)
                if ref_sample.get(name) != other_sample.get(name)
            }
            shown = list(diff.items())[:4]
            rendered = ", ".join(f"{n}: {a} != {b}" for n, (a, b) in shown)
            more = f" (+{len(diff) - len(shown)} more)" if len(diff) > len(shown) else ""
            return f"cycle {cycle}: {rendered}{more}"
    if len(ref_trace) != len(other_trace):
        return f"trace lengths differ: {len(ref_trace)} != {len(other_trace)}"
    return None


def _leap_miscount(label: str, run: Dict[str, object], leap_allowed: bool) -> Optional[str]:
    """Check one kernel run's leap/trace accounting; describe any breach."""
    stats = run["stats"]
    cycles = stats["cycles"]
    leaped = stats["leaped_cycles"]
    executed = stats["executed_cycles"]
    if leaped + executed != cycles:
        return f"leaped({leaped}) + executed({executed}) != cycles({cycles})"
    if leaped < 0 or leaped > cycles:
        return f"leaped({leaped}) outside [0, cycles({cycles})]"
    if leaped and not leap_allowed:
        return f"non-leaping kernel reported leaped={leaped}"
    if run["trace_len"] != cycles:
        return f"trace covers {run['trace_len']} cycles, kernel ran {cycles}"
    return None


def run_case(
    case: FuzzCase,
    *,
    kernel_factories: Optional[Dict[str, Callable]] = None,
    timeout_s: float = DEFAULT_TIMEOUT_S,
) -> CaseVerdict:
    """Execute ``case`` under every kernel and return the verdict.

    The first factory in ``kernel_factories`` is the baseline every other
    kernel is compared against (the reference oracle by default).  The
    watchdog brackets each kernel's build+run individually, so one stuck
    kernel cannot consume another kernel's budget.
    """
    factories = kernel_factories or default_kernel_factories(case)
    labels = list(factories)
    if len(labels) < 2:
        raise ValueError("the oracle needs at least two kernels to differ")

    runs: Dict[str, Dict[str, object]] = {}
    for label in labels:
        factory = factories[label]
        try:
            with case_watchdog(timeout_s):
                system = _build(case, factory)
        except CaseHang:
            return CaseVerdict("hang", f"build exceeded {timeout_s:g}s", kernel=label)
        except Exception as exc:  # noqa: BLE001 - containment is the point
            return CaseVerdict(
                "builder_error", f"{type(exc).__name__}: {exc}", kernel=label
            )
        simulator = system.simulator
        recorder = TraceRecorder(simulator, simulator.signals)
        try:
            with case_watchdog(timeout_s):
                outcome = _drive(system, case)
        except CaseHang:
            return CaseVerdict(
                "hang",
                f"workload exceeded {timeout_s:g}s at cycle {simulator.cycle}",
                kernel=label,
            )
        except Exception as exc:  # noqa: BLE001 - containment is the point
            return CaseVerdict("crash", f"{type(exc).__name__}: {exc}", kernel=label)
        runs[label] = {
            "trace": recorder.trace,
            "trace_len": len(recorder.trace),
            "outcome": outcome,
            "cycles": simulator.cycle,
            "stats": simulator.stats.as_dict(),
            "violations": _violations(system),
            "leaps": bool(getattr(simulator, "_leap", False)),
        }

    base = labels[0]
    for label in labels[1:]:
        diff = _first_trace_divergence(runs[base]["trace"], runs[label]["trace"])
        if diff is not None:
            return CaseVerdict("divergence", diff, kernel=label)
        if runs[base]["outcome"] != runs[label]["outcome"]:
            return CaseVerdict(
                "divergence",
                f"outcomes differ: {runs[base]['outcome']!r} != {runs[label]['outcome']!r}",
                kernel=label,
            )
        if runs[base]["violations"] != runs[label]["violations"]:
            return CaseVerdict(
                "monitor_mismatch",
                f"{runs[base]['violations']!r} != {runs[label]['violations']!r}",
                kernel=label,
            )
    for label in labels:
        breach = _leap_miscount(label, runs[label], leap_allowed=runs[label]["leaps"])
        if breach is not None:
            return CaseVerdict("leap_miscount", breach, kernel=label)
    return CaseVerdict("pass", f"cycles={runs[base]['cycles']}")
