"""Hypothesis strategies over the fuzz-case space.

The strategies are deliberately *structured*: instead of free-form byte
soup, they draw from the same topology axes the differential grid already
covers (bus × DMA × burst × arbitration × gap × latency) and then fill in
the parts the grid fixes by hand — workload order, stream contents and
lengths, idle spans, fault schedules.  Value choices are biased toward the
edges that historically break wire-format code: zero-length streams,
single-element streams, all-ones words, sign-boundary words, and repeated
back-to-back calls into the same function.

Everything here is pure generation — no simulator imports — so the module
stays cheap to import and the only Hypothesis dependency in the package is
isolated to this module and :mod:`~repro.fuzz.session`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from hypothesis import strategies as st

from repro.faults.spec import FAULT_KINDS, FaultSchedule, FaultSpec
from repro.fuzz.case import (
    FUNCTION_FAMILIES,
    FUZZ_BUSES,
    FuzzCall,
    FuzzCase,
    FuzzFunction,
    FuzzTopology,
)

#: Word values that sit on the boundaries wire-format code gets wrong:
#: zero, tiny, char-sign edges, int-sign edges, all-ones.
CORNER_WORDS: Tuple[int, ...] = (
    0,
    1,
    2,
    0x7F,
    0x80,
    0xFF,
    0x7FFFFFFF,
    0x80000000,
    0xFFFFFFFF,
)

#: Calculation latencies: small ones keep the SIS busy back-to-back, large
#: ones open the idle windows the compiled kernel's cycle-leap mode jumps.
CALC_LATENCIES: Tuple[int, ...] = (1, 2, 5, 24, 40)

#: Fault targets the fuzzer may hit.  RST is excluded on purpose: a stuck
#: reset legitimately wedges the handshake (the drivers wait forever by
#: design), which the watchdog would report as a hang on *every* kernel —
#: true, but not a kernel bug, and it would drown real findings.
FAULT_TARGETS: Tuple[str, ...] = (
    "DATA_IN",
    "DATA_IN_VALID",
    "IO_ENABLE",
    "FUNC_ID",
    "DATA_OUT",
    "DATA_OUT_VALID",
    "IO_DONE",
    "CALC_DONE",
)


@dataclass(frozen=True)
class FuzzProfile:
    """Size knobs for one fuzz session flavour."""

    name: str
    max_functions: int
    max_calls: int
    max_stream: int
    max_idle: int
    max_fault_cycle: int

    def describe(self) -> dict:
        return {
            "name": self.name,
            "max_functions": self.max_functions,
            "max_calls": self.max_calls,
            "max_stream": self.max_stream,
            "max_idle": self.max_idle,
            "max_fault_cycle": self.max_fault_cycle,
        }


#: ``quick`` keeps cases small enough for CI smoke budgets; ``deep`` grows
#: streams, call trails, and idle spans for overnight hunting.
PROFILES = {
    "quick": FuzzProfile(
        name="quick",
        max_functions=3,
        max_calls=6,
        max_stream=5,
        max_idle=64,
        max_fault_cycle=80,
    ),
    "deep": FuzzProfile(
        name="deep",
        max_functions=4,
        max_calls=14,
        max_stream=12,
        max_idle=200,
        max_fault_cycle=240,
    ),
}


def words(max_stream_unused: int = 0) -> st.SearchStrategy:
    """32-bit words, biased heavily toward :data:`CORNER_WORDS`."""
    return st.one_of(
        st.sampled_from(CORNER_WORDS),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    )


def streams(profile: FuzzProfile) -> st.SearchStrategy:
    """Wire-format input streams, including the zero-length degenerate."""
    return st.lists(words(), min_size=0, max_size=profile.max_stream).map(tuple)


@st.composite
def topologies(draw, profile: FuzzProfile) -> FuzzTopology:
    bus = draw(st.sampled_from(FUZZ_BUSES))
    count = draw(st.integers(min_value=1, max_value=profile.max_functions))
    functions = []
    for index in range(count):
        family = draw(st.sampled_from(FUNCTION_FAMILIES))
        latency = draw(st.sampled_from(CALC_LATENCIES))
        functions.append(FuzzFunction(name=f"f{index}", family=family, calc_latency=latency))
    has_pointer = any(f.family in ("stream", "pair") for f in functions)
    dma = bus == "plb" and has_pointer and draw(st.booleans())
    burst = bus == "fcb" and draw(st.booleans())
    gap = draw(st.sampled_from((0, 1, 3)))
    return FuzzTopology(
        bus=bus, functions=tuple(functions), dma=dma, burst=burst, inter_op_gap=gap
    )


@st.composite
def calls_for(draw, topology: FuzzTopology, profile: FuzzProfile) -> Tuple[FuzzCall, ...]:
    count = draw(st.integers(min_value=1, max_value=profile.max_calls))
    out = []
    for _ in range(count):
        # ~1 in 6 steps is an idle span: leap windows and monitor quiet
        # cycles only exist when the bus goes genuinely silent.
        if draw(st.integers(min_value=0, max_value=5)) == 0:
            out.append(FuzzCall.idle(draw(st.integers(min_value=1, max_value=profile.max_idle))))
            continue
        fn = draw(st.sampled_from(topology.functions))
        if fn.family == "poke":
            args = (draw(st.integers(0, 0xFF)), draw(words()))
        elif fn.family == "peek":
            args = (draw(st.integers(0, 0xFF)),)
        elif fn.family == "stream":
            args = (draw(streams(profile)),)
        else:  # pair
            args = (draw(streams(profile)), draw(streams(profile)))
        out.append(FuzzCall(func=fn.name, args=args))
    return tuple(out)


@st.composite
def fault_schedules(draw, profile: FuzzProfile) -> str:
    count = draw(st.integers(min_value=1, max_value=2))
    specs = []
    for _ in range(count):
        specs.append(
            FaultSpec(
                kind=draw(st.sampled_from(FAULT_KINDS)),
                target=draw(st.sampled_from(FAULT_TARGETS)),
                cycle=draw(st.integers(min_value=0, max_value=profile.max_fault_cycle)),
                duration=draw(st.integers(min_value=1, max_value=3)),
                bit=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=7))),
            )
        )
    return FaultSchedule(specs=tuple(specs)).token


@st.composite
def cases(draw, profile: FuzzProfile = PROFILES["quick"], with_faults: bool = False) -> FuzzCase:
    """Complete fuzz cases (the strategy the session's property consumes)."""
    topology = draw(topologies(profile))
    calls = draw(calls_for(topology, profile))
    faults = None
    if with_faults and draw(st.booleans()):
        faults = draw(fault_schedules(profile))
    # Bias toward leap-enabled: that is the production configuration and the
    # path with real optimisation machinery to get wrong.
    leap = draw(st.sampled_from((True, True, True, False)))
    return FuzzCase(topology=topology, calls=calls, faults=faults, leap=leap)
