"""Per-case watchdog: a hanging case is a finding, not a stuck fuzz run.

The compiled kernel executes generated Python in a tight loop; a codegen bug
(or a deliberately mutated kernel under test) can turn a finite workload into
an unbounded one.  :func:`case_watchdog` brackets one case execution with a
real-time alarm — ``signal.setitimer(ITIMER_REAL)`` plus a ``SIGALRM`` handler
that raises :class:`CaseHang` *inside* the running Python frame, which unwinds
the stuck kernel and lets the session record a ``hang`` counterexample and
move on.

``SIGALRM`` can only be installed from the main thread (and does not exist on
Windows).  Off the main thread — campaign worker processes use threads for
their watchdogs already, and pytest plugins occasionally run collection
helpers elsewhere — the context manager degrades to a no-op rather than
failing: the case simply runs unguarded, which is the pre-watchdog behaviour,
not a new failure mode.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager


class CaseHang(Exception):
    """A fuzz case exceeded its wall-clock budget and was killed."""

    def __init__(self, timeout_s: float):
        super().__init__(f"case exceeded {timeout_s:g}s watchdog")
        self.timeout_s = timeout_s


def watchdog_available() -> bool:
    """Whether a real alarm can be armed in the current thread."""
    return (
        hasattr(signal, "setitimer")
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def case_watchdog(timeout_s: float):
    """Raise :class:`CaseHang` in the guarded block after ``timeout_s``.

    ``timeout_s <= 0`` disables the guard explicitly (used by replay paths
    that want to debug a hanging case under an external debugger).
    """
    if timeout_s <= 0 or not watchdog_available():
        yield False
        return

    def _alarm(signum, frame):
        raise CaseHang(timeout_s)

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
