"""Fuzz cases: randomized system topologies plus the workload driven at them.

A :class:`FuzzCase` is pure data — a :class:`FuzzTopology` (bus type ×
device mix × arbitration), an ordered tuple of :class:`FuzzCall` workload
steps, an optional :class:`~repro.faults.spec.FaultSchedule` token, and the
compiled kernel's cycle-leap toggle.  Everything needed to rebuild and
re-drive the identical simulated SoC on any kernel is in the case, so a case
serialises to canonical JSON, fingerprints to a stable :attr:`FuzzCase.token`,
and replays bit-identically from either.

The topology space is the cross product the rest of the tree already proves
piecewise: all four buses, DMA on PLB, bursts on FCB, 1..n user-logic
functions (two or more functions put the SIS arbiter in play), per-function
calculation latencies (large ones open cycle-leap windows), and the
inter-operation gap.  Function *families* fix each function's declaration
and behaviour:

``poke`` / ``peek``
    ``void f(char idx, int value)`` / ``int f(char idx)`` over a register
    store shared by every function of the system — cross-call state, so
    call *order* matters and a dropped write shows up later.
``stream``
    ``long f(char n, int*:n data)`` — a wire-format input stream folded
    into a deterministic digest; zero-length streams are the degenerate
    edge hand-written drivers historically miss.
``pair``
    ``long f(char n1, int*:n1 a, char n2, int*:n2 b)`` — two independently
    sized streams through one call (the interpolator's shape, reduced).

Behaviours are pure deterministic functions of the store and the streams,
so every kernel computes identical results whenever it moves identical
bits — exactly the property the oracle checks.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Buses a fuzz topology may target (the full Figure 9.1 adapter matrix).
FUZZ_BUSES: Tuple[str, ...] = ("plb", "opb", "fcb", "apb")

#: Function families a fuzz topology may declare.
FUNCTION_FAMILIES: Tuple[str, ...] = ("poke", "peek", "stream", "pair")

#: Pseudo-function name for "advance the simulator with no bus activity":
#: idle spans are where the compiled kernel's cycle-leap mode does its work,
#: so workloads must contain them to fuzz leap accounting at all.
IDLE = "~idle"

_BUS_HEADERS = {
    "plb": "%bus_type plb\n%bus_width 32\n%base_address 0x80000000\n",
    "opb": "%bus_type opb\n%bus_width 32\n%base_address 0x80000000\n",
    "fcb": "%bus_type fcb\n%bus_width 32\n",
    "apb": "%bus_type apb\n%bus_width 32\n%base_address 0x40000000\n",
}

_WORD = 0xFFFFFFFF


@dataclass(frozen=True)
class FuzzFunction:
    """One declared user-logic function of a fuzz topology."""

    name: str
    family: str
    calc_latency: int = 1

    def __post_init__(self) -> None:
        if self.family not in FUNCTION_FAMILIES:
            raise ValueError(
                f"unknown function family {self.family!r} (known: {FUNCTION_FAMILIES})"
            )
        if not self.name.isidentifier():
            raise ValueError(f"function name {self.name!r} is not an identifier")
        if self.calc_latency < 1:
            raise ValueError(f"calc latency must be >= 1, got {self.calc_latency}")

    def declaration(self, dma: bool) -> str:
        """The Splice declaration line for this function."""
        ptr = "^" if dma else ""
        if self.family == "poke":
            return f"void {self.name}(char idx, int value);"
        if self.family == "peek":
            return f"int {self.name}(char idx);"
        if self.family == "stream":
            return f"long {self.name}(char n, int*:n{ptr} data);"
        return (
            f"long {self.name}(char n1, int*:n1{ptr} a, "
            f"char n2, int*:n2{ptr} b);"
        )

    def describe(self) -> Dict[str, object]:
        return {"name": self.name, "family": self.family, "calc_latency": self.calc_latency}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzFunction":
        return cls(
            name=str(data["name"]),
            family=str(data["family"]),
            calc_latency=int(data.get("calc_latency", 1)),
        )


def _fold(values: Sequence[int], mult: int, acc: int = 0) -> int:
    for value in values:
        acc = (acc * mult + int(value) + 1) & _WORD
    return acc


@dataclass(frozen=True)
class FuzzTopology:
    """Bus type × device mix × arbitration, as plain data."""

    bus: str
    functions: Tuple[FuzzFunction, ...]
    dma: bool = False
    burst: bool = False
    inter_op_gap: int = 1

    def __post_init__(self) -> None:
        if self.bus not in FUZZ_BUSES:
            raise ValueError(f"unknown fuzz bus {self.bus!r} (known: {FUZZ_BUSES})")
        if self.dma and self.bus != "plb":
            raise ValueError("DMA topologies require the plb bus")
        if self.burst and self.bus != "fcb":
            raise ValueError("burst topologies require the fcb bus")
        if self.inter_op_gap < 0:
            raise ValueError(f"inter_op_gap must be >= 0, got {self.inter_op_gap}")
        functions = tuple(self.functions)
        object.__setattr__(self, "functions", functions)
        if not functions:
            raise ValueError("a fuzz topology needs at least one function")
        names = [f.name for f in functions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate function names in topology: {names}")
        if self.dma and all(f.family in ("poke", "peek") for f in functions):
            raise ValueError("a DMA topology needs at least one pointer function")

    def function(self, name: str) -> FuzzFunction:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"topology declares no function {name!r}")

    def spec_source(self) -> str:
        """Render the topology as a Splice specification string."""
        lines = [f"%device_name fuzz_{self.bus}", _BUS_HEADERS[self.bus].rstrip("\n")]
        if self.dma:
            lines.append("%dma_support true")
        if self.burst:
            lines.append("%burst_support true")
        # DMA transfers only apply to pointer parameters; scalar-only
        # functions keep their plain declarations either way.
        for fn in self.functions:
            lines.append(fn.declaration(self.dma and fn.family in ("stream", "pair")))
        return "\n".join(lines) + "\n"

    def behaviors(self) -> Dict[str, Callable]:
        """Fresh deterministic behaviours (one shared store per system).

        Must be called once per built system: the register store is shared
        across this topology's ``poke``/``peek`` functions but never across
        systems, or kernels would observe each other's state.
        """
        store: Dict[int, int] = {}
        out: Dict[str, Callable] = {}
        for fn in self.functions:
            if fn.family == "poke":
                out[fn.name] = lambda idx=0, value=0, _s=store: _s.__setitem__(
                    int(idx) & 0xFF, int(value) & _WORD
                )
            elif fn.family == "peek":
                out[fn.name] = lambda idx=0, _s=store: _s.get(int(idx) & 0xFF, 0)
            elif fn.family == "stream":
                out[fn.name] = lambda n=0, data=(), _s=store: _fold(
                    data, 33, acc=(int(n) + len(_s)) & _WORD
                )
            else:  # pair
                out[fn.name] = lambda n1=0, a=(), n2=0, b=(), _s=store: _fold(
                    b, 1_000_003, acc=_fold(a, 31, acc=len(_s) & _WORD)
                )
        return out

    def calc_latencies(self) -> Dict[str, int]:
        return {fn.name: fn.calc_latency for fn in self.functions}

    def describe(self) -> Dict[str, object]:
        return {
            "bus": self.bus,
            "dma": self.dma,
            "burst": self.burst,
            "inter_op_gap": self.inter_op_gap,
            "functions": [fn.describe() for fn in self.functions],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzTopology":
        return cls(
            bus=str(data["bus"]),
            functions=tuple(FuzzFunction.from_dict(f) for f in data["functions"]),
            dma=bool(data.get("dma", False)),
            burst=bool(data.get("burst", False)),
            inter_op_gap=int(data.get("inter_op_gap", 1)),
        )


@dataclass(frozen=True)
class FuzzCall:
    """One workload step: a driver call, or an idle span (``func == IDLE``).

    ``args`` hold the *payload* in family shape — pointer streams are stored
    as one tuple each; the driver-call expansion (count-then-list, the wire
    format's calling convention) happens at execution time, so counts can
    never disagree with stream lengths.
    """

    func: str
    args: Tuple = ()

    def __post_init__(self) -> None:
        # Canonicalise nested sequences to tuples so cases hash and compare
        # structurally regardless of how they were built (JSON gives lists).
        object.__setattr__(
            self,
            "args",
            tuple(
                tuple(int(v) for v in a) if isinstance(a, (list, tuple)) else int(a)
                for a in self.args
            ),
        )
        if self.func == IDLE:
            if len(self.args) != 1 or not isinstance(self.args[0], int) or self.args[0] < 1:
                raise ValueError(f"idle steps take one positive cycle count, got {self.args!r}")

    def describe(self) -> Dict[str, object]:
        return {
            "func": self.func,
            "args": [list(a) if isinstance(a, tuple) else a for a in self.args],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzCall":
        return cls(func=str(data["func"]), args=tuple(data.get("args", ())))

    @classmethod
    def idle(cls, cycles: int) -> "FuzzCall":
        return cls(func=IDLE, args=(int(cycles),))


@dataclass(frozen=True)
class FuzzCase:
    """One complete generated scenario: topology + workload + faults + leap."""

    topology: FuzzTopology
    calls: Tuple[FuzzCall, ...]
    faults: Optional[str] = None
    leap: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "calls", tuple(self.calls))
        if not self.calls:
            raise ValueError("a fuzz case needs at least one workload step")
        for call in self.calls:
            if call.func != IDLE:
                self.topology.function(call.func)  # raises on unknown names
        if self.faults is not None:
            from repro.faults.spec import FaultSchedule

            # Canonicalise so equivalent spellings share one token (and so a
            # malformed schedule fails at construction, not mid-oracle).
            object.__setattr__(self, "faults", FaultSchedule.parse(self.faults).token)

    def describe(self) -> Dict[str, object]:
        """Canonical JSON-friendly form — the case's identity."""
        data: Dict[str, object] = {
            "version": 1,
            "topology": self.topology.describe(),
            "calls": [call.describe() for call in self.calls],
            "leap": self.leap,
        }
        if self.faults is not None:
            data["faults"] = self.faults
        return data

    @property
    def token(self) -> str:
        """Stable 16-hex-digit fingerprint of the canonical form."""
        payload = json.dumps(self.describe(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_json(self) -> str:
        return json.dumps(self.describe(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzCase":
        return cls(
            topology=FuzzTopology.from_dict(data["topology"]),
            calls=tuple(FuzzCall.from_dict(c) for c in data["calls"]),
            faults=data.get("faults"),
            leap=bool(data.get("leap", True)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FuzzCase":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path) -> "FuzzCase":
        return cls.from_json(Path(path).read_text())
