"""Plain-text rendering of the evaluation tables.

The benchmark harness prints the same rows the paper's figures report:
Figure 9.1 (scenario inputs), Figure 9.2 (cycles per run) and Figure 9.3
(resources per implementation), plus the Section 9.3 headline percentages.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.evaluation.scenarios import SCENARIOS
from repro.resources.estimator import ResourceReport


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple fixed-width text table."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row):
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(list(headers)), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def scenario_report(rows: Sequence[Mapping[str, int]]) -> str:
    """Figure 9.1 as text."""
    return format_table(
        ["Scenario", "Set 1", "Set 2", "Set 3", "Total"],
        [[r["scenario"], r["set1"], r["set2"], r["set3"], r["total"]] for r in rows],
    )


def cycles_report(results: Dict[str, Dict[int, int]], names: Mapping[str, str] = None) -> str:
    """Figure 9.2 as text: one row per implementation, one column per scenario."""
    names = names or {}
    scenario_numbers = sorted({s for per in results.values() for s in per})
    headers = ["Implementation"] + [f"Scenario {n}" for n in scenario_numbers]
    rows: List[List[object]] = []
    for label, per_scenario in results.items():
        rows.append([names.get(label, label)] + [per_scenario.get(n, "-") for n in scenario_numbers])
    return format_table(headers, rows)


def resources_report(reports: Dict[str, ResourceReport], names: Mapping[str, str] = None) -> str:
    """Figure 9.3 as text: LUTs / flip-flops / slices per implementation."""
    names = names or {}
    rows = []
    for label, report in reports.items():
        row = report.as_row()
        rows.append([names.get(label, label), row["luts"], row["flip_flops"], row["slices"]])
    return format_table(["Implementation", "LUTs", "Flip-flops", "Slices"], rows)


def ratio_report(ratios: Mapping[str, float], title: str) -> str:
    """Headline percentages (Sections 9.3.1 / 9.3.2) as text."""
    rows = [[key, f"{value * 100:+.1f}%"] for key, value in ratios.items()]
    return f"{title}\n" + format_table(["Quantity", "Value"], rows)
